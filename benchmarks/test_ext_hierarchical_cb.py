"""Extension ext-hier-cb: the methodology applied at the Front Door edge.

Fig. 6 / §5 argue hierarchy makes each level's action space small
enough to harvest.  This bench actually *does* it for the edge level:

1. run the two-level system with uniform-random routing at both levels
   and harvest the edge dataset (ε = 1/4);
2. train an edge-level CB policy (cluster choice from aggregate loads)
   on the harvested tuples;
3. evaluate it offline with IPS, then deploy it and measure online —
   the full scavenge → infer → evaluate → deploy loop, one level up.

Unlike the flat Table 2 scenario, the edge's context (aggregate
cluster loads) is only mildly self-influencing at our traffic level,
so the offline estimate is informative *and* the learned policy wins
online.
"""

import numpy as np
import pytest

from repro.core import IPSEstimator, UniformRandomPolicy
from repro.core.features import Featurizer
from repro.core.learners.cb import EpsilonGreedyLearner
from repro.loadbalance.frontdoor import Cluster, FrontDoorSim
from repro.loadbalance.policies import send_to_policy
from repro.loadbalance.server import ServerConfig
from repro.loadbalance.workload import Workload
from repro.simsys.random_source import RandomSource

from benchmarks.conftest import print_table

N_CLUSTERS = 4
SERVERS_PER_CLUSTER = 6
N_REQUESTS = 16000


def make_clusters():
    """Clusters with different speeds; the fastest is NOT free capacity-
    wise, so the right policy is load-dependent, not constant."""
    clusters = []
    for c in range(N_CLUSTERS):
        configs = [
            ServerConfig(
                server_id=s,
                base_latency=0.12 + 0.04 * c,
                latency_per_connection=0.05,
            )
            for s in range(SERVERS_PER_CLUSTER)
        ]
        clusters.append(Cluster(f"cluster-{c}", configs, UniformRandomPolicy()))
    return clusters


def run_with_edge_policy(edge_policy, seed=7, n=N_REQUESTS):
    # High enough that funneling everything into one 6-server cluster
    # visibly overloads it; the right policy must spill over.
    workload = Workload(48.0, randomness=RandomSource(seed, _name="wl"))
    sim = FrontDoorSim(make_clusters(), edge_policy, workload, seed=seed)
    return sim.run(n)


@pytest.fixture(scope="module")
def study():
    collection = run_with_edge_policy(UniformRandomPolicy(), seed=42)
    edge_dataset = collection.edge_dataset

    learner = EpsilonGreedyLearner(
        N_CLUSTERS, featurizer=Featurizer(32), learning_rate=0.5,
        maximize=False,
    )
    for _ in range(3):
        learner.observe_all(edge_dataset)
    cb_edge = learner.policy()
    cb_edge.name = "CB edge policy"

    ips = IPSEstimator()
    candidates = {
        "uniform-random": UniformRandomPolicy(),
        "send-to-fastest": send_to_policy(0),
        "CB edge policy": cb_edge,
    }
    table = {}
    for name, policy in candidates.items():
        offline = ips.estimate(policy, edge_dataset).value
        online = np.mean(
            [run_with_edge_policy(policy, seed=s).mean_latency
             for s in (7, 8)]
        )
        table[name] = (offline, float(online))
    return table


class TestHierarchicalCB:
    def test_cb_edge_beats_uniform_online(self, study):
        assert study["CB edge policy"][1] < study["uniform-random"][1]

    def test_cb_edge_beats_constant_fastest_online(self, study):
        """Always routing to the fastest cluster overloads it; the CB
        policy spills over when loads demand it."""
        assert study["CB edge policy"][1] < study["send-to-fastest"][1]

    def test_uniform_offline_estimate_unbiased(self, study):
        offline, online = study["uniform-random"]
        assert offline == pytest.approx(online, rel=0.1)

    def test_cb_offline_estimate_informative(self, study):
        """At the edge level the offline estimate of the CB policy is
        within 35% of its online value — usable for step 3's 'focus
        deployment efforts where predicted gains are highest'."""
        offline, online = study["CB edge policy"]
        assert abs(offline - online) / online < 0.35

    def test_print_table(self, study):
        rows = [
            [name, f"{offline:.3f}s", f"{online:.3f}s"]
            for name, (offline, online) in study.items()
        ]
        print_table(
            "Extension ext-hier-cb: edge-level harvesting and CB "
            "optimization (4 clusters x 6 servers)",
            ["edge policy", "off-policy eval", "online eval"],
            rows,
        )

    def test_benchmark_edge_training(self, study, benchmark):
        collection = run_with_edge_policy(UniformRandomPolicy(), seed=1,
                                          n=2000)

        def train():
            learner = EpsilonGreedyLearner(
                N_CLUSTERS, featurizer=Featurizer(32), maximize=False
            )
            learner.observe_all(collection.edge_dataset)

        benchmark(train)
