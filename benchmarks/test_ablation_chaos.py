"""Ablation abl-chaos: fault injection broadens exploration.

§5: "reliability testing in distributed systems can trigger uneven
traffic and extreme conditions that lead to broader exploration. ...
we could leverage Netflix's open-source Chaos Monkey ... Such
randomized failures, and the systems' responses, would generate
valuable exploration data."

We collect uniform-random logs with and without a chaos monkey and
measure how much more of the context space (per-server load levels and
imbalances) the chaotic log covers — the raw material for evaluating
policies whose long-term effects reach extreme-load states.
"""

import numpy as np
import pytest

from repro.chaos import ChaosMonkey, FaultSpec
from repro.loadbalance import LoadBalancerSim, Workload, fig5_servers
from repro.loadbalance.harvest import dataset_from_access_log
from repro.loadbalance.policies import random_policy
from repro.simsys.random_source import RandomSource

from benchmarks.conftest import print_table

N_COLLECT = 15000


def collect(with_chaos):
    workload = Workload(10.0, randomness=RandomSource(5, _name="wl"))
    monkey = ChaosMonkey(seed=2) if with_chaos else None
    sim = LoadBalancerSim(
        fig5_servers(), random_policy(), workload, seed=5, chaos=monkey
    )
    return sim.run(N_COLLECT), monkey


def coverage(result):
    conns = np.array([list(e.connections) for e in result.access_log])
    imbalance = np.abs(conns[:, 0] - conns[:, 1])
    distinct_states = len({tuple(row) for row in conns})
    return {
        "max_conns": int(conns.max()),
        "p99_imbalance": float(np.percentile(imbalance, 99)),
        "distinct_states": distinct_states,
        "frac_over_10": float(np.mean(conns.max(axis=1) > 10)),
        "mean_latency": result.mean_latency,
    }


@pytest.fixture(scope="module")
def study():
    baseline, _ = collect(False)
    chaotic, monkey = collect(True)
    return coverage(baseline), coverage(chaotic), monkey


class TestChaosAblation:
    def test_chaos_extends_load_range(self, study):
        base, chaos, _ = study
        assert chaos["max_conns"] > 3 * base["max_conns"]

    def test_chaos_extends_imbalance_tail(self, study):
        base, chaos, _ = study
        assert chaos["p99_imbalance"] > 3 * base["p99_imbalance"]

    def test_chaos_visits_more_distinct_states(self, study):
        base, chaos, _ = study
        assert chaos["distinct_states"] > 2 * base["distinct_states"]

    def test_baseline_never_sees_heavy_load(self, study):
        """The §5 premise: normal operation alone never produces the
        extreme states a degenerate policy would create."""
        base, chaos, _ = study
        assert base["frac_over_10"] < 0.01
        assert chaos["frac_over_10"] > 0.10

    def test_faults_were_actually_injected(self, study):
        _, _, monkey = study
        assert len(monkey.history) > 5
        kinds = {fault.kind for fault in monkey.history}
        assert "latency-spike" in kinds

    def test_harvested_dataset_remains_valid(self, study):
        """Chaos doesn't break harvesting: the log still yields a valid
        exploration dataset with uniform propensities."""
        chaotic, _ = collect(True)
        dataset = dataset_from_access_log(chaotic.access_log)
        assert len(dataset) == N_COLLECT
        assert dataset.min_propensity() == pytest.approx(0.5, abs=0.05)

    def test_print_table(self, study):
        base, chaos, monkey = study
        rows = [
            ["without chaos", base["max_conns"],
             f"{base['p99_imbalance']:.1f}", base["distinct_states"],
             f"{base['frac_over_10']:.2%}", f"{base['mean_latency']:.3f}s"],
            [f"with chaos ({len(monkey.history)} faults)",
             chaos["max_conns"], f"{chaos['p99_imbalance']:.1f}",
             chaos["distinct_states"], f"{chaos['frac_over_10']:.2%}",
             f"{chaos['mean_latency']:.3f}s"],
        ]
        print_table(
            "Ablation abl-chaos: context coverage of harvested logs",
            ["log", "max conns", "p99 imbalance", "distinct load states",
             ">10 conns", "mean latency"],
            rows,
        )

    def test_benchmark_chaotic_collection(self, benchmark):
        def run_small():
            workload = Workload(10.0, randomness=RandomSource(9, _name="wl"))
            monkey = ChaosMonkey(seed=9)
            sim = LoadBalancerSim(
                fig5_servers(), random_policy(), workload, seed=9,
                chaos=monkey,
            )
            return sim.run(1500)

        benchmark.pedantic(run_small, rounds=1, iterations=1)
