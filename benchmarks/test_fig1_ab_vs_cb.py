"""Figure 1: data required to evaluate K policies — A/B vs CB.

Paper: "The amount of data (N) required to simultaneously evaluate K
policies, using typical constants.  Contextual bandits is exponentially
more efficient than A/B testing, and can evaluate policies offline."

We regenerate both curves from the §4 bounds (target error 0.05,
δ = 0.01) for ε ∈ {0.1, 0.04}, and verify the claims that define the
figure's shape:

- A/B's required N grows (super)linearly in K;
- CB's required N grows logarithmically in K;
- the curves cross near K = 1/ε and diverge by orders of magnitude.
"""

import math

import pytest

from repro.core.estimators.bounds import (
    ab_testing_sample_size,
    crossover_k,
    ips_sample_size,
)

from benchmarks.conftest import print_series

TARGET_ERROR = 0.05
DELTA = 0.01
K_GRID = [1, 10, 10**2, 10**3, 10**4, 10**5, 10**6, 10**7, 10**8, 10**9]
EPSILONS = (0.1, 0.04)


def compute_fig1():
    """The Fig. 1 series: N(K) for A/B and for CB at each ε."""
    series = {
        "ab_testing": [
            ab_testing_sample_size(TARGET_ERROR, k=k, delta=DELTA)
            for k in K_GRID
        ]
    }
    for epsilon in EPSILONS:
        series[f"cb_eps={epsilon}"] = [
            ips_sample_size(TARGET_ERROR, epsilon, k=k, delta=DELTA)
            for k in K_GRID
        ]
    return series


@pytest.fixture(scope="module")
def fig1():
    return compute_fig1()


class TestFig1:
    def test_ab_grows_superlinearly_in_k(self, fig1):
        ab = fig1["ab_testing"]
        for i in range(1, len(K_GRID)):
            growth = ab[i] / ab[i - 1]
            k_growth = K_GRID[i] / K_GRID[i - 1]
            assert growth >= k_growth  # linear in K times a log factor

    def test_cb_grows_logarithmically_in_k(self, fig1):
        for epsilon in EPSILONS:
            cb = fig1[f"cb_eps={epsilon}"]
            # N(K) proportional to log(K/delta): successive differences
            # of equal K-ratios are equal.
            diffs = [cb[i + 1] - cb[i] for i in range(1, len(cb) - 1)]
            for a, b in zip(diffs, diffs[1:]):
                assert a == pytest.approx(b, rel=1e-6)

    def test_exponential_separation_at_large_k(self, fig1):
        """At K = 10^9, A/B needs ~10^8x more data than CB."""
        ab = fig1["ab_testing"][-1]
        cb = fig1["cb_eps=0.1"][-1]
        assert ab / cb > 10**7

    def test_crossover_near_one_over_epsilon(self):
        """For K below 1/ε A/B can be cheaper; beyond, CB always wins."""
        for epsilon in EPSILONS:
            k_cross = crossover_k(epsilon)
            k_above = 100 * k_cross
            assert ips_sample_size(
                TARGET_ERROR, epsilon, k=k_above, delta=DELTA
            ) < ab_testing_sample_size(TARGET_ERROR, k=k_above, delta=DELTA)

    def test_offline_reuse_means_single_log_serves_all_k(self, fig1):
        """CB's N at K=10^9 is within a small factor of its N at K=1 —
        one exploration log evaluates a billion policies."""
        cb = fig1["cb_eps=0.04"]
        # Exactly the log-ratio: log(K/δ)/log(1/δ) ≈ 5.5 for K = 1e9.
        assert cb[-1] / cb[0] == pytest.approx(
            math.log(10**9 / DELTA) / math.log(1 / DELTA)
        )
        assert cb[-1] / cb[0] < 6.0

    def test_print_figure(self, fig1):
        print_series(
            "Figure 1: N required to evaluate K policies "
            f"(error {TARGET_ERROR}, delta {DELTA})",
            "K",
            [f"{k:.0e}" for k in K_GRID],
            {name: [f"{n:.3g}" for n in values]
             for name, values in fig1.items()},
        )

    def test_benchmark_bound_computation(self, benchmark):
        benchmark(compute_fig1)
