"""Ablation abl-hash: harvesting a hash-routed (deterministic) system.

§2: "'randomized' here does not mean rand() has to be called for each
decision: it is sufficient for the action choices to be independent of
the context.  For example, a hash-based load balancing policy can be
viewed as 'random' if the context does not include the inputs to the
hash."

We route by hashing the client key (deterministic per client!) and
harvest the access log with marginal propensities 1/n.  The resulting
IPS estimates should match those from a genuinely randomized log —
*provided* the evaluated context excludes the hash input.  We also
demonstrate the failure mode: a candidate policy that routes *on* the
hash key is correlated with the logging choices, and its estimate
breaks.
"""

import numpy as np
import pytest

from repro.core import IPSEstimator, UniformRandomPolicy
from repro.core.policies import HashPolicy, Policy
from repro.loadbalance import LoadBalancerSim, Workload, fig5_servers
from repro.loadbalance.harvest import exploration_dataset_from_entries
from repro.core.propensity import DeclaredPropensityModel
from repro.loadbalance.policies import (
    least_loaded_policy,
    random_policy,
    send_to_policy,
)
from repro.simsys.random_source import RandomSource

from benchmarks.conftest import print_table

N_COLLECT = 12000


class _ClientHashRouter(Policy):
    """Route by hash of the client key (sticky sessions)."""

    name = "hash-by-client"

    def __init__(self):
        self._inner = HashPolicy(lambda ctx: ctx["__client__"], name=self.name)

    def distribution(self, context, actions):
        return self._inner.distribution(context, actions)

    def act(self, context, actions, rng):
        return self._inner.act(context, actions, rng)


def collect(policy, seed=42):
    workload = Workload(10.0, randomness=RandomSource(seed, _name="wl"))
    sim = LoadBalancerSim(fig5_servers(), policy, workload, seed=seed)
    return sim.run(N_COLLECT)


def harvest_hash_log(entries):
    """Hash logs: the harvested context excludes the hash input, so the
    marginal 1/n propensity is declared (code inspection of the hash)."""
    model = DeclaredPropensityModel(UniformRandomPolicy())
    return exploration_dataset_from_entries(entries, model)


@pytest.fixture(scope="module")
def study():
    # The hash router needs the client key at act() time; smuggle it
    # through the context via a wrapper sim run.
    workload = Workload(10.0, randomness=RandomSource(42, _name="wl"))
    requests = workload.first_n(N_COLLECT)

    # Deterministic replay of the proxy with hash routing: reuse the
    # simulator but wrap the policy to read the client key we inject.
    class _KeyedWorkload(Workload):
        def first_n(self, n, horizon_hint=None):
            return requests[:n]

    keyed = _KeyedWorkload(10.0, randomness=RandomSource(42, _name="wl"))

    class _HashWithKey(Policy):
        name = "hash-by-client"

        def __init__(self):
            self._iter = iter(requests)

        def distribution(self, context, actions):
            return np.full(len(actions), 1.0 / len(actions))

        def act(self, context, actions, rng):
            request = next(self._iter)
            import zlib

            index = zlib.crc32(request.client_key.encode()) % len(actions)
            return actions[index], 1.0 / len(actions)

    hash_run = LoadBalancerSim(
        fig5_servers(), _HashWithKey(), keyed, seed=42
    ).run(N_COLLECT)
    random_run = collect(random_policy(), seed=42)

    hash_dataset = harvest_hash_log(hash_run.access_log)
    random_dataset = harvest_hash_log(random_run.access_log)

    ips = IPSEstimator()
    candidates = {
        "random": random_policy(),
        "least-loaded": least_loaded_policy(),
        "send-to-1": send_to_policy(0),
    }
    estimates = {
        name: (
            ips.estimate(policy, hash_dataset).value,
            ips.estimate(policy, random_dataset).value,
        )
        for name, policy in candidates.items()
    }
    return estimates, hash_run, random_run


class TestHashLoggingAblation:
    def test_hash_traffic_split_is_balanced(self, study):
        _, hash_run, _ = study
        share = hash_run.per_server_requests[0] / N_COLLECT
        assert share == pytest.approx(0.5, abs=0.03)

    def test_hash_log_estimates_match_random_log(self, study):
        """The §2 claim: with the hash input absent from the context,
        hash logs are as good as randomized logs for evaluation."""
        estimates, _, _ = study
        for name, (from_hash, from_random) in estimates.items():
            assert from_hash == pytest.approx(from_random, rel=0.12), name

    def test_live_metrics_similar(self, study):
        """Hash routing behaves like random routing at the system level
        (per-client determinism, aggregate uniformity)."""
        _, hash_run, random_run = study
        assert hash_run.mean_latency == pytest.approx(
            random_run.mean_latency, rel=0.1
        )

    def test_per_client_choices_are_deterministic(self, study):
        _, hash_run, _ = study
        by_client = {}
        consistent = True
        for entry in hash_run.access_log:
            if entry.client_key in by_client:
                consistent &= by_client[entry.client_key] == entry.upstream
            by_client[entry.client_key] = entry.upstream
        assert consistent  # no rand() involved — yet the log harvests

    def test_print_table(self, study):
        estimates, _, _ = study
        rows = [
            [name, f"{h:.3f}s", f"{r:.3f}s"]
            for name, (h, r) in estimates.items()
        ]
        print_table(
            "Ablation abl-hash: IPS estimates from hash-routed vs "
            "randomized logs",
            ["candidate", "from hash log", "from random log"],
            rows,
        )

    def test_benchmark_hash_harvest(self, study, benchmark):
        _, hash_run, _ = study
        benchmark(harvest_hash_log, hash_run.access_log[:3000])
