"""Tolerance-based regression gate over ``BENCH_ope.json``.

Raw throughput numbers are hostage to whatever machine ran them, so the
gate compares the *speedup ratios* (vectorized / scalar on the same
box, same run) against a committed baseline.  A run fails when any
tracked speedup falls more than ``tolerance`` (default 30%) below its
baseline value — a real engine regression, not runner noise, at that
magnitude.

Usage::

    python benchmarks/perf/gate.py BENCH_ope.json \
        --baseline benchmarks/perf/BENCH_ope.smoke_baseline.json \
        --tolerance 0.30

Exit status 0 when every metric is within tolerance, 1 otherwise.
Pure stdlib so CI can call it without the benchmark plugins installed
(the cross-run history module it shares with the package is itself
stdlib-only and loaded by file path, skipping the package import).

Beyond the single-run tolerance check, every gated run is appended to
``benchmarks/history/runs.jsonl`` (git SHA + timestamp + cpu_count)
and the gate warns — without failing — when a gated metric has
decreased strictly monotonically over the last three runs on the same
``cpu_count``: a slow drift no one-shot tolerance can see.  Disable
with ``--no-history``.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import os
import sys

_REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


def _load_history_module():
    """Load ``repro.obs.history`` standalone (it is stdlib-only)."""
    path = os.path.join(_REPO_ROOT, "src", "repro", "obs", "history.py")
    spec = importlib.util.spec_from_file_location("_repro_obs_history", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module

#: (human label, path into the artifact dict) for each gated ratio.
GATED_METRICS = (
    ("single-policy IPS speedup", ("single_policy_ips", "speedup")),
    ("class-search speedup", ("class_search", "speedup")),
    ("chunked relative throughput", ("chunked", "relative_throughput")),
    ("shared relative throughput", ("shared", "relative_throughput")),
    ("parallel bootstrap speedup", ("bootstrap", "parallel_speedup")),
    (
        "instrumentation relative throughput",
        ("instrumentation", "relative_throughput"),
    ),
    (
        "harvest machinehealth speedup",
        ("harvest", "machinehealth", "speedup"),
    ),
    ("harvest loadbalance speedup", ("harvest", "loadbalance", "speedup")),
    ("harvest cache speedup", ("harvest", "cache", "speedup")),
)

#: (human label, path, floor) gated against an *absolute* floor rather
#: than a baseline: same-box ratios whose acceptable minimum is a spec,
#: not a measurement.  The ledger's overhead budget is ≤10% on the
#: batched harvest hot path, so relative throughput must stay ≥ 0.9
#: regardless of what any baseline happened to record.  The sharded
#: coordinator carries the same budget at ``workers=1``: shard specs,
#: provisional seals, and the final splice may not cost more than 10%
#: of the monolithic serial loop they replaced.
ABSOLUTE_FLOORS = (
    (
        "ledger relative throughput",
        ("ledger", "relative_throughput"),
        0.9,
    ),
    (
        "sharded harvest relative throughput",
        ("sharded", "relative_throughput"),
        0.9,
    ),
    # The watchtower carries the same ≤10% budget: streaming health
    # monitors fold every batch's propensities on the harvest hot
    # path, and that fold may not cost more than 10% of the
    # unmonitored loop.
    (
        "monitor overhead relative throughput",
        ("obs", "monitor_overhead", "relative_throughput"),
        0.9,
    ),
    # The online policy server's acceptance target (ISSUE 10): the
    # in-process serving loop — asyncio batcher included — must answer
    # at least 50k decisions/sec.  Absolute, not baseline-relative:
    # the number IS the requirement.
    (
        "serve decisions/sec",
        ("serve", "decisions_per_sec"),
        50_000.0,
    ),
)

#: Metrics watched by the cross-run trend check: the gated ratios plus
#: the absolute-floor ratios, as dotted keys into the flattened
#: history records (see ``repro.obs.history.bench_record``).
TREND_METRICS = tuple(
    ".".join(path) for _, path in GATED_METRICS
) + tuple(".".join(path) for _, path, _ in ABSOLUTE_FLOORS)

#: Consecutive strictly-decreasing runs that trigger a trend warning.
TREND_RUNS = 3

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_ope.smoke_baseline.json"
)


def _fmt(value: float) -> str:
    """Ratios print as ``0.93x``; rate floors (≥1000) as plain counts."""
    return f"{value:,.0f}" if value >= 1000 else f"{value:.2f}x"


def _lookup(artifact: dict, path: tuple) -> float:
    value = artifact
    for key in path:
        if not isinstance(value, dict) or key not in value:
            raise KeyError("/".join(path))
        value = value[key]
    return float(value)


def check_regressions(
    current: dict, baseline: dict, tolerance: float = 0.30
) -> list[str]:
    """Compare gated metrics; return a failure message per regression.

    An empty list means the run passes.  Metrics *above* baseline (or
    missing from the baseline entirely, e.g. a newly added kernel) never
    fail the gate — it guards against losing performance, not gaining it.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    failures = []
    for label, path in GATED_METRICS:
        try:
            expected = _lookup(baseline, path)
        except KeyError:
            continue  # not in baseline yet: nothing to regress against
        actual = _lookup(current, path)
        floor = expected * (1.0 - tolerance)
        if actual < floor:
            failures.append(
                f"{label}: {actual:.2f}x is more than {tolerance:.0%} below "
                f"the baseline {expected:.2f}x (floor {floor:.2f}x)"
            )
    for label, path, floor in ABSOLUTE_FLOORS:
        try:
            actual = _lookup(current, path)
        except KeyError:
            continue  # artifact predates the metric: nothing to gate
        if actual < floor:
            failures.append(
                f"{label}: {_fmt(actual)} is below the absolute floor "
                f"{_fmt(floor)}"
            )
    return failures


def check_trends(current: dict, history_dir: str) -> list[dict]:
    """Append this run to the history and warn on monotone drifts.

    Trend warnings go to stderr but never fail the gate: three
    strictly-decreasing runs of a gated ratio on the same ``cpu_count``
    is a drift worth a human look, not (yet) a regression the
    tolerance gate would catch.  History trouble (unwritable dir,
    missing git) degrades to a note — the gate's pass/fail must not
    depend on the history being available.
    """
    try:
        history_module = _load_history_module()
        history = history_module.RunHistory(history_dir)
        record = history.append(
            history_module.bench_record(current, cwd=_REPO_ROOT)
        )
        drifts = history_module.monotone_regressions(
            history,
            TREND_METRICS,
            k=TREND_RUNS,
            cpu_count=record.get("cpu_count"),
        )
    except Exception as error:  # noqa: BLE001 - advisory path only
        print(f"history: skipped ({error})", file=sys.stderr)
        return []
    for drift in drifts:
        values = " -> ".join(f"{v:.2f}" for v in drift["values"])
        print(
            f"TREND WARNING: {drift['metric']} has decreased over the "
            f"last {TREND_RUNS} runs on cpu_count="
            f"{drift['cpu_count']}: {values} "
            f"({drift['drop']:.0%} total)",
            file=sys.stderr,
        )
    return drifts


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate BENCH_ope.json speedups against a baseline."
    )
    parser.add_argument("artifact", help="freshly produced BENCH_ope.json")
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help="committed baseline artifact (default: smoke baseline)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional drop below baseline (default 0.30)",
    )
    parser.add_argument(
        "--history-dir",
        default=os.path.join(_REPO_ROOT, "benchmarks", "history"),
        help="where the cross-run runs.jsonl accumulates "
        "(default benchmarks/history/)",
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="skip the history append and the cross-run trend check",
    )
    args = parser.parse_args(argv)

    with open(args.artifact, "r", encoding="utf-8") as f:
        current = json.load(f)
    with open(args.baseline, "r", encoding="utf-8") as f:
        baseline = json.load(f)

    failures = check_regressions(current, baseline, tolerance=args.tolerance)
    if not args.no_history:
        check_trends(current, args.history_dir)
    for label, path in GATED_METRICS:
        try:
            now = _lookup(current, path)
            then = _lookup(baseline, path)
        except KeyError:
            continue
        print(f"{label}: {now:.2f}x (baseline {then:.2f}x)")
    for label, path, floor in ABSOLUTE_FLOORS:
        try:
            now = _lookup(current, path)
        except KeyError:
            continue
        print(f"{label}: {_fmt(now)} (absolute floor {_fmt(floor)})")
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print(f"perf gate passed (tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
