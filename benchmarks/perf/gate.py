"""Tolerance-based regression gate over ``BENCH_ope.json``.

Raw throughput numbers are hostage to whatever machine ran them, so the
gate compares the *speedup ratios* (vectorized / scalar on the same
box, same run) against a committed baseline.  A run fails when any
tracked speedup falls more than ``tolerance`` (default 30%) below its
baseline value — a real engine regression, not runner noise, at that
magnitude.

Usage::

    python benchmarks/perf/gate.py BENCH_ope.json \
        --baseline benchmarks/perf/BENCH_ope.smoke_baseline.json \
        --tolerance 0.30

Exit status 0 when every metric is within tolerance, 1 otherwise.
Pure stdlib so CI can call it without the benchmark plugins installed.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

#: (human label, path into the artifact dict) for each gated ratio.
GATED_METRICS = (
    ("single-policy IPS speedup", ("single_policy_ips", "speedup")),
    ("class-search speedup", ("class_search", "speedup")),
    ("chunked relative throughput", ("chunked", "relative_throughput")),
    ("shared relative throughput", ("shared", "relative_throughput")),
    ("parallel bootstrap speedup", ("bootstrap", "parallel_speedup")),
    (
        "instrumentation relative throughput",
        ("instrumentation", "relative_throughput"),
    ),
    (
        "harvest machinehealth speedup",
        ("harvest", "machinehealth", "speedup"),
    ),
    ("harvest loadbalance speedup", ("harvest", "loadbalance", "speedup")),
    ("harvest cache speedup", ("harvest", "cache", "speedup")),
)

#: (human label, path, floor) gated against an *absolute* floor rather
#: than a baseline: same-box ratios whose acceptable minimum is a spec,
#: not a measurement.  The ledger's overhead budget is ≤10% on the
#: batched harvest hot path, so relative throughput must stay ≥ 0.9
#: regardless of what any baseline happened to record.  The sharded
#: coordinator carries the same budget at ``workers=1``: shard specs,
#: provisional seals, and the final splice may not cost more than 10%
#: of the monolithic serial loop they replaced.
ABSOLUTE_FLOORS = (
    (
        "ledger relative throughput",
        ("ledger", "relative_throughput"),
        0.9,
    ),
    (
        "sharded harvest relative throughput",
        ("sharded", "relative_throughput"),
        0.9,
    ),
)

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_ope.smoke_baseline.json"
)


def _lookup(artifact: dict, path: tuple) -> float:
    value = artifact
    for key in path:
        if not isinstance(value, dict) or key not in value:
            raise KeyError("/".join(path))
        value = value[key]
    return float(value)


def check_regressions(
    current: dict, baseline: dict, tolerance: float = 0.30
) -> list[str]:
    """Compare gated metrics; return a failure message per regression.

    An empty list means the run passes.  Metrics *above* baseline (or
    missing from the baseline entirely, e.g. a newly added kernel) never
    fail the gate — it guards against losing performance, not gaining it.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    failures = []
    for label, path in GATED_METRICS:
        try:
            expected = _lookup(baseline, path)
        except KeyError:
            continue  # not in baseline yet: nothing to regress against
        actual = _lookup(current, path)
        floor = expected * (1.0 - tolerance)
        if actual < floor:
            failures.append(
                f"{label}: {actual:.2f}x is more than {tolerance:.0%} below "
                f"the baseline {expected:.2f}x (floor {floor:.2f}x)"
            )
    for label, path, floor in ABSOLUTE_FLOORS:
        try:
            actual = _lookup(current, path)
        except KeyError:
            continue  # artifact predates the metric: nothing to gate
        if actual < floor:
            failures.append(
                f"{label}: {actual:.2f}x is below the absolute floor "
                f"{floor:.2f}x"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate BENCH_ope.json speedups against a baseline."
    )
    parser.add_argument("artifact", help="freshly produced BENCH_ope.json")
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help="committed baseline artifact (default: smoke baseline)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional drop below baseline (default 0.30)",
    )
    args = parser.parse_args(argv)

    with open(args.artifact, "r", encoding="utf-8") as f:
        current = json.load(f)
    with open(args.baseline, "r", encoding="utf-8") as f:
        baseline = json.load(f)

    failures = check_regressions(current, baseline, tolerance=args.tolerance)
    for label, path in GATED_METRICS:
        try:
            now = _lookup(current, path)
            then = _lookup(baseline, path)
        except KeyError:
            continue
        print(f"{label}: {now:.2f}x (baseline {then:.2f}x)")
    for label, path, floor in ABSOLUTE_FLOORS:
        try:
            now = _lookup(current, path)
        except KeyError:
            continue
        print(f"{label}: {now:.2f}x (absolute floor {floor:.2f}x)")
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    print(f"perf gate passed (tolerance {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
