"""Microbenchmarks for the off-policy evaluation engine.

Measures the columnar (vectorized) evaluation path against the per-row
scalar reference on the workload the engine was built for: policy-class
search over a large exploration log (§4's "evaluate a whole class Π
simultaneously").  Throughputs land in ``BENCH_ope.json`` at the repo
root so the speedup is tracked across PRs.

Sizes: a 100k-interaction synthetic log with 8 actions and a 64-policy
random linear class.  The scalar path is timed on a slice (it is the
whole point of this engine that the full product is too slow for it)
and compared on *throughput* — policies × interactions per second —
which is size-independent for both paths.

``REPRO_PERF_SMOKE=1`` shrinks everything for CI smoke runs (few
seconds total, no speedup gate — CI shared runners are too noisy to
gate on; the artifact still uploads for tracking).

Run with::

    pytest benchmarks/perf/ -s
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.core.bootstrap import (
    BOOTSTRAP_SHARD,
    bootstrap_interval_from_terms,
)
from repro.core.learners.cb import PolicyClassOptimizer
from repro.core.estimators.ips import IPSEstimator
from repro.core.policies import (
    EpsilonGreedyPolicy,
    LinearThresholdPolicy,
    PolicyClass,
)
from repro.core.types import ActionSpace, Dataset, Interaction, RewardRange
from repro.obs.metrics import use_metrics
from repro.obs.tracing import use_tracer

from benchmarks.conftest import print_table

SMOKE = os.environ.get("REPRO_PERF_SMOKE", "") not in ("", "0")

#: Full-size workload (the ISSUE's acceptance target) vs CI smoke.
N_LOG = 2_000 if SMOKE else 100_000
N_ACTIONS = 8
N_CLASS = 8 if SMOKE else 64
#: The scalar reference runs on a slice; throughput is extrapolated.
N_SCALAR_SLICE = 500 if SMOKE else 5_000
N_CLASS_SCALAR = 4 if SMOKE else 8
ROUNDS = 1 if SMOKE else 3
#: Chunk size for the out-of-core fold and replicate count for the
#: sharded bootstrap benchmarks.
CHUNK_SIZE = 512 if SMOKE else 8_192
N_BOOT = 400 if SMOKE else 4_000
BOOT_WORKERS = 4
#: Workers for the shared-memory parallel fold benchmark.
SHARED_WORKERS = 4
#: Acceptance gate (full mode only): vectorized class search must beat
#: the scalar path by at least this factor in throughput.
MIN_SPEEDUP = 10.0
#: Harvest-side sizes: rows generated per scenario by the batched
#: engine, and the per-row (batch_size=1) reference slice it is
#: compared against on throughput.
N_HARVEST = 1_000 if SMOKE else 100_000
N_HARVEST_PER_ROW = 200 if SMOKE else 2_000
#: Cache rows are evictions, roughly 0.48 per big/small request.
N_CACHE_REQUESTS = 3_000 if SMOKE else 210_000
#: Acceptance gate (full mode only): batched harvesting must beat the
#: per-row mode by at least this factor for every scenario.
MIN_HARVEST_SPEEDUP = 10.0
#: Decisions served by the serve benchmark and the acceptance floor
#: (ISSUE 10): the in-process serving loop — batcher included — must
#: answer at least 50k decisions/sec.  Gated absolutely in ``gate.py``.
N_SERVE = 5_000 if SMOKE else 100_000
MIN_SERVE_DECISIONS_PER_SEC = 50_000.0

FEATURES = [f"f{i}" for i in range(4)]

ARTIFACT_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "BENCH_ope.json"
)

#: Populated by the benchmark tests (in file order), consumed by the
#: artifact/gate test at the end of the module.
RESULTS: dict = {}


def make_log(n: int, seed: int = 42) -> Dataset:
    rng = np.random.default_rng(seed)
    dataset = Dataset(
        action_space=ActionSpace(N_ACTIONS),
        reward_range=RewardRange(0.0, 1.0, maximize=True),
    )
    features = rng.uniform(size=(n, len(FEATURES)))
    actions = rng.integers(0, N_ACTIONS, size=n)
    rewards = np.clip(
        0.3 + 0.05 * actions + 0.4 * features[:, 0] * (actions % 2)
        + rng.normal(0, 0.05, size=n),
        0.0,
        1.0,
    )
    interactions = [
        Interaction(
            context=dict(zip(FEATURES, map(float, features[t]))),
            action=int(actions[t]),
            reward=float(rewards[t]),
            propensity=1.0 / N_ACTIONS,
            timestamp=float(t),
        )
        for t in range(n)
    ]
    dataset.extend(interactions)
    return dataset


@pytest.fixture(scope="module")
def workload():
    log = make_log(N_LOG)
    scalar_slice = log[:N_SCALAR_SLICE]
    policy_class = PolicyClass.random_linear(
        N_CLASS, N_ACTIONS, FEATURES, np.random.default_rng(7)
    )
    scalar_class = PolicyClass(
        policy_class.policies[:N_CLASS_SCALAR], name="scalar-slice-class"
    )
    single_policy = EpsilonGreedyPolicy(policy_class[0], epsilon=0.1)
    return log, scalar_slice, policy_class, scalar_class, single_policy


def _timed(benchmark, fn) -> float:
    """Run ``fn`` under pytest-benchmark, returning the best wall time.

    Timing is taken with our own clock inside the benchmarked callable
    so the result is available regardless of benchmark-plugin options
    (``--benchmark-disable`` still runs the function once).
    """
    durations: list[float] = []

    def run():
        start = time.perf_counter()
        fn()
        durations.append(time.perf_counter() - start)

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1, warmup_rounds=0)
    return min(durations)


class TestSinglePolicyOPE:
    """IPS over the whole log for one candidate policy."""

    def test_bench_ips_vectorized(self, workload, benchmark):
        log, _, _, _, policy = workload
        log.columns()  # one-time featurization outside the timed region
        estimator = IPSEstimator(backend="vectorized")
        seconds = _timed(benchmark, lambda: estimator.estimate(policy, log))
        RESULTS["single_vectorized"] = {
            "n": len(log),
            "seconds": seconds,
            "interactions_per_sec": len(log) / seconds,
        }

    def test_bench_ips_scalar(self, workload, benchmark):
        _, scalar_slice, _, _, policy = workload
        estimator = IPSEstimator(backend="scalar")
        seconds = _timed(
            benchmark, lambda: estimator.estimate(policy, scalar_slice)
        )
        RESULTS["single_scalar"] = {
            "n": len(scalar_slice),
            "seconds": seconds,
            "interactions_per_sec": len(scalar_slice) / seconds,
        }


class TestPolicyClassSearch:
    """IPS-score every member of a policy class on one shared log."""

    def test_bench_class_search_vectorized(self, workload, benchmark):
        log, _, policy_class, _, _ = workload
        optimizer = PolicyClassOptimizer(IPSEstimator(backend="vectorized"))
        seconds = _timed(
            benchmark, lambda: optimizer.score_all(policy_class, log)
        )
        work = len(policy_class) * len(log)
        RESULTS["class_vectorized"] = {
            "n": len(log),
            "n_policies": len(policy_class),
            "seconds": seconds,
            "policy_interactions_per_sec": work / seconds,
        }

    def test_bench_class_search_scalar(self, workload, benchmark):
        _, scalar_slice, _, scalar_class, _ = workload
        optimizer = PolicyClassOptimizer(IPSEstimator(backend="scalar"))
        seconds = _timed(
            benchmark, lambda: optimizer.score_all(scalar_class, scalar_slice)
        )
        work = len(scalar_class) * len(scalar_slice)
        RESULTS["class_scalar"] = {
            "n": len(scalar_slice),
            "n_policies": len(scalar_class),
            "seconds": seconds,
            "policy_interactions_per_sec": work / seconds,
        }


class TestChunkedBackend:
    """The out-of-core fold, timed on the same single-policy workload.

    The chunked path pays for per-chunk Dataset construction and fold
    state merging; the tracked ratio against the vectorized whole-log
    path bounds that overhead so a kernel regression (e.g. accidental
    per-row work inside ``fold``) shows up as a throughput drop.
    """

    def test_bench_ips_chunked(self, workload, benchmark):
        from repro.core.engine import get_chunk_size, set_chunk_size

        log, _, _, _, policy = workload
        estimator = IPSEstimator(backend="chunked")
        previous = get_chunk_size()
        set_chunk_size(CHUNK_SIZE)
        try:
            seconds = _timed(
                benchmark, lambda: estimator.estimate(policy, log)
            )
        finally:
            set_chunk_size(previous)
        RESULTS["single_chunked"] = {
            "n": len(log),
            "chunk_size": CHUNK_SIZE,
            "seconds": seconds,
            "interactions_per_sec": len(log) / seconds,
        }


class TestSharedBackend:
    """Shared-memory parallel fold vs the serial chunked plan.

    Workers attach the packed columns zero-copy, so the per-task
    payload is a descriptor instead of pickled rows.  Wall-clock gains
    require real cores: the artifact records ``cpu_count`` next to the
    ratio so single-core runner numbers (where process scheduling
    overhead dominates and the ratio sits below 1) aren't mistaken for
    an engine regression.  Results are asserted bit-identical to the
    serial chunked plan in the same breath.
    """

    def test_bench_ips_shared(self, workload, benchmark):
        from repro.core import pool as worker_pool
        from repro.core.engine import use_backend

        log, _, _, _, policy = workload
        estimator = IPSEstimator(backend="shared")
        log.columns().shared_block()  # pack + pool spin-up out of band
        worker_pool.get_pool(SHARED_WORKERS)
        try:
            with use_backend(
                "shared", chunk_size=CHUNK_SIZE, workers=SHARED_WORKERS
            ):
                seconds = _timed(
                    benchmark, lambda: estimator.estimate(policy, log)
                )
                shared_result = estimator.estimate(policy, log)
            with use_backend("chunked", chunk_size=CHUNK_SIZE):
                chunked_result = IPSEstimator(backend="chunked").estimate(
                    policy, log
                )
            assert shared_result.value == chunked_result.value, (
                "shared backend must be bit-identical to chunked"
            )
        finally:
            log.columns().release_shared_block()
        RESULTS["single_shared"] = {
            "n": len(log),
            "chunk_size": CHUNK_SIZE,
            "workers": SHARED_WORKERS,
            "cpu_count": os.cpu_count(),
            "seconds": seconds,
            "interactions_per_sec": len(log) / seconds,
        }


class TestShardedBootstrap:
    """Seeded sharded bootstrap: serial vs process-parallel replicates.

    Shard RNGs are keyed ``(seed, shard)`` so both paths produce
    bit-identical intervals; the artifact records the wall-clock ratio
    plus ``cpu_count`` (on single-core runners the "speedup" is ≤1 —
    process overhead with no parallelism to buy).  The artifact also
    records the per-shard pickle payload before and after the
    shared-memory transport: the legacy path shipped the full term
    vector to every shard, the shared path ships a descriptor-sized
    tuple.
    """

    def test_bench_bootstrap_serial_vs_parallel(self, workload, benchmark):
        import pickle

        from repro.core import shm
        from repro.core import pool as worker_pool

        log, _, _, _, policy = workload
        terms = IPSEstimator(backend="vectorized").weighted_rewards(
            policy, log
        )

        serial_seconds = _timed(
            benchmark,
            lambda: bootstrap_interval_from_terms(
                terms, n_boot=N_BOOT, seed=13, workers=1
            ),
        )
        # Spin-up and first-attach out of the timed region, then take
        # the best of ROUNDS — symmetric with the serial measurement.
        worker_pool.get_pool(BOOT_WORKERS)
        bootstrap_interval_from_terms(
            terms, n_boot=BOOTSTRAP_SHARD, seed=13, workers=BOOT_WORKERS
        )
        parallel_durations: list[float] = []
        for _ in range(ROUNDS):
            start = time.perf_counter()
            parallel_interval = bootstrap_interval_from_terms(
                terms, n_boot=N_BOOT, seed=13, workers=BOOT_WORKERS
            )
            parallel_durations.append(time.perf_counter() - start)
        parallel_seconds = min(parallel_durations)
        serial_interval = bootstrap_interval_from_terms(
            terms, n_boot=N_BOOT, seed=13, workers=1
        )
        assert parallel_interval == serial_interval, (
            "parallel bootstrap must be bit-identical to serial"
        )

        # Per-shard payload: what one shard task pickles through the
        # pool, before (full term vector per shard) vs after (job key +
        # once-pickled descriptor blob + counters).
        legacy_bytes = len(pickle.dumps((terms, 256, 13, 0)))
        shared_bytes = None
        if shm.available():
            with shm.SharedArrayBlock.create({"terms": terms}) as block:
                job_key, blob = worker_pool.new_job(
                    (("terms",), block.descriptor)
                )
                shared_bytes = len(
                    pickle.dumps((job_key, blob, 256, 13, 0, False))
                )
        RESULTS["bootstrap"] = {
            "n": len(terms),
            "n_boot": N_BOOT,
            "workers": BOOT_WORKERS,
            "cpu_count": os.cpu_count(),
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "parallel_speedup": serial_seconds / parallel_seconds,
            "per_shard_pickle_bytes": {
                "before": legacy_bytes,
                "after": shared_bytes,
            },
        }


class TestInstrumentationOverhead:
    """Span tracing + metrics on vs off, same kernel, same log.

    The observability layer promises near-zero cost: with no
    instruments installed the hooks hit shared no-op singletons, and
    with a real tracer/registry the per-estimate work is one span and
    a few counter bumps.  The tracked ratio (instrumented / plain
    throughput) gates that promise: full mode asserts < 5% overhead,
    and the smoke artifact feeds ``gate.py`` so a hook that starts
    allocating per row shows up as a regression.
    """

    def test_bench_instrumentation_overhead(self, workload, benchmark):
        log, _, _, _, policy = workload
        log.columns()
        estimator = IPSEstimator(backend="vectorized")
        plain_seconds = _timed(
            benchmark, lambda: estimator.estimate(policy, log)
        )
        durations: list[float] = []
        for _ in range(ROUNDS):
            with use_tracer(), use_metrics():
                start = time.perf_counter()
                estimator.estimate(policy, log)
                durations.append(time.perf_counter() - start)
        instrumented_seconds = min(durations)
        relative = plain_seconds / instrumented_seconds
        RESULTS["instrumentation"] = {
            "n": len(log),
            "plain_seconds": plain_seconds,
            "instrumented_seconds": instrumented_seconds,
            "relative_throughput": relative,
        }
        if not SMOKE:
            assert relative >= 0.95, (
                f"instrumentation overhead {(1 - relative):.1%} exceeds "
                "the 5% acceptance bound"
            )


class TestMonitorOverhead:
    """Streaming health monitors on vs off over the batched harvest.

    The watchtower promises ≤10% cost on the harvest hot path: with a
    :class:`~repro.obs.monitors.MonitorSuite` installed, every batch's
    propensities additionally feed the windowed-ESS / floor / tail
    folds (vectorized, O(batch)).  Rounds are *interleaved* (plain,
    monitored, plain, …) so thermal and cache drift hits both arms
    equally, and min-of-rounds is compared.  Monitors read the stream
    but never touch the RNG, so the sampled actions and propensities
    are asserted bit-identical with the suite on or off.

    Like the ledger benchmark, this ratio is held to an **absolute
    floor** (0.9 in ``gate.py``), so the smoke row count stays large
    enough (20k events) that the amortized per-batch fold cost is
    measured rather than fixed setup jitter, and extra rounds tighten
    the min.
    """

    def test_bench_monitor_overhead(self):
        from repro.machinehealth.dataset import (
            build_full_feedback_dataset,
            simulate_exploration_columns,
        )
        from repro.obs.monitors import MonitorSuite, use_monitors

        full = build_full_feedback_dataset(
            n_events=max(N_HARVEST, 20_000), seed=33
        )

        def plain():
            return simulate_exploration_columns(
                full.full, np.random.default_rng(0)
            )

        def monitored():
            with use_metrics(), use_monitors(MonitorSuite()):
                return simulate_exploration_columns(
                    full.full, np.random.default_rng(0)
                )

        # Warmup both arms; monitors must not perturb the stream.
        base, watched = plain(), monitored()
        np.testing.assert_array_equal(base.actions, watched.actions)
        np.testing.assert_array_equal(
            base.propensities, watched.propensities
        )
        plain_durations: list[float] = []
        monitored_durations: list[float] = []
        for _ in range(max(ROUNDS, 5)):
            start = time.perf_counter()
            plain()
            plain_durations.append(time.perf_counter() - start)
            start = time.perf_counter()
            monitored()
            monitored_durations.append(time.perf_counter() - start)
        plain_seconds = min(plain_durations)
        monitored_seconds = min(monitored_durations)
        relative = plain_seconds / monitored_seconds
        RESULTS["obs_monitor"] = {
            "n": max(N_HARVEST, 20_000),
            "plain_seconds": plain_seconds,
            "monitored_seconds": monitored_seconds,
            "relative_throughput": relative,
        }
        if not SMOKE:
            assert relative >= 0.9, (
                f"monitor overhead {(1 - relative):.1%} exceeds the 10% "
                "acceptance bound"
            )


class TestHarvestThroughput:
    """Batched ``act_batch`` harvesting vs per-row, per scenario.

    "Per-row" is ``batch_size=1`` through the same engine — the same
    RNG stream, documented as such — timed on a slice and compared on
    rows/second (size-independent for both modes).  Scenario data
    preparation (fleet generation, cache simulation, reward-matrix
    reconstruction) is identical in both modes and excluded from the
    timed region; what is measured is the harvest engine itself: one
    ``act_batch`` + one reward gather per batch.  Each scenario uses a
    stochastic logging policy, so the inverse-CDF sampler is on the
    timed path.
    """

    def _record(self, key, policy_name, n_batch, batch_seconds,
                n_per_row, per_row_seconds):
        batch_rps = n_batch / batch_seconds
        per_row_rps = n_per_row / per_row_seconds
        RESULTS[f"harvest_{key}"] = {
            "policy": policy_name,
            "n_batch": n_batch,
            "batch_seconds": batch_seconds,
            "batch_rows_per_sec": batch_rps,
            "n_per_row": n_per_row,
            "per_row_seconds": per_row_seconds,
            "per_row_rows_per_sec": per_row_rps,
            "speedup": batch_rps / per_row_rps,
        }

    def _per_row_seconds(self, harvest, rounds=ROUNDS) -> float:
        durations = []
        for _ in range(rounds):
            start = time.perf_counter()
            harvest()
            durations.append(time.perf_counter() - start)
        return min(durations)

    def test_bench_harvest_machinehealth(self, benchmark):
        from repro.machinehealth.dataset import (
            build_full_feedback_dataset,
            simulate_exploration_columns,
        )

        full = build_full_feedback_dataset(n_events=N_HARVEST, seed=21)
        batch_seconds = _timed(
            benchmark,
            lambda: simulate_exploration_columns(
                full.full, np.random.default_rng(0)
            ),
        )
        small = build_full_feedback_dataset(n_events=N_HARVEST_PER_ROW, seed=21)
        per_row_seconds = self._per_row_seconds(
            lambda: simulate_exploration_columns(
                small.full, np.random.default_rng(0), batch_size=1
            )
        )
        self._record(
            "machinehealth", "uniform-random", N_HARVEST, batch_seconds,
            N_HARVEST_PER_ROW, per_row_seconds,
        )

    def test_bench_harvest_loadbalance(self, benchmark):
        from repro.loadbalance.harvest import (
            batch_exploration_columns,
            synthetic_decision_snapshots,
        )
        from repro.loadbalance.policies import weighted_random_policy
        from repro.loadbalance.proxy import fig5_servers

        servers = fig5_servers()
        policy = weighted_random_policy([0.7, 0.3])
        snapshots = synthetic_decision_snapshots(N_HARVEST, 2, seed=21)
        batch_seconds = _timed(
            benchmark,
            lambda: batch_exploration_columns(
                policy, snapshots, servers, np.random.default_rng(0)
            ),
        )
        small = synthetic_decision_snapshots(N_HARVEST_PER_ROW, 2, seed=21)
        per_row_seconds = self._per_row_seconds(
            lambda: batch_exploration_columns(
                policy, small, servers, np.random.default_rng(0),
                batch_size=1,
            )
        )
        self._record(
            "loadbalance", policy.name, N_HARVEST, batch_seconds,
            N_HARVEST_PER_ROW, per_row_seconds,
        )

    def test_bench_harvest_cache(self, benchmark):
        from repro.cache.eviction import random_eviction_policy
        from repro.cache.harvest import (
            _context_from_candidates,
            candidate_reward_matrix,
        )
        from repro.cache.keyspace_log import parse_keyspace_line
        from repro.cache.sim import CacheSim
        from repro.cache.workload import BigSmallWorkload
        from repro.core.harvest import harvest_columns
        from repro.simsys.random_source import RandomSource

        workload = BigSmallWorkload(
            n_big=20, n_small=200,
            randomness=RandomSource(21, _name="bench-wl"),
        )
        sim = CacheSim(150, random_eviction_policy(), seed=21)
        result = sim.run(
            workload.requests(N_CACHE_REQUESTS), keep_log=True
        )
        events = [
            parsed
            for parsed in map(parse_keyspace_line, result.log_lines)
            if parsed is not None
        ]
        evictions, rewards = candidate_reward_matrix(events, 5)
        contexts = [
            _context_from_candidates(event.candidates[:5])
            for event in evictions
        ]
        eligible = [
            tuple(range(min(len(event.candidates), 5))) or (0,)
            for event in evictions
        ]

        def reveal(indices, actions):
            return rewards[indices, actions]

        policy = random_eviction_policy()
        harvest = lambda size, n: harvest_columns(  # noqa: E731
            policy, contexts[:n], reveal, np.random.default_rng(0),
            eligible=eligible[:n], batch_size=size, scenario="cache",
        )
        n_batch = len(evictions)
        n_per_row = min(N_HARVEST_PER_ROW, n_batch)
        batch_seconds = _timed(benchmark, lambda: harvest(8_192, n_batch))
        per_row_seconds = self._per_row_seconds(
            lambda: harvest(1, n_per_row)
        )
        self._record(
            "cache", policy.name, n_batch, batch_seconds,
            n_per_row, per_row_seconds,
        )


class TestLedgerOverhead:
    """Audit-ledger cost on the batched harvest hot path.

    The decision ledger promises O(1) per batch while sampling —
    ``extend_batch`` stores array references and the SHA-256 chain
    seals lazily at serialization time — so a ledgered harvest
    (HKDF-derived ``StreamRNG`` + ledger attached) must hold at least
    90% of plain-generator throughput.  ``relative_throughput`` is
    gated with an **absolute floor** of 0.9 in ``gate.py`` (full mode
    asserts it here too); the deferred seal is timed separately and
    reported per row (informational — paid once, at rest).

    Because the floor is absolute, this measurement needs more care
    than the baseline-relative ratios: plain and ledgered rounds are
    *interleaved* (so clock-frequency drift hits both sides equally)
    and the smoke row count stays large enough (20k rows) that the
    per-shard derivation cost is measured, not setup jitter.
    """

    def test_bench_ledger_overhead(self, benchmark):
        from repro.audit.ledger import DecisionLedger
        from repro.audit.streams import StreamKey, StreamRegistry
        from repro.core.harvest import harvest_columns
        from repro.core.policies import UniformRandomPolicy

        n = max(N_HARVEST, 20_000)
        rounds = max(ROUNDS, 9)
        contexts = [
            {"x": float(v)}
            for v in np.random.default_rng(5).normal(size=n)
        ]
        eligible = tuple(range(N_ACTIONS))
        reward = lambda indices, actions: np.zeros(len(indices))  # noqa: E731
        policy = UniformRandomPolicy()

        def plain():
            harvest_columns(
                policy, contexts, reward, np.random.default_rng(0),
                eligible=eligible, batch_size=8_192,
            )

        ledgers: list[DecisionLedger] = []

        def ledgered():
            # StreamRNG is forward-only and the chain grows, so each
            # round gets a fresh derivation + ledger (setup is O(1)).
            registry = StreamRegistry(0)
            stream = registry.stream(
                "bench", "harvest", "decisions", shard_size=8_192
            )
            ledger = DecisionLedger(
                StreamKey("bench", "harvest", "decisions"),
                shard_size=8_192,
            )
            harvest_columns(
                policy, contexts, reward, stream,
                eligible=eligible, batch_size=8_192, ledger=ledger,
            )
            ledgers.append(ledger)

        plain()  # warm caches on both paths before any timed round
        benchmark.pedantic(ledgered, rounds=1, iterations=1, warmup_rounds=0)

        plain_durations: list[float] = []
        ledgered_durations: list[float] = []
        for _ in range(rounds):
            start = time.perf_counter()
            plain()
            plain_durations.append(time.perf_counter() - start)
            start = time.perf_counter()
            ledgered()
            ledgered_durations.append(time.perf_counter() - start)
        plain_seconds = min(plain_durations)
        ledgered_seconds = min(ledgered_durations)

        start = time.perf_counter()
        head = ledgers[-1].head
        seal_seconds = time.perf_counter() - start
        assert len(head) == 64

        relative = plain_seconds / ledgered_seconds
        RESULTS["ledger"] = {
            "n": n,
            "plain_seconds": plain_seconds,
            "ledgered_seconds": ledgered_seconds,
            "relative_throughput": relative,
            "seal_seconds": seal_seconds,
            "seal_us_per_row": seal_seconds / n * 1e6,
        }
        if not SMOKE:
            assert relative >= 0.9, (
                f"ledgered harvest at {relative:.2f}x plain throughput "
                "breaches the 10% overhead budget"
            )


class TestShardedHarvestThroughput:
    """Coordinator overhead: sharded harvest vs the monolithic loop.

    The shard-native refactor routes every ledgered harvest through
    ``HarvestCoordinator`` — shard specs, provisional GENESIS-anchored
    seals, payload checksums, and a final splice — even at
    ``workers=1``.  That machinery must cost ≤10% over the monolithic
    serial loop it replaced: ``relative_throughput`` (serial seconds /
    sharded-at-one-worker seconds) is held to an **absolute floor**
    of 0.9 in ``gate.py``.  A ``workers=cpu_count`` row rides along as
    informational — recorded next to ``cpu_count`` because process
    fan-out buys nothing on a single-core runner.

    As with the ledger benchmark, the absolute floor demands care:
    serial and sharded rounds are interleaved so clock drift hits both
    sides, both paths share one prebuilt ``HarvestInputs`` (context
    construction is excluded), and min-of-rounds discards scheduler
    noise.
    """

    def test_bench_sharded_harvest(self, benchmark):
        from repro.core import pool as worker_pool
        from repro.core.coordinator import (
            HarvestCoordinator,
            HarvestJob,
            build_inputs,
        )
        from repro.core.policies import UniformRandomPolicy
        from repro.audit.ledger import DecisionLedger
        from repro.audit.streams import StreamRegistry, StreamRNG
        from repro.core.harvest import harvest_columns

        n = max(N_HARVEST, 20_000)
        rounds = max(ROUNDS, 9)
        shard_size = 2_048
        job = HarvestJob(
            scenario="synthetic",
            rows=n,
            master_seed=7,
            policy=UniformRandomPolicy(),
            shard_size=shard_size,
            batch_size=shard_size,
        )
        inputs = build_inputs(job, StreamRegistry(job.master_seed))
        key = job.stream_key()
        heads: dict[str, str] = {}

        def serial():
            registry = StreamRegistry(job.master_seed)
            stream = StreamRNG(registry, key, shard_size=shard_size)
            ledger = DecisionLedger(
                key,
                shard_size=shard_size,
                master_fingerprint=registry.master_fingerprint,
            )
            harvest_columns(
                job.policy, inputs.contexts, inputs.reward_fn, stream,
                eligible=inputs.eligible, batch_size=job.batch_size,
                scenario=job.scenario, ledger=ledger,
            )
            heads["serial"] = ledger.head

        def sharded():
            result = HarvestCoordinator(job, workers=1, inputs=inputs).run()
            heads["sharded"] = result.head

        serial()  # warm caches on both paths before any timed round
        benchmark.pedantic(sharded, rounds=1, iterations=1, warmup_rounds=0)
        assert heads["sharded"] == heads["serial"]

        serial_durations: list[float] = []
        sharded_durations: list[float] = []
        for _ in range(rounds):
            start = time.perf_counter()
            serial()
            serial_durations.append(time.perf_counter() - start)
            start = time.perf_counter()
            sharded()
            sharded_durations.append(time.perf_counter() - start)
        serial_seconds = min(serial_durations)
        sharded_seconds = min(sharded_durations)

        workers = os.cpu_count() or 1
        worker_pool.reset_pool()
        parallel_durations: list[float] = []
        for _ in range(max(1, rounds // 3)):
            start = time.perf_counter()
            result = HarvestCoordinator(
                job, workers=workers, inputs=inputs
            ).run()
            parallel_durations.append(time.perf_counter() - start)
            assert result.head == heads["serial"]
            assert result.retries == 0
        worker_pool.reset_pool()
        parallel_seconds = min(parallel_durations)

        relative = serial_seconds / sharded_seconds
        RESULTS["sharded"] = {
            "n": n,
            "shard_size": shard_size,
            "n_shards": -(-n // shard_size),
            "cpu_count": os.cpu_count(),
            "serial_seconds": serial_seconds,
            "sharded_seconds": sharded_seconds,
            "relative_throughput": relative,
            "parallel_workers": workers,
            "parallel_seconds": parallel_seconds,
            "parallel_speedup": serial_seconds / parallel_seconds,
        }
        if not SMOKE:
            assert relative >= 0.9, (
                f"sharded harvest at workers=1 runs at {relative:.2f}x "
                "serial throughput, breaching the 10% coordination budget"
            )


class TestServeThroughput:
    """Online decision service: the decide core and the batcher loop.

    Two interleaved measurements: the synchronous ``decide`` hot path
    (contexts from the pool, HKDF stream draws, vectorized
    ``act_batch``, reward law, O(1) ledger append) and the full
    in-process serving loop — asyncio batcher coalescing 8 concurrent
    clients asking 64 decisions each, the shape the TCP server drives.
    The batched number is the ISSUE 10 acceptance target: at least
    50k decisions/sec single-process, held as an **absolute floor** on
    ``serve.decisions_per_sec`` in ``gate.py`` (full mode asserts it
    here too).  ``cpu_count`` is recorded next to the row — serving is
    single-loop, but scheduler noise on starved runners still matters
    when reading the history.

    Like the other absolute-floor rows, direct and batched rounds are
    interleaved so clock-frequency drift hits both sides, and
    min-of-rounds discards scheduler noise.
    """

    def test_bench_serve_decisions(self, benchmark):
        import asyncio

        from repro.core.policies import UniformRandomPolicy
        from repro.serve import DecisionService, RequestBatcher

        n = N_SERVE
        rounds = max(ROUNDS, 5)
        ask = 64
        clients = 8

        def make_service():
            return DecisionService(
                "synthetic",
                UniformRandomPolicy(),
                pool_rows=8_192,
                seed=9,
                shard_size=8_192,
                config={"n_actions": N_ACTIONS},
            )

        def direct():
            # StreamRNG is forward-only, so each round serves a fresh
            # service from ordinal 0 (setup is O(pool), excluded from
            # neither side — both paths pay it identically).
            service = make_service()
            while service.served < n:
                service.decide(min(8_192, n - service.served))

        def batched():
            async def drive():
                service = make_service()
                batcher = RequestBatcher(service, max_batch=8_192)
                await batcher.start()
                remaining = {"n": n}

                async def client():
                    while remaining["n"] > 0:
                        take = min(ask, remaining["n"])
                        remaining["n"] -= take
                        await batcher.ask(take)

                await asyncio.gather(*[client() for _ in range(clients)])
                await batcher.stop()
                assert service.served == n

            asyncio.run(drive())

        direct()  # warm caches on both paths before any timed round
        benchmark.pedantic(batched, rounds=1, iterations=1, warmup_rounds=0)

        direct_durations: list[float] = []
        batched_durations: list[float] = []
        for _ in range(rounds):
            start = time.perf_counter()
            direct()
            direct_durations.append(time.perf_counter() - start)
            start = time.perf_counter()
            batched()
            batched_durations.append(time.perf_counter() - start)
        direct_seconds = min(direct_durations)
        batched_seconds = min(batched_durations)

        decisions_per_sec = n / batched_seconds
        RESULTS["serve"] = {
            "n": n,
            "ask": ask,
            "clients": clients,
            "cpu_count": os.cpu_count(),
            "direct_seconds": direct_seconds,
            "direct_decisions_per_sec": n / direct_seconds,
            "batched_seconds": batched_seconds,
            "decisions_per_sec": decisions_per_sec,
        }
        if not SMOKE:
            assert decisions_per_sec >= MIN_SERVE_DECISIONS_PER_SEC, (
                f"serving loop at {decisions_per_sec:,.0f} decisions/sec "
                f"is below the {MIN_SERVE_DECISIONS_PER_SEC:,.0f}/sec "
                "acceptance floor"
            )


class TestThroughputArtifact:
    """Derive speedups, write ``BENCH_ope.json``, enforce the gate."""

    def test_record_and_gate(self):
        assert set(RESULTS) >= {
            "single_vectorized",
            "single_scalar",
            "class_vectorized",
            "class_scalar",
            "single_chunked",
            "single_shared",
            "bootstrap",
            "instrumentation",
            "obs_monitor",
            "harvest_machinehealth",
            "harvest_loadbalance",
            "harvest_cache",
            "ledger",
            "sharded",
            "serve",
        }, "benchmark tests must run before the artifact test (file order)"
        single_speedup = (
            RESULTS["single_vectorized"]["interactions_per_sec"]
            / RESULTS["single_scalar"]["interactions_per_sec"]
        )
        class_speedup = (
            RESULTS["class_vectorized"]["policy_interactions_per_sec"]
            / RESULTS["class_scalar"]["policy_interactions_per_sec"]
        )
        chunked_relative = (
            RESULTS["single_chunked"]["interactions_per_sec"]
            / RESULTS["single_vectorized"]["interactions_per_sec"]
        )
        shared_relative = (
            RESULTS["single_shared"]["interactions_per_sec"]
            / RESULTS["single_vectorized"]["interactions_per_sec"]
        )
        artifact = {
            "workload": {
                "smoke": SMOKE,
                "n_log": N_LOG,
                "n_actions": N_ACTIONS,
                "n_policies": N_CLASS,
                "n_scalar_slice": N_SCALAR_SLICE,
                "n_policies_scalar": N_CLASS_SCALAR,
                "cpu_count": os.cpu_count(),
            },
            "single_policy_ips": {
                "vectorized": RESULTS["single_vectorized"],
                "scalar": RESULTS["single_scalar"],
                "speedup": single_speedup,
            },
            "class_search": {
                "vectorized": RESULTS["class_vectorized"],
                "scalar": RESULTS["class_scalar"],
                "speedup": class_speedup,
            },
            "chunked": {
                "single": RESULTS["single_chunked"],
                "relative_throughput": chunked_relative,
            },
            "shared": {
                "single": RESULTS["single_shared"],
                "relative_throughput": shared_relative,
            },
            "bootstrap": RESULTS["bootstrap"],
            "instrumentation": RESULTS["instrumentation"],
            "obs": {"monitor_overhead": RESULTS["obs_monitor"]},
            "harvest": {
                "machinehealth": RESULTS["harvest_machinehealth"],
                "loadbalance": RESULTS["harvest_loadbalance"],
                "cache": RESULTS["harvest_cache"],
            },
            "ledger": RESULTS["ledger"],
            "sharded": RESULTS["sharded"],
            "serve": RESULTS["serve"],
        }
        with open(ARTIFACT_PATH, "w", encoding="utf-8") as f:
            json.dump(artifact, f, indent=2)
            f.write("\n")

        print_table(
            "OPE engine throughput (vectorized vs scalar)",
            ["kernel", "scalar /s", "vectorized /s", "speedup"],
            [
                [
                    "single-policy IPS (interactions/s)",
                    f"{RESULTS['single_scalar']['interactions_per_sec']:.0f}",
                    f"{RESULTS['single_vectorized']['interactions_per_sec']:.0f}",
                    f"{single_speedup:.1f}x",
                ],
                [
                    "class search (policy-interactions/s)",
                    f"{RESULTS['class_scalar']['policy_interactions_per_sec']:.0f}",
                    f"{RESULTS['class_vectorized']['policy_interactions_per_sec']:.0f}",
                    f"{class_speedup:.1f}x",
                ],
                [
                    "chunked fold (vs vectorized)",
                    "-",
                    f"{RESULTS['single_chunked']['interactions_per_sec']:.0f}",
                    f"{chunked_relative:.2f}x",
                ],
                [
                    (
                        f"shared fold x{RESULTS['single_shared']['workers']}"
                        f" workers ({RESULTS['single_shared']['cpu_count']}"
                        " cpu)"
                    ),
                    "-",
                    f"{RESULTS['single_shared']['interactions_per_sec']:.0f}",
                    f"{shared_relative:.2f}x",
                ],
                [
                    (
                        f"bootstrap x{RESULTS['bootstrap']['workers']}"
                        f" workers ({RESULTS['bootstrap']['cpu_count']} cpu)"
                    ),
                    f"{RESULTS['bootstrap']['serial_seconds']:.3f}s",
                    f"{RESULTS['bootstrap']['parallel_seconds']:.3f}s",
                    f"{RESULTS['bootstrap']['parallel_speedup']:.2f}x",
                ],
                [
                    "bootstrap per-shard pickle bytes",
                    str(RESULTS["bootstrap"]["per_shard_pickle_bytes"]["before"]),
                    str(RESULTS["bootstrap"]["per_shard_pickle_bytes"]["after"]),
                    "-",
                ],
                [
                    "instrumented IPS (vs plain)",
                    f"{RESULTS['instrumentation']['plain_seconds']:.3f}s",
                    f"{RESULTS['instrumentation']['instrumented_seconds']:.3f}s",
                    f"{RESULTS['instrumentation']['relative_throughput']:.2f}x",
                ],
                [
                    "monitored harvest (vs plain)",
                    f"{RESULTS['obs_monitor']['plain_seconds']:.3f}s",
                    f"{RESULTS['obs_monitor']['monitored_seconds']:.3f}s",
                    f"{RESULTS['obs_monitor']['relative_throughput']:.2f}x",
                ],
            ]
            + [
                [
                    f"harvest {scenario} (rows/s)",
                    f"{RESULTS[f'harvest_{scenario}']['per_row_rows_per_sec']:.0f}",
                    f"{RESULTS[f'harvest_{scenario}']['batch_rows_per_sec']:.0f}",
                    f"{RESULTS[f'harvest_{scenario}']['speedup']:.1f}x",
                ]
                for scenario in ("machinehealth", "loadbalance", "cache")
            ]
            + [
                [
                    "ledgered harvest (vs plain)",
                    f"{RESULTS['ledger']['plain_seconds']:.3f}s",
                    f"{RESULTS['ledger']['ledgered_seconds']:.3f}s",
                    f"{RESULTS['ledger']['relative_throughput']:.2f}x",
                ],
                [
                    "sharded harvest workers=1 (vs serial)",
                    f"{RESULTS['sharded']['serial_seconds']:.3f}s",
                    f"{RESULTS['sharded']['sharded_seconds']:.3f}s",
                    f"{RESULTS['sharded']['relative_throughput']:.2f}x",
                ],
                [
                    (
                        f"sharded harvest x{RESULTS['sharded']['parallel_workers']}"
                        f" workers ({RESULTS['sharded']['cpu_count']} cpu)"
                    ),
                    f"{RESULTS['sharded']['serial_seconds']:.3f}s",
                    f"{RESULTS['sharded']['parallel_seconds']:.3f}s",
                    f"{RESULTS['sharded']['parallel_speedup']:.2f}x",
                ],
                [
                    "serve decide core (decisions/s)",
                    "-",
                    f"{RESULTS['serve']['direct_decisions_per_sec']:.0f}",
                    "-",
                ],
                [
                    (
                        f"serve batcher x{RESULTS['serve']['clients']}"
                        f" clients ({RESULTS['serve']['cpu_count']} cpu, "
                        "decisions/s)"
                    ),
                    "-",
                    f"{RESULTS['serve']['decisions_per_sec']:.0f}",
                    "-",
                ],
            ],
        )
        if not SMOKE:
            assert class_speedup >= MIN_SPEEDUP, (
                f"class-search speedup {class_speedup:.1f}x below the "
                f"{MIN_SPEEDUP:.0f}x acceptance target"
            )
            for scenario in ("machinehealth", "loadbalance", "cache"):
                speedup = RESULTS[f"harvest_{scenario}"]["speedup"]
                assert speedup >= MIN_HARVEST_SPEEDUP, (
                    f"harvest {scenario} batch speedup {speedup:.1f}x "
                    f"below the {MIN_HARVEST_SPEEDUP:.0f}x acceptance target"
                )
