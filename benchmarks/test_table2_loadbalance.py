"""Table 2: load-balancing policies, off-policy vs online evaluation.

Paper (Nginx, two-server Fig. 5 setup):

    Policy        | Off-policy eval | Online eval
    Random        | 0.44s           | 0.44s
    Least loaded  | 0.36s           | 0.38s
    Send to 1     | 0.31s           | 0.70s    <- OPE breaks
    CB policy     | 0.32s           | 0.35s

The qualitative shape we assert:

- random's offline estimate matches its online value (IPS is unbiased
  for the logging policy);
- send-to-1 has the *best* offline estimate but the *worst* online
  latency, by roughly a 2x blow-up — the A1 violation;
- the learned CB policy beats least-loaded online (optimization works
  even where evaluation fails).
"""

import numpy as np
import pytest

from repro.core import IPSEstimator, UniformRandomPolicy
from repro.loadbalance import LoadBalancerSim, Workload, fig5_servers
from repro.loadbalance.harvest import dataset_from_access_log, train_cb_policy
from repro.loadbalance.policies import (
    least_loaded_policy,
    random_policy,
    send_to_policy,
)
from repro.simsys.random_source import RandomSource

from benchmarks.conftest import print_table

ARRIVAL_RATE = 10.0
N_COLLECT = 12000
N_ONLINE = 8000
ONLINE_SEEDS = (7, 8, 9)


def run_online(policy, n=N_ONLINE, seeds=ONLINE_SEEDS):
    latencies = []
    for seed in seeds:
        workload = Workload(
            ARRIVAL_RATE, randomness=RandomSource(seed, _name="wl")
        )
        sim = LoadBalancerSim(fig5_servers(), policy, workload, seed=seed)
        latencies.append(sim.run(n).mean_latency)
    return float(np.mean(latencies))


@pytest.fixture(scope="module")
def table2():
    workload = Workload(ARRIVAL_RATE, randomness=RandomSource(42, _name="wl"))
    collector = LoadBalancerSim(
        fig5_servers(), random_policy(), workload, seed=42
    )
    collection = collector.run(N_COLLECT)
    dataset = dataset_from_access_log(
        collection.access_log, logging_policy=UniformRandomPolicy()
    )
    candidates = {
        "Random": random_policy(),
        "Least loaded": least_loaded_policy(),
        "Send to 1": send_to_policy(0),
        "CB policy": train_cb_policy(dataset, n_servers=2),
    }
    ips = IPSEstimator()
    return {
        name: (ips.estimate(policy, dataset).value, run_online(policy))
        for name, policy in candidates.items()
    }


class TestTable2:
    def test_random_offline_matches_online(self, table2):
        offline, online = table2["Random"]
        assert offline == pytest.approx(online, rel=0.08)

    def test_send_to_one_has_best_offline_estimate(self, table2):
        send_offline = table2["Send to 1"][0]
        assert send_offline < table2["Random"][0]
        assert send_offline < table2["Least loaded"][0]

    def test_send_to_one_is_worst_online(self, table2):
        send_online = table2["Send to 1"][1]
        assert all(
            send_online > online
            for name, (_, online) in table2.items()
            if name != "Send to 1"
        )

    def test_send_to_one_online_blowup(self, table2):
        """The paper's 0.31 → 0.70 is a ~2.3x offline-to-online gap;
        ours must blow up by at least ~1.8x."""
        offline, online = table2["Send to 1"]
        assert online > 1.8 * offline

    def test_least_loaded_beats_random_both_ways(self, table2):
        assert table2["Least loaded"][0] < table2["Random"][0]
        assert table2["Least loaded"][1] < table2["Random"][1]

    def test_cb_policy_beats_least_loaded_online(self, table2):
        assert table2["CB policy"][1] < table2["Least loaded"][1]

    def test_cb_policy_offline_estimate_is_honest(self, table2):
        """Unlike send-to-1, the CB policy's offline estimate is close
        to its online value (it keeps load balanced, so the logged
        context distribution stays representative)."""
        offline, online = table2["CB policy"]
        assert abs(online - offline) / online < 0.35

    def test_print_table(self, table2):
        rows = [
            [name, f"{offline:.2f}s", f"{online:.2f}s"]
            for name, (offline, online) in table2.items()
        ]
        print_table(
            "Table 2: mean request latency (Nginx sim)",
            ["Policy", "Off-policy evaluation", "Online evaluation"],
            rows,
        )

    def test_benchmark_ips_evaluation(self, table2, benchmark):
        workload = Workload(
            ARRIVAL_RATE, randomness=RandomSource(1, _name="wl")
        )
        sim = LoadBalancerSim(
            fig5_servers(), random_policy(), workload, seed=1
        )
        dataset = dataset_from_access_log(
            sim.run(2000).access_log, logging_policy=UniformRandomPolicy()
        )
        ips = IPSEstimator()
        benchmark(ips.estimate, least_loaded_policy(), dataset)
