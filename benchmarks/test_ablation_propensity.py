"""Ablation abl-propensity: declared vs inferred propensities.

§3: "In our experience, p can often be inferred from code inspection,
but a more robust approach is to do a regression on the ⟨x, a, r⟩ data
to learn the probability distribution over actions."

We harvest the same Nginx-style log three ways — declared (code
inspection says uniform), empirical frequencies, and softmax-regression
inference — and compare the resulting IPS estimates for fixed policies
against the declared-propensity gold standard and against online truth.
A fourth, *misdeclared* variant (claiming the logger favored server 0)
quantifies the cost of getting step 2 wrong.
"""

import numpy as np
import pytest

from repro.core import IPSEstimator, UniformRandomPolicy
from repro.core.propensity import (
    DeclaredPropensityModel,
    EmpiricalPropensityModel,
    RegressionPropensityModel,
)
from repro.loadbalance import LoadBalancerSim, Workload, fig5_servers
from repro.loadbalance.harvest import exploration_dataset_from_entries
from repro.loadbalance.policies import (
    least_loaded_policy,
    random_policy,
    weighted_random_policy,
)
from repro.simsys.random_source import RandomSource

from benchmarks.conftest import print_table

N_COLLECT = 12000


@pytest.fixture(scope="module")
def study():
    workload = Workload(10.0, randomness=RandomSource(42, _name="wl"))
    collector = LoadBalancerSim(
        fig5_servers(), random_policy(), workload, seed=42
    )
    entries = collector.run(N_COLLECT).access_log

    online_workload = Workload(10.0, randomness=RandomSource(7, _name="wl"))
    online_ll = LoadBalancerSim(
        fig5_servers(), least_loaded_policy(), online_workload, seed=7
    ).run(8000).mean_latency

    contexts = []
    for entry in entries:
        context = {
            f"conns_{i}": float(c) for i, c in enumerate(entry.connections)
        }
        context["req_weight"] = entry.request_weight
        contexts.append(context)
    actions = [entry.upstream for entry in entries]

    models = {
        "declared (uniform)": DeclaredPropensityModel(UniformRandomPolicy()),
        "empirical": EmpiricalPropensityModel().fit(actions),
        "regression": RegressionPropensityModel(2, epochs=2).fit(
            contexts, actions
        ),
        "misdeclared (70/30)": DeclaredPropensityModel(
            weighted_random_policy([0.7, 0.3])
        ),
    }
    ips = IPSEstimator()
    estimates = {}
    for name, model in models.items():
        dataset = exploration_dataset_from_entries(entries, model)
        estimates[name] = {
            "random": ips.estimate(random_policy(), dataset).value,
            "least-loaded": ips.estimate(least_loaded_policy(), dataset).value,
        }
    sample_mean = float(
        np.mean([entry.upstream_response_time for entry in entries])
    )
    return estimates, sample_mean, online_ll


class TestPropensityAblation:
    def test_empirical_matches_declared(self, study):
        estimates, _, _ = study
        for policy in ("random", "least-loaded"):
            assert estimates["empirical"][policy] == pytest.approx(
                estimates["declared (uniform)"][policy], rel=0.05
            )

    def test_regression_matches_declared(self, study):
        estimates, _, _ = study
        for policy in ("random", "least-loaded"):
            assert estimates["regression"][policy] == pytest.approx(
                estimates["declared (uniform)"][policy], rel=0.10
            )

    def test_declared_random_estimate_equals_sample_mean(self, study):
        estimates, sample_mean, _ = study
        assert estimates["declared (uniform)"]["random"] == pytest.approx(
            sample_mean
        )

    def test_inferred_propensities_give_accurate_ll_estimate(self, study):
        """Least-loaded doesn't shift the context distribution much, so
        even its *inferred*-propensity offline estimate lands near its
        online truth."""
        estimates, _, online_ll = study
        assert estimates["empirical"]["least-loaded"] == pytest.approx(
            online_ll, rel=0.25
        )

    def test_misdeclared_propensities_bias_the_estimate(self, study):
        """Getting step 2 wrong breaks unbiasedness: claiming the
        logger favored server 0 visibly skews the random-policy
        estimate away from the sample mean."""
        estimates, sample_mean, _ = study
        error_good = abs(
            estimates["declared (uniform)"]["random"] - sample_mean
        )
        error_bad = abs(
            estimates["misdeclared (70/30)"]["random"] - sample_mean
        )
        assert error_bad > 10 * max(error_good, 1e-12)

    def test_print_table(self, study):
        estimates, sample_mean, online_ll = study
        rows = [
            [name, f"{vals['random']:.3f}s", f"{vals['least-loaded']:.3f}s"]
            for name, vals in estimates.items()
        ]
        rows.append(["(truth)", f"{sample_mean:.3f}s", f"{online_ll:.3f}s"])
        print_table(
            "Ablation abl-propensity: IPS estimates under different "
            "propensity models",
            ["propensity model", "random policy", "least-loaded"],
            rows,
        )

    def test_benchmark_regression_inference(self, benchmark):
        rng = np.random.default_rng(0)
        contexts = [{"x": float(rng.uniform())} for _ in range(2000)]
        actions = [int(rng.integers(2)) for _ in range(2000)]

        def fit():
            return RegressionPropensityModel(2, epochs=1).fit(
                contexts, actions
            )

        benchmark(fit)
