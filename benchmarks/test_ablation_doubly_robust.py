"""Ablation abl-dr: does Doubly Robust reduce IPS variance?

§5 proposes "leveraging doubly robust techniques, which use modeling to
predict rewards, to reduce this variance."  We measure it on the
machine-health scenario: evaluate the trained CB policy with IPS,
SNIPS, DM, and DR across many independent partial-feedback simulations
and compare spread and bias against the full-feedback ground truth.
"""

import numpy as np
import pytest

from repro.core.estimators.direct import DirectMethodEstimator
from repro.core.estimators.doubly_robust import DoublyRobustEstimator
from repro.core.estimators.ips import IPSEstimator, SNIPSEstimator
from repro.core.learners.cb import EpsilonGreedyLearner
from repro.machinehealth import (
    build_full_feedback_dataset,
    ground_truth_value,
    simulate_exploration,
)

from benchmarks.conftest import print_table

N_TEST = 1500
N_REPLICATIONS = 60


@pytest.fixture(scope="module")
def study():
    scenario = build_full_feedback_dataset(
        n_events=6000, n_machines=800, seed=21
    )
    train, test = scenario.split(0.5)
    rng = np.random.default_rng(0)
    learner = EpsilonGreedyLearner(10, maximize=False, learning_rate=0.5)
    for _ in range(3):
        learner.observe_all(simulate_exploration(train, rng))
    policy = learner.policy()
    truth = ground_truth_value(policy, test)

    # SWITCH is omitted: the uniform exploration log has a single
    # propensity level (0.1), on which SWITCH degenerates to exactly
    # IPS (see repro.core.estimators.switch) — nothing to compare.
    estimators = {
        "IPS": IPSEstimator(),
        "SNIPS": SNIPSEstimator(),
        "DM": DirectMethodEstimator(),
        "DR": DoublyRobustEstimator(),
    }
    estimates = {name: [] for name in estimators}
    for rep in range(N_REPLICATIONS):
        sample = test.subsample(N_TEST, rng)
        exploration = simulate_exploration(sample, rng)
        for name, estimator in estimators.items():
            estimates[name].append(
                estimator.estimate(policy, exploration).value
            )
    summary = {
        name: (
            float(np.mean(values) - truth),          # bias
            float(np.std(values)),                   # spread
            float(np.sqrt(np.mean((np.array(values) - truth) ** 2))),  # rmse
        )
        for name, values in estimates.items()
    }
    return summary, truth


class TestDoublyRobustAblation:
    def test_dr_lower_variance_than_ips(self, study):
        summary, _ = study
        assert summary["DR"][1] < summary["IPS"][1]

    def test_dr_lower_rmse_than_ips(self, study):
        summary, _ = study
        assert summary["DR"][2] < summary["IPS"][2]

    def test_ips_nearly_unbiased(self, study):
        summary, truth = study
        assert abs(summary["IPS"][0]) < 0.1 * truth

    def test_dr_nearly_unbiased(self, study):
        summary, truth = study
        assert abs(summary["DR"][0]) < 0.1 * truth

    def test_snips_also_helps(self, study):
        summary, _ = study
        assert summary["SNIPS"][1] < summary["IPS"][1]

    def test_print_table(self, study):
        summary, truth = study
        rows = [
            [name, f"{bias:+.2f}", f"{spread:.2f}", f"{rmse:.2f}"]
            for name, (bias, spread, rmse) in summary.items()
        ]
        print_table(
            f"Ablation abl-dr: estimator quality on machine health "
            f"(truth {truth:.1f} VM-min, {N_REPLICATIONS} replications "
            f"of N={N_TEST})",
            ["estimator", "bias", "std", "rmse"],
            rows,
        )

    def test_benchmark_dr_estimate(self, study, benchmark):
        scenario = build_full_feedback_dataset(
            n_events=800, n_machines=200, seed=22
        )
        rng = np.random.default_rng(1)
        exploration = simulate_exploration(scenario.full, rng)
        learner = EpsilonGreedyLearner(10, maximize=False)
        learner.observe_all(exploration)
        policy = learner.policy()
        dr = DoublyRobustEstimator()
        benchmark(dr.estimate, policy, exploration)
