"""Figure 4: convergence of CB training on the machine-health data.

Paper: "Using a CB algorithm for policy optimization, and simulating
10,000 exploration datapoints from the dataset, we learn a policy that
obtains an average reward (on a testing set) within 15% of a policy
trained using supervised learning on the full feedback dataset.  The
CB algorithm converges very quickly, getting within 20% using only
2000 points."

We stream simulated exploration data through the online CB learner and
checkpoint its ground-truth downtime against the supervised ceiling.
"""

import numpy as np
import pytest

from repro.core import SupervisedTrainer
from repro.core.learners.cb import EpsilonGreedyLearner
from repro.machinehealth import (
    build_full_feedback_dataset,
    default_policy_reward,
    ground_truth_value,
    simulate_exploration,
)

from benchmarks.conftest import print_table

CHECKPOINTS = [250, 500, 1000, 2000, 4000, 7000, 10000]
N_ACTIONS = 10


@pytest.fixture(scope="module")
def experiment():
    scenario = build_full_feedback_dataset(
        n_events=20000, n_machines=1000, seed=3
    )
    train, test = scenario.split(0.5)
    rng = np.random.default_rng(0)
    exploration = simulate_exploration(train, rng)

    supervised = SupervisedTrainer(N_ACTIONS, maximize=False).fit(train)
    ceiling = ground_truth_value(supervised.policy(), test)
    default = default_policy_reward(test)

    learner = EpsilonGreedyLearner(
        N_ACTIONS, maximize=False, learning_rate=0.5
    )
    curve = {}
    checkpoint_index = 0
    for count, interaction in enumerate(exploration, start=1):
        learner.observe(interaction)
        if (checkpoint_index < len(CHECKPOINTS)
                and count == CHECKPOINTS[checkpoint_index]):
            curve[count] = ground_truth_value(learner.policy(), test)
            checkpoint_index += 1
    return curve, ceiling, default


class TestFig4:
    def test_within_20_percent_at_2000_points(self, experiment):
        curve, ceiling, _ = experiment
        assert curve[2000] <= 1.20 * ceiling

    def test_within_15_percent_at_10000_points(self, experiment):
        curve, ceiling, _ = experiment
        assert curve[10000] <= 1.15 * ceiling

    def test_converges_toward_ceiling(self, experiment):
        """Late-curve values are closer to the ceiling than early ones."""
        curve, ceiling, _ = experiment
        early = curve[250] / ceiling
        late = curve[10000] / ceiling
        assert late < early

    def test_always_beats_deployed_default_after_warm_start(self, experiment):
        """Even the 250-point policy already beats the wait-10 default —
        the optimization power that convinced the Azure team."""
        curve, _, default = experiment
        assert all(value < default for value in curve.values())

    def test_ceiling_not_reached_exactly(self, experiment):
        """Partial feedback costs something: the CB policy stays above
        the idealized (undeployable) full-feedback model."""
        curve, ceiling, _ = experiment
        assert curve[10000] > ceiling

    def test_print_figure(self, experiment):
        curve, ceiling, default = experiment
        rows = [
            [n, f"{v:.1f}", f"{v / ceiling:.3f}"]
            for n, v in sorted(curve.items())
        ]
        print_table(
            f"Figure 4: CB convergence (supervised ceiling {ceiling:.1f} "
            f"VM-min, deployed default {default:.1f})",
            ["exploration points", "CB downtime", "ratio to ceiling"],
            rows,
        )

    def test_benchmark_online_updates(self, benchmark):
        """Throughput of the online learner (the incremental-learning
        requirement of §5's A2 discussion)."""
        scenario = build_full_feedback_dataset(
            n_events=1000, n_machines=200, seed=9
        )
        rng = np.random.default_rng(1)
        exploration = simulate_exploration(scenario.full, rng)

        def train_once():
            learner = EpsilonGreedyLearner(
                N_ACTIONS, maximize=False, learning_rate=0.5
            )
            learner.observe_all(exploration)

        benchmark(train_once)
