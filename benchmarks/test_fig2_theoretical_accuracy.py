"""Figure 2: theoretical accuracy of evaluating 10^6 policies vs N.

Paper: "Fig. 2 plots the theoretical accuracy of evaluating all
candidates, for different values of ε and representative constants C,
δ = 0.05. ... A minimum N points are required ...  Beyond this point
there are diminishing returns.  For example, increasing N from 1.7 to
3.4 million improves accuracy by less than 0.01.  A higher ε (more
exploration) reduces the data required substantially.  For example,
doubling ε from 0.02 to 0.04 halves the data required in the εN term."
"""

import numpy as np
import pytest

from repro.core.estimators.bounds import (
    diminishing_returns_gain,
    ips_error_bound,
    ips_sample_size,
)

from benchmarks.conftest import print_series

K = 10**6
DELTA = 0.05
EPSILONS = (0.01, 0.02, 0.04, 0.1)
N_GRID = [10**4, 3 * 10**4, 10**5, 3 * 10**5, 10**6, 1.7 * 10**6,
          3.4 * 10**6, 10**7]


def compute_fig2():
    return {
        f"eps={eps}": [ips_error_bound(n, eps, k=K, delta=DELTA)
                       for n in N_GRID]
        for eps in EPSILONS
    }


@pytest.fixture(scope="module")
def fig2():
    return compute_fig2()


class TestFig2:
    def test_error_decreasing_in_n(self, fig2):
        for values in fig2.values():
            assert all(a > b for a, b in zip(values, values[1:]))

    def test_error_decreasing_in_epsilon(self, fig2):
        for i in range(len(N_GRID)):
            column = [fig2[f"eps={eps}"][i] for eps in EPSILONS]
            assert all(a > b for a, b in zip(column, column[1:]))

    def test_inverse_sqrt_shape(self, fig2):
        values = fig2["eps=0.04"]
        assert values[0] / values[4] == pytest.approx(
            np.sqrt(N_GRID[4] / N_GRID[0])
        )

    def test_paper_diminishing_returns_claim(self):
        """1.7M → 3.4M improves accuracy by < 0.01 (ε = 0.04 curve)."""
        gain = diminishing_returns_gain(1.7e6, 3.4e6, 0.04, k=K, delta=DELTA)
        assert 0.0 < gain < 0.01

    def test_paper_doubling_epsilon_claim(self):
        """Doubling ε from 0.02 to 0.04 halves the required N."""
        n_low = ips_sample_size(0.05, 0.02, k=K, delta=DELTA)
        n_high = ips_sample_size(0.05, 0.04, k=K, delta=DELTA)
        assert n_low / n_high == pytest.approx(2.0)

    def test_useful_accuracy_region(self, fig2):
        """The paper wants error < 0.05 ('an error much smaller than 1
        is desired, e.g., < 0.05'); with our C = 2 the ε = 0.04 curve
        reaches that well before the 1.7M-point knee the paper uses to
        illustrate diminishing returns."""
        n_needed = ips_sample_size(0.05, 0.04, k=K, delta=DELTA)
        assert n_needed < 1.7e6
        assert ips_error_bound(1.7e6, 0.04, k=K, delta=DELTA) < 0.05

    def test_print_figure(self, fig2):
        print_series(
            f"Figure 2: theoretical accuracy over {K:.0e} policies "
            f"(delta {DELTA})",
            "N",
            [f"{n:.2g}" for n in N_GRID],
            {name: [f"{v:.4f}" for v in values]
             for name, values in fig2.items()},
        )

    def test_benchmark_bound_computation(self, benchmark):
        benchmark(compute_fig2)
