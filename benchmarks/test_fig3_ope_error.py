"""Figure 3: off-policy evaluation error on the machine-health policy.

Paper: "Fig. 3 shows the error (relative to ground truth) of the ips
estimator on a trained policy's performance, as measured on a testing
dataset of growing size.  The error bars show the 5th and 95th
percentiles of the estimated value, computed from one thousand partial
information simulations ...  With only 3500 points, the error is below
20% with median error at 8%: this is already enough to conclude with
high confidence that the learned policy outperforms the default used
during data collection."

Procedure (identical to the paper's, against our synthetic fleet):

1. train a CB policy on exploration data simulated from the train half;
2. for each test-set size N, run 1000 partial-information simulations —
   reveal a uniformly random action's downtime per incident — and IPS-
   estimate the policy's mean downtime;
3. report the relative-error quantiles against the full-feedback ground
   truth.
"""

import numpy as np
import pytest

from repro.core.learners.cb import EpsilonGreedyLearner
from repro.machinehealth import (
    build_full_feedback_dataset,
    default_policy_reward,
    simulate_exploration,
)

from benchmarks.conftest import print_table

N_GRID = [250, 500, 1000, 2000, 3500]
N_SIMULATIONS = 1000
N_ACTIONS = 10


@pytest.fixture(scope="module")
def experiment():
    """Train the policy once; precompute the vectorized test state."""
    scenario = build_full_feedback_dataset(
        n_events=14000, n_machines=1000, seed=3
    )
    train, test = scenario.split(0.5)
    rng = np.random.default_rng(0)
    exploration = simulate_exploration(train, rng)
    learner = EpsilonGreedyLearner(
        N_ACTIONS, maximize=False, learning_rate=0.5
    )
    for _ in range(3):
        learner.observe_all(exploration)
    policy = learner.policy()

    full_rewards = np.array([i.full_rewards for i in test])
    chosen = np.array(
        [policy.action(i.context, list(range(N_ACTIONS))) for i in test]
    )
    truth = float(full_rewards[np.arange(len(test)), chosen].mean())
    default = default_policy_reward(test)
    return full_rewards, chosen, truth, default


def simulate_errors(full_rewards, chosen, truth, n, rng, reps=N_SIMULATIONS):
    """Relative IPS error over ``reps`` partial-feedback simulations.

    Each simulation draws a test subsample of size ``n``, reveals one
    uniformly random action's reward per incident (propensity 1/10),
    and computes ips = mean(1{a_t = π(x_t)} · r_t · 10).
    """
    n_test = len(chosen)
    errors = np.empty(reps)
    for r in range(reps):
        idx = rng.choice(n_test, size=n, replace=False)
        actions = rng.integers(0, N_ACTIONS, size=n)
        matches = actions == chosen[idx]
        estimate = float(
            np.mean(matches * full_rewards[idx, actions] * N_ACTIONS)
        )
        errors[r] = abs(estimate - truth) / truth
    return errors


@pytest.fixture(scope="module")
def error_quantiles(experiment):
    full_rewards, chosen, truth, _ = experiment
    rng = np.random.default_rng(1)
    out = {}
    for n in N_GRID:
        errors = simulate_errors(full_rewards, chosen, truth, n, rng)
        out[n] = (
            float(np.percentile(errors, 5)),
            float(np.median(errors)),
            float(np.percentile(errors, 95)),
        )
    return out


class TestFig3:
    def test_median_error_decreases_with_n(self, error_quantiles):
        medians = [error_quantiles[n][1] for n in N_GRID]
        assert all(a > b for a, b in zip(medians, medians[1:]))

    def test_error_at_3500_points(self, error_quantiles):
        """Paper: ≤20% with median 8% at N=3500.  Our substrate gives
        the same order: median well under 10%, 95th pct under 20%."""
        _, median, p95 = error_quantiles[3500]
        assert median < 0.10
        assert p95 < 0.20

    def test_error_follows_inverse_sqrt_trend(self, error_quantiles):
        """Fig. 2's theoretical 1/sqrt(N) trend shows in the measured
        medians: quadrupling N roughly halves the error."""
        ratio = error_quantiles[250][1] / error_quantiles[1000][1]
        assert ratio == pytest.approx(2.0, abs=0.7)

    def test_separates_policy_from_default(self, experiment):
        """The punchline: at N=3500 the estimate (even at its 95th
        percentile) confidently beats the wait-10 default."""
        full_rewards, chosen, truth, default = experiment
        rng = np.random.default_rng(2)
        n_test = len(chosen)
        estimates = []
        for _ in range(200):
            idx = rng.choice(n_test, size=3500, replace=False)
            actions = rng.integers(0, N_ACTIONS, size=3500)
            estimates.append(
                float(np.mean(
                    (actions == chosen[idx])
                    * full_rewards[idx, actions] * N_ACTIONS
                ))
            )
        upper = float(np.percentile(estimates, 95))
        assert upper < default  # downtime: smaller is better

    def test_print_figure(self, error_quantiles, experiment):
        _, _, truth, default = experiment
        rows = [
            [n, f"{error_quantiles[n][0]:.3f}", f"{error_quantiles[n][1]:.3f}",
             f"{error_quantiles[n][2]:.3f}"]
            for n in N_GRID
        ]
        print_table(
            f"Figure 3: relative IPS error vs test size "
            f"(truth={truth:.1f} VM-min, default={default:.1f}, "
            f"{N_SIMULATIONS} simulations)",
            ["N", "p5", "median", "p95"],
            rows,
        )

    def test_benchmark_one_evaluation_round(self, experiment, benchmark):
        full_rewards, chosen, truth, _ = experiment
        rng = np.random.default_rng(3)
        benchmark(
            simulate_errors, full_rewards, chosen, truth, 1000, rng, 50
        )
