"""Extension ext-policyclass: offline optimization over a policy class.

§1's promise: "we could for example optimize over a large class of
policies, e.g., billions, to find the one with best performance", with
the Eq. 1 simultaneous guarantee (§4: "the ability to evaluate any
policy allows us to optimize over an entire class of policies Π to
find the best one, with accuracy given by Eq. 1 (set K = |Π|)").

We build a class of 500 random linear wait-time policies (plus the 10
constants) for the machine-health scenario, IPS-score all of them on
one exploration log, pick the offline winner, and check against full-
feedback ground truth that:

- the winner's true value is close to the true best-in-class value
  (the optimization found a near-optimal member);
- the simultaneous evaluation error across the whole class is within
  the Eq. 1 envelope.
"""

import numpy as np
import pytest

from repro.core import PolicyClass, PolicyClassOptimizer, ips_error_bound
from repro.core.estimators.ips import IPSEstimator
from repro.machinehealth import (
    build_full_feedback_dataset,
    default_policy_reward,
    ground_truth_value,
    simulate_exploration,
)

from benchmarks.conftest import print_table

N_ACTIONS = 10
N_LINEAR = 300
#: Context features the linear template reads (encoded names).
FEATURES = ["age_years", "n_vms", "prior_failures", "failure_kind=network",
            "failure_kind=disk", "failure_kind=kernel"]
DOWNTIME_CAP = 600.0


@pytest.fixture(scope="module")
def study():
    scenario = build_full_feedback_dataset(
        n_events=9000, n_machines=1000, seed=17
    )
    train, test = scenario.split(0.5)
    rng = np.random.default_rng(0)
    test = test.subsample(2500, rng)
    exploration = simulate_exploration(train, rng)

    policy_class = PolicyClass(
        list(PolicyClass.all_constant(N_ACTIONS))
        + list(
            PolicyClass.random_linear(
                N_LINEAR, N_ACTIONS, FEATURES, np.random.default_rng(1)
            )
        ),
        name="wait-time-class",
    )
    optimizer = PolicyClassOptimizer(maximize=False)
    scored = optimizer.score_all(policy_class, exploration)

    truths = np.array(
        [ground_truth_value(policy, test) for policy, _ in scored]
    )
    estimates = np.array([value for _, value in scored])
    winner_index = int(np.argmin(estimates))
    return scored, estimates, truths, winner_index, test, exploration


class TestPolicyClassOptimization:
    def test_winner_is_near_optimal(self, study):
        _, _, truths, winner_index, _, _ = study
        best_truth = truths.min()
        winner_truth = truths[winner_index]
        assert winner_truth <= best_truth * 1.10

    def test_winner_beats_deployed_default(self, study):
        _, _, truths, winner_index, test, _ = study
        assert truths[winner_index] < default_policy_reward(test)

    def test_simultaneous_error_within_eq1_envelope(self, study):
        """Normalize downtimes to [0, 1] and compare the worst observed
        evaluation error over all |Π| policies to the Eq. 1 bound."""
        _, estimates, truths, _, _, exploration = study
        observed = np.abs(estimates - truths).max() / DOWNTIME_CAP
        bound = ips_error_bound(
            len(exploration),
            epsilon=1.0 / N_ACTIONS,
            k=len(estimates),
            delta=0.05,
        )
        assert observed < bound

    def test_class_contains_real_spread(self, study):
        """The class isn't degenerate: true values span a wide range,
        so finding the best member is a real search problem."""
        _, _, truths, _, _, _ = study
        assert truths.max() > 1.5 * truths.min()

    def test_ips_ranking_correlates_with_truth(self, study):
        """Estimates track truth across the class.  The correlation is
        not 1: many linear members induce near-identical action maps,
        so within-cluster ordering is noise — but the cross-cluster
        ordering (which is what optimization exploits) is strong."""
        _, estimates, truths, _, _, _ = study
        correlation = float(np.corrcoef(estimates, truths)[0, 1])
        assert correlation > 0.7

    def test_print_summary(self, study):
        scored, estimates, truths, winner_index, test, exploration = study
        default = default_policy_reward(test)
        rows = [
            ["class size", len(scored)],
            ["exploration points", len(exploration)],
            ["winner (offline)", scored[winner_index][0].name],
            ["winner est. downtime", f"{estimates[winner_index]:.1f}"],
            ["winner true downtime", f"{truths[winner_index]:.1f}"],
            ["best-in-class truth", f"{truths.min():.1f}"],
            ["deployed default", f"{default:.1f}"],
            ["rank correlation est/truth",
             f"{np.corrcoef(estimates, truths)[0, 1]:.3f}"],
        ]
        print_table(
            f"Extension ext-policyclass: offline optimization over "
            f"|Pi|={N_LINEAR + N_ACTIONS} wait-time policies",
            ["quantity", "value"],
            rows,
        )

    def test_benchmark_score_class(self, study, benchmark):
        _, _, _, _, _, exploration = study
        small_class = PolicyClass.all_constant(N_ACTIONS)
        optimizer = PolicyClassOptimizer(maximize=False)
        benchmark(optimizer.score_all, small_class, exploration[:1000])
