"""Property-based tests for core data structures and substrates."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.store import KeyValueStore
from repro.core.estimators.bounds import (
    ab_testing_error_bound,
    hoeffding_interval,
    ips_error_bound,
    ips_sample_size,
)
from repro.core.features import Featurizer
from repro.core.policies import EpsilonGreedyPolicy, ConstantPolicy, SoftmaxPolicy
from repro.core.types import RewardRange
from repro.simsys.events import Simulator
from repro.simsys.metrics import PercentileTracker

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e6, max_value=1e6
)


class TestRewardRangeProperties:
    @given(
        st.floats(-100, 100, allow_nan=False),
        st.floats(0.001, 100, allow_nan=False),
        finite_floats,
        st.booleans(),
    )
    def test_normalize_of_clip_always_unit(self, low, width, reward, maximize):
        rr = RewardRange(low, low + width, maximize=maximize)
        unit = rr.normalize(rr.clip(reward))
        assert 0.0 <= unit <= 1.0

    @given(st.floats(-10, 10, allow_nan=False), st.floats(0.01, 10))
    def test_normalize_endpoints(self, low, width):
        rr = RewardRange(low, low + width, maximize=True)
        assert rr.normalize(low) == pytest.approx(0.0)
        assert rr.normalize(low + width) == pytest.approx(1.0)


class TestPolicyDistributionProperties:
    @given(
        st.floats(0.0, 1.0, allow_nan=False),
        st.integers(2, 8),
        st.integers(0, 7),
    )
    def test_epsilon_greedy_sums_to_one(self, epsilon, n_actions, base):
        base_action = base % n_actions
        policy = EpsilonGreedyPolicy(ConstantPolicy(base_action), epsilon)
        probs = policy.distribution({}, list(range(n_actions)))
        assert probs.sum() == pytest.approx(1.0)
        assert (probs >= 0).all()
        assert probs.min() >= epsilon / n_actions - 1e-12

    @given(
        st.lists(st.floats(-50, 50, allow_nan=False), min_size=2, max_size=6),
        st.floats(0.01, 100.0),
    )
    def test_softmax_is_distribution(self, scores, temperature):
        policy = SoftmaxPolicy(
            lambda ctx, a: scores[a], temperature=temperature
        )
        probs = policy.distribution({}, list(range(len(scores))))
        assert probs.sum() == pytest.approx(1.0)
        # Extreme score gaps at low temperature may underflow to 0.
        assert (probs >= 0).all()
        assert probs.max() > 0


class TestFeaturizerProperties:
    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=10),
            st.floats(-100, 100, allow_nan=False),
            max_size=8,
        ),
        st.floats(-5, 5, allow_nan=False),
    )
    def test_linearity_in_values(self, context, scale):
        featurizer = Featurizer(n_dims=32, bias=False)
        base = featurizer.vector(context)
        scaled = featurizer.vector({k: v * scale for k, v in context.items()})
        np.testing.assert_allclose(scaled, scale * base, atol=1e-6)

    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=10),
            st.floats(-100, 100, allow_nan=False),
            max_size=8,
        )
    )
    def test_determinism(self, context):
        featurizer = Featurizer(n_dims=16)
        np.testing.assert_array_equal(
            featurizer.vector(context), featurizer.vector(dict(context))
        )


class TestBoundsProperties:
    @given(
        st.floats(0.001, 0.5),
        st.floats(0.01, 1.0),
        st.floats(1, 1e9),
        st.floats(0.001, 0.5),
    )
    def test_sample_size_round_trips(self, target, epsilon, k, delta):
        n = ips_sample_size(target, epsilon, k=k, delta=delta)
        assert ips_error_bound(n, epsilon, k=k, delta=delta) == pytest.approx(
            target, rel=1e-9
        )

    @given(st.floats(1, 1e7), st.floats(0.01, 1.0), st.floats(1, 1e6))
    def test_more_data_never_hurts(self, n, epsilon, k):
        assert ips_error_bound(2 * n, epsilon, k=k) < ips_error_bound(
            n, epsilon, k=k
        )

    @given(st.floats(10, 1e7), st.floats(1, 1e6))
    def test_ab_bound_monotone_in_k(self, n, k):
        assert ab_testing_error_bound(n, k=2 * k) > ab_testing_error_bound(
            n, k=k
        )

    @given(
        st.lists(st.floats(0.0, 1.0, allow_nan=False), min_size=1, max_size=200)
    )
    def test_hoeffding_contains_sample_mean(self, samples):
        arr = np.asarray(samples)
        ci = hoeffding_interval(arr)
        assert ci.contains(float(arr.mean()))


class TestPercentileTrackerProperties:
    @given(
        st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1,
                 max_size=300)
    )
    def test_matches_numpy(self, values):
        tracker = PercentileTracker("x")
        for v in values:
            tracker.observe(v)
        assert tracker.mean() == pytest.approx(float(np.mean(values)))
        assert tracker.percentile(50) == pytest.approx(
            float(np.percentile(values, 50))
        )
        assert tracker.p99() == pytest.approx(float(np.percentile(values, 99)))


class TestSimulatorProperties:
    @given(st.lists(st.floats(0.0, 100.0, allow_nan=False), max_size=40))
    def test_events_fire_in_sorted_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(d))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)


class TestKeyValueStoreProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(1, 5)),
            min_size=1,
            max_size=100,
        )
    )
    def test_memory_accounting_invariant(self, operations):
        """Under any access/insert sequence with forced eviction,
        used_memory equals the sum of resident sizes and never exceeds
        the budget."""
        from repro.cache.eviction import (
            SampledEvictionEngine,
            random_eviction_policy,
        )
        from repro.simsys.random_source import RandomSource

        store = KeyValueStore(16)
        engine = SampledEvictionEngine(
            random_eviction_policy(), randomness=RandomSource(0)
        )
        for t, (key_id, size) in enumerate(operations):
            key = f"k{key_id}"
            if not store.access(key, float(t)):
                engine.make_room(store, size, float(t))
                store.insert(key, size, float(t))
            resident = sum(store.item(k).size for k in store.keys)
            assert store.used_memory == resident
            assert store.used_memory <= 16
