"""Property-based tests for the off-policy estimators.

These encode the mathematical identities the estimators must satisfy
for *any* exploration data, not just the workloads we happen to
simulate.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimators.direct import DirectMethodEstimator
from repro.core.estimators.doubly_robust import DoublyRobustEstimator
from repro.core.estimators.ips import IPSEstimator, SNIPSEstimator
from repro.core.policies import ConstantPolicy, UniformRandomPolicy
from repro.core.types import ActionSpace, Dataset, Interaction


@st.composite
def exploration_datasets(draw, min_size=5, max_size=60, n_actions=3):
    """Arbitrary valid exploration datasets over ``n_actions`` actions.

    Propensities are drawn from a coarse grid bounded away from zero so
    the IPS weights stay finite and the data remains consistent with
    *some* logging distribution.
    """
    n = draw(st.integers(min_size, max_size))
    interactions = []
    for t in range(n):
        action = draw(st.integers(0, n_actions - 1))
        reward = draw(
            st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False)
        )
        propensity = draw(st.sampled_from([0.1, 0.2, 1 / 3, 0.5, 0.9, 1.0]))
        context = {"x": draw(st.floats(-1.0, 1.0, allow_nan=False))}
        interactions.append(
            Interaction(context, action, reward, propensity, float(t))
        )
    return Dataset(interactions, action_space=ActionSpace(n_actions))


class TestIPSIdentities:
    @given(exploration_datasets())
    @settings(max_examples=60, deadline=None)
    def test_uniform_logging_identity(self, dataset):
        """Evaluating the logging policy on its own uniform data gives
        the sample mean exactly, when propensities are all 1/n."""
        uniform = Dataset(
            [
                Interaction(i.context, i.action, i.reward, 1 / 3, i.timestamp)
                for i in dataset
            ],
            action_space=dataset.action_space,
        )
        value = IPSEstimator().estimate(UniformRandomPolicy(), uniform).value
        assert value == pytest.approx(float(uniform.rewards().mean()))

    @given(exploration_datasets())
    @settings(max_examples=60, deadline=None)
    def test_constant_policies_partition_the_data(self, dataset):
        """Σ_a ips(constant_a) weighted by 1 == ips of 'any action'
        since each datapoint matches exactly one constant policy."""
        ips = IPSEstimator()
        total = sum(
            ips.weighted_rewards(ConstantPolicy(a), dataset)
            for a in range(3)
        )
        expected = dataset.rewards() / dataset.propensities()
        np.testing.assert_allclose(total, expected)

    @given(exploration_datasets())
    @settings(max_examples=60, deadline=None)
    def test_ips_terms_nonnegative_for_nonnegative_rewards(self, dataset):
        terms = IPSEstimator().weighted_rewards(ConstantPolicy(0), dataset)
        assert (terms >= 0).all()

    @given(exploration_datasets())
    @settings(max_examples=60, deadline=None)
    def test_match_weights_bounded_by_inverse_propensity(self, dataset):
        weights = IPSEstimator().match_weights(ConstantPolicy(1), dataset)
        bound = 1.0 / dataset.propensities()
        assert (weights <= bound + 1e-12).all()


class TestSNIPSIdentities:
    @given(exploration_datasets())
    @settings(max_examples=60, deadline=None)
    def test_snips_within_reward_hull(self, dataset):
        """Self-normalization keeps the estimate inside the convex hull
        of observed rewards (when any data matches)."""
        result = SNIPSEstimator().estimate(ConstantPolicy(0), dataset)
        if result.effective_n > 0:
            rewards = dataset.rewards()
            assert rewards.min() - 1e-12 <= result.value <= rewards.max() + 1e-12

    @given(exploration_datasets(), st.floats(-2.0, 2.0, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_snips_shift_equivariance(self, dataset, shift):
        shifted = Dataset(
            [
                Interaction(
                    i.context, i.action, i.reward + shift, i.propensity
                )
                for i in dataset
            ],
            action_space=dataset.action_space,
        )
        base = SNIPSEstimator().estimate(ConstantPolicy(1), dataset)
        moved = SNIPSEstimator().estimate(ConstantPolicy(1), shifted)
        if base.effective_n > 0:
            assert moved.value == pytest.approx(base.value + shift, abs=1e-9)


class TestCrossEstimatorProperties:
    @given(exploration_datasets(min_size=10))
    @settings(max_examples=30, deadline=None)
    def test_all_estimators_finite_on_valid_data(self, dataset):
        policy = ConstantPolicy(0)
        for estimator in (
            IPSEstimator(),
            DirectMethodEstimator(),
            DoublyRobustEstimator(),
        ):
            value = estimator.estimate(policy, dataset).value
            assert np.isfinite(value)

    @given(exploration_datasets(min_size=10))
    @settings(max_examples=30, deadline=None)
    def test_dr_equals_dm_plus_correction(self, dataset):
        """DR with a given model == DM + IPS-weighted residual term,
        by construction; check the decomposition holds numerically."""
        from repro.core.estimators.direct import RewardModel

        model = RewardModel(3).fit(dataset)
        dm = DirectMethodEstimator(model).estimate(ConstantPolicy(0), dataset)
        dr = DoublyRobustEstimator(model).estimate(ConstantPolicy(0), dataset)
        ips = IPSEstimator()
        weights = ips.match_weights(ConstantPolicy(0), dataset)
        residuals = np.array(
            [
                i.reward - model.predict(i.context, i.action)
                for i in dataset
            ]
        )
        correction = float(np.mean(weights * residuals))
        assert dr.value == pytest.approx(dm.value + correction, abs=1e-9)
