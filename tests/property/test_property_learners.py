"""Property-based tests for the CB learners."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.eviction import candidate_features
from repro.core.features import Featurizer
from repro.core.learners.cb import EpsilonGreedyLearner, PerActionFeaturesLearner
from repro.core.learners.regression import SGDRegressor
from repro.core.types import Interaction


@st.composite
def candidate_blocks(draw, n_candidates=3):
    """A slot context for n candidates with random feature blocks."""
    context = {}
    for slot in range(n_candidates):
        context[f"cand{slot}_idle"] = draw(st.floats(0, 100, allow_nan=False))
        context[f"cand{slot}_freq"] = draw(st.floats(0, 1, allow_nan=False))
        context[f"cand{slot}_size"] = draw(
            st.sampled_from([1.0, 2.0, 4.0, 8.0])
        )
        context[f"cand{slot}_age"] = draw(st.floats(0, 500, allow_nan=False))
        context[f"cand{slot}_ttl"] = draw(st.floats(0, 1e5, allow_nan=False))
    return context


def permute_slots(context, permutation):
    """Relabel candidate slots according to ``permutation``."""
    out = {}
    for name, value in context.items():
        slot = int(name[4])  # "cand{i}_..."
        rest = name.split("_", 1)[1]
        out[f"cand{permutation[slot]}_{rest}"] = value
    return out


def trained_adf_learner(seed=0, n=400):
    """An ADF learner trained on random eviction data."""
    rng = np.random.default_rng(seed)
    learner = PerActionFeaturesLearner(
        candidate_features, featurizer=Featurizer(16), learning_rate=0.3
    )
    for t in range(n):
        context = {}
        for slot in range(3):
            context[f"cand{slot}_idle"] = float(rng.uniform(0, 100))
            context[f"cand{slot}_freq"] = float(rng.uniform(0, 1))
            context[f"cand{slot}_size"] = float(rng.choice([1, 4]))
            context[f"cand{slot}_age"] = float(rng.uniform(0, 500))
            context[f"cand{slot}_ttl"] = 1e5
        action = int(rng.integers(3))
        reward = context[f"cand{action}_idle"]  # idle predicts reward
        learner.observe(Interaction(context, action, reward, 1 / 3, float(t)))
    return learner


class TestADFSlotEquivariance:
    @given(candidate_blocks(), st.permutations([0, 1, 2]))
    @settings(max_examples=60, deadline=None)
    def test_chosen_candidate_invariant_under_slot_relabeling(
        self, context, permutation
    ):
        """The ADF policy must pick the same *candidate* no matter
        which slot it sits in — the model scores feature blocks, not
        slot positions."""
        learner = trained_adf_learner()
        policy = learner.policy()
        original_slot = policy.action(context, [0, 1, 2])
        permuted = permute_slots(context, list(permutation))
        permuted_slot = policy.action(permuted, [0, 1, 2])
        assert permuted_slot == permutation[original_slot]

    @given(candidate_blocks())
    @settings(max_examples=60, deadline=None)
    def test_predictions_finite(self, context):
        learner = trained_adf_learner()
        for action in range(3):
            assert np.isfinite(learner.predict(context, action))


class TestLearnerRobustness:
    @given(
        st.lists(
            st.tuples(
                st.floats(-10, 10, allow_nan=False),   # context feature
                st.integers(0, 2),                      # action
                st.floats(-100, 100, allow_nan=False),  # reward
                st.sampled_from([0.1, 1 / 3, 0.5, 1.0]),
            ),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_epsilon_greedy_never_produces_nonfinite_state(self, rows):
        learner = EpsilonGreedyLearner(3, learning_rate=0.5)
        for x, action, reward, propensity in rows:
            learner.observe(
                Interaction({"x": x, "bias": 1.0}, action, reward, propensity)
            )
        for action in range(3):
            value = learner.predict({"x": 1.0, "bias": 1.0}, action)
            assert np.isfinite(value)

    @given(
        st.lists(
            st.tuples(
                st.floats(-100, 100, allow_nan=False),
                st.floats(-1e4, 1e4, allow_nan=False),
                st.floats(0, 1000, allow_nan=False),
            ),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_implicit_sgd_weights_always_finite(self, rows):
        model = SGDRegressor(2, learning_rate=10.0, decay=False)
        for x, y, importance in rows:
            model.update(np.array([x, 1.0]), y, importance)
            assert np.isfinite(model.weights).all()
