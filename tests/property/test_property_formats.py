"""Property-based tests for serialization formats.

Round-trip identities must hold for arbitrary valid data, not just the
handful of examples in the unit tests.
"""

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.keyspace_log import (
    format_get_line,
    format_keyspace_line,
    parse_keyspace_line,
)
from repro.core.types import Dataset, Interaction
from repro.core.vw_format import (
    interaction_to_vw,
    load_vw,
    save_vw,
    vw_to_interaction,
)
from repro.loadbalance.access_log import (
    AccessLogEntry,
    format_access_log_line,
    parse_access_log_line,
)

feature_names = st.text(
    alphabet=st.characters(
        whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters="_-."
    ),
    min_size=1,
    max_size=12,
)

finite_rewards = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def vw_interactions(draw):
    context = draw(
        st.dictionaries(
            feature_names,
            st.floats(-1e3, 1e3, allow_nan=False),
            min_size=0,
            max_size=6,
        )
    )
    return Interaction(
        context=context,
        action=draw(st.integers(0, 20)),
        reward=draw(finite_rewards),
        propensity=draw(st.sampled_from([0.05, 0.1, 0.25, 0.5, 1.0])),
        timestamp=0.0,
    )


class TestVWRoundtrip:
    @given(vw_interactions())
    @settings(max_examples=100, deadline=None)
    def test_single_line_roundtrip(self, interaction):
        restored = vw_to_interaction(interaction_to_vw(interaction))
        assert restored is not None
        assert restored.action == interaction.action
        assert restored.propensity == pytest.approx(interaction.propensity)
        assert restored.reward == pytest.approx(
            interaction.reward, rel=1e-4, abs=1e-4
        )
        for name, value in interaction.context.items():
            assert restored.context[name] == pytest.approx(
                value, rel=1e-4, abs=1e-4
            )

    @given(st.lists(vw_interactions(), min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_stream_roundtrip_preserves_count_and_order(self, interactions):
        dataset = Dataset(interactions)
        buffer = io.StringIO()
        save_vw(dataset, buffer)
        buffer.seek(0)
        restored = load_vw(buffer)
        assert len(restored) == len(dataset)
        for a, b in zip(dataset, restored):
            assert a.action == b.action


class TestAccessLogRoundtrip:
    @given(
        st.floats(0, 1e6, allow_nan=False),
        st.integers(0, 9999),
        st.sampled_from(["static", "dynamic", "api"]),
        st.integers(0, 63),
        st.floats(0.001, 100.0, allow_nan=False),
        st.lists(st.integers(0, 10**6), min_size=1, max_size=8),
        st.sampled_from([0.6, 1.0, 1.8]),
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip(self, time, client, kind, upstream_mod, latency,
                       connections, weight):
        entry = AccessLogEntry(
            time=time,
            client_key=f"client-{client}",
            kind=kind,
            status=200,
            upstream=upstream_mod % len(connections),
            upstream_response_time=latency,
            connections=tuple(connections),
            request_weight=weight,
        )
        restored = parse_access_log_line(format_access_log_line(entry))
        assert restored is not None
        assert restored.upstream == entry.upstream
        assert restored.connections == entry.connections
        assert restored.kind == entry.kind
        assert restored.upstream_response_time == pytest.approx(
            latency, rel=1e-4, abs=1e-5
        )


class TestKeyspaceLogRoundtrip:
    @given(
        st.floats(0, 1e6, allow_nan=False),
        st.sampled_from(["big", "small", "item"]),
        st.integers(0, 10**6),
        st.booleans(),
        st.integers(1, 10**6),
    )
    @settings(max_examples=100, deadline=None)
    def test_get_roundtrip(self, time, prefix, index, hit, size):
        key = f"{prefix}-{index}"
        event = parse_keyspace_line(format_get_line(time, key, hit, size))
        assert event is not None
        assert event.key == key
        assert event.hit == hit
        assert event.size == size
        # Re-serialization is stable.
        assert parse_keyspace_line(format_keyspace_line(event)) == event
