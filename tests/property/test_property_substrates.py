"""Property-based conservation laws for the substrates.

Simulators earn trust through invariants that hold for *any*
parameters: requests are conserved, accounting balances, and the
physics (downtime law, latency law) matches its definition pointwise.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.loadbalance.policies import random_policy
from repro.loadbalance.proxy import LoadBalancerSim
from repro.loadbalance.server import ServerConfig
from repro.loadbalance.workload import Workload
from repro.machinehealth.failures import NEVER, WAIT_TIMES, FailureEvent
from repro.machinehealth.fleet import Machine
from repro.simsys.random_source import RandomSource


def make_machine(vms):
    return Machine(0, "gen5-compute", "os-2016", 2.0, vms, 1)


class TestDowntimeLawProperties:
    @given(
        st.floats(0.1, 60.0),            # recovery time (or NEVER below)
        st.floats(2.0, 15.0),            # reboot minutes
        st.integers(1, 20),              # vms
        st.booleans(),                   # never recovers?
    )
    @settings(max_examples=100, deadline=None)
    def test_profile_matches_definition_pointwise(
        self, recovery, reboot, vms, never
    ):
        event = FailureEvent(
            make_machine(vms), "disk",
            recovery_minutes=NEVER if never else recovery,
            reboot_minutes=reboot,
        )
        profile = event.downtime_profile()
        for wait, downtime in zip(WAIT_TIMES, profile):
            if not never and recovery <= wait:
                assert downtime == pytest.approx(recovery * vms)
            else:
                assert downtime == pytest.approx((wait + reboot) * vms)

    @given(st.floats(2.0, 15.0), st.integers(1, 20))
    @settings(max_examples=50, deadline=None)
    def test_never_recovering_machine_prefers_shortest_wait(
        self, reboot, vms
    ):
        event = FailureEvent(make_machine(vms), "kernel", NEVER, reboot)
        profile = event.downtime_profile()
        assert all(a < b for a, b in zip(profile, profile[1:]))
        assert int(np.argmin(profile)) == 0

    @given(st.floats(0.1, 0.9), st.floats(2.0, 15.0), st.integers(1, 20))
    @settings(max_examples=50, deadline=None)
    def test_fast_recovery_makes_waiting_optimal(
        self, recovery, reboot, vms
    ):
        """If the machine recovers within the first minute, every wait
        is equally good — the profile is flat at recovery × vms."""
        event = FailureEvent(make_machine(vms), "network", recovery, reboot)
        profile = event.downtime_profile()
        assert all(v == pytest.approx(recovery * vms) for v in profile)

    @given(
        st.floats(0.1, 60.0),
        st.floats(2.0, 15.0),
        st.integers(1, 20),
    )
    @settings(max_examples=50, deadline=None)
    def test_downtime_bounded(self, recovery, reboot, vms):
        event = FailureEvent(make_machine(vms), "disk", recovery, reboot)
        for wait in WAIT_TIMES:
            downtime = event.downtime(wait)
            assert 0 < downtime <= (wait + reboot) * vms + 1e-9


class TestProxyConservation:
    @given(
        st.integers(2, 5),                 # servers
        st.floats(2.0, 15.0),              # arrival rate
        st.integers(50, 300),              # requests
        st.integers(0, 10**6),             # seed
    )
    @settings(max_examples=20, deadline=None)
    def test_requests_conserved_and_drained(self, n_servers, rate, n, seed):
        configs = [
            ServerConfig(i, 0.1 + 0.05 * i, 0.03) for i in range(n_servers)
        ]
        workload = Workload(rate, randomness=RandomSource(seed, _name="wl"))
        sim = LoadBalancerSim(configs, random_policy(), workload, seed=seed)
        result = sim.run(n)
        # Every request was routed somewhere, completed, and logged.
        assert sum(result.per_server_requests.values()) == n
        assert sum(s.completed_requests for s in sim.servers) == n
        assert all(s.open_connections == 0 for s in sim.servers)
        assert len(result.access_log) == n
        # Latencies positive and capped by the timeout.
        assert all(
            0 < e.upstream_response_time <= sim.timeout
            for e in result.access_log
        )
        # Log timestamps are non-decreasing (arrival order).
        times = [e.time for e in result.access_log]
        assert times == sorted(times)

    @given(st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_same_seed_same_everything(self, seed):
        def run():
            workload = Workload(
                8.0, randomness=RandomSource(seed, _name="wl")
            )
            sim = LoadBalancerSim(
                [ServerConfig(0, 0.2, 0.05), ServerConfig(1, 0.3, 0.05)],
                random_policy(), workload, seed=seed,
            )
            return sim.run(150)

        a, b = run(), run()
        assert a.mean_latency == b.mean_latency
        assert a.per_server_requests == b.per_server_requests
        assert [e.upstream for e in a.access_log] == [
            e.upstream for e in b.access_log
        ]
