"""Property-based tests for audit stream derivation.

The property the HKDF scheme buys over the legacy CRC32 mix: derived
keys are collision-free in practice for *any* pair of distinct stream
identities, not just the ones we happen to use.  The CRC32 mix fails
this concretely — ``crc32(b"plumless") == crc32(b"buckeroo")`` — so
two siblings with those names share one RNG stream.
"""

import zlib

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audit.ledger import context_digest, entry_hash
from repro.audit.streams import (
    StreamKey,
    derive_child_seed,
    derive_key_bytes,
    encode_segments,
)
from repro.simsys.random_source import RandomSource

segment = st.from_regex(r"[A-Za-z0-9._-]{1,12}", fullmatch=True)
ordinal = st.integers(min_value=0, max_value=2**40)
key = st.builds(StreamKey, segment, segment, segment, ordinal)


class TestDerivationInjectivity:
    @given(key, key)
    @settings(max_examples=200, deadline=None)
    def test_distinct_keys_distinct_bytes(self, a, b):
        if a == b:
            assert derive_key_bytes(7, a) == derive_key_bytes(7, b)
        else:
            assert derive_key_bytes(7, a) != derive_key_bytes(7, b)

    @given(st.lists(segment, min_size=1, max_size=4),
           st.lists(segment, min_size=1, max_size=4))
    @settings(max_examples=200, deadline=None)
    def test_encode_segments_injective(self, a, b):
        if tuple(a) != tuple(b):
            assert encode_segments(tuple(a)) != encode_segments(tuple(b))

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1),
           segment, segment)
    @settings(max_examples=200, deadline=None)
    def test_sibling_children_never_collide(self, seed, name_a, name_b):
        if name_a != name_b:
            assert derive_child_seed(seed, name_a) != derive_child_seed(
                seed, name_b
            )

    @given(st.integers(min_value=0, max_value=2**63 - 1), segment, segment)
    @settings(max_examples=100, deadline=None)
    def test_nested_paths_never_collide(self, seed, a, b):
        # Two-step derivation child(child(root, a), b) and one-step
        # child(root, "a.b") are distinct paths — the dotted name is a
        # single segment, not a traversal — so their seeds must differ.
        root = RandomSource(seed)
        nested = root.child(a).child(b)
        flat = root.child(f"{a}.{b}")
        assert nested.seed != flat.seed


class TestLegacyCollisionWitness:
    def test_crc32_collides_on_known_pair(self):
        assert zlib.crc32(b"plumless") == zlib.crc32(b"buckeroo")

    def test_legacy_derivation_aliases_streams(self):
        root = RandomSource(42, derivation="legacy")
        assert root.child("plumless").seed == root.child("buckeroo").seed

    def test_hkdf_derivation_separates_them(self):
        root = RandomSource(42)
        assert root.child("plumless").seed != root.child("buckeroo").seed

    @given(st.integers(min_value=0, max_value=2**62))
    @settings(max_examples=50, deadline=None)
    def test_hkdf_separates_for_every_parent_seed(self, seed):
        root = RandomSource(seed)
        assert root.child("plumless").seed != root.child("buckeroo").seed


class TestLedgerCanonicality:
    @given(st.dictionaries(
        st.from_regex(r"[a-z_]{1,8}", fullmatch=True),
        st.floats(allow_nan=False, allow_infinity=False),
        max_size=6,
    ))
    @settings(max_examples=200, deadline=None)
    def test_context_digest_order_invariant(self, context):
        shuffled = dict(reversed(list(context.items())))
        assert context_digest(context) == context_digest(shuffled)

    @given(
        st.floats(min_value=1e-6, max_value=1.0),
        st.floats(min_value=1e-6, max_value=1.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_entry_hash_separates_propensities(self, p, q):
        a = entry_hash("0" * 64, "s", 0, "c" * 32, 0, p)
        b = entry_hash("0" * 64, "s", 0, "c" * 32, 0, q)
        assert (a == b) == (p == q)
