"""Unit tests for seeded randomness streams."""

import numpy as np
import pytest

from repro.simsys.random_source import RandomSource


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = RandomSource(42)
        b = RandomSource(42)
        assert [a.uniform() for _ in range(5)] == [b.uniform() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = RandomSource(1)
        b = RandomSource(2)
        assert [a.uniform() for _ in range(5)] != [b.uniform() for _ in range(5)]

    def test_child_streams_are_deterministic(self):
        a = RandomSource(7).child("workload")
        b = RandomSource(7).child("workload")
        assert a.uniform() == b.uniform()

    def test_sibling_children_are_independent(self):
        root = RandomSource(7)
        wl = root.child("workload")
        policy = root.child("policy")
        assert wl.seed != policy.seed
        assert [wl.uniform() for _ in range(5)] != [
            policy.uniform() for _ in range(5)
        ]

    def test_child_name_path(self):
        grandchild = RandomSource(0).child("a").child("b")
        assert grandchild.name == "root.a.b"

    def test_drawing_from_one_child_does_not_shift_another(self):
        root = RandomSource(3)
        first = root.child("x")
        _ = [first.uniform() for _ in range(100)]
        # A freshly derived sibling is unaffected by prior draws.
        assert root.child("y").uniform() == RandomSource(3).child("y").uniform()


class TestDraws:
    def test_uniform_range(self):
        src = RandomSource(0)
        draws = [src.uniform(2.0, 3.0) for _ in range(100)]
        assert all(2.0 <= d < 3.0 for d in draws)

    def test_exponential_mean(self):
        src = RandomSource(0)
        draws = [src.exponential(2.0) for _ in range(20000)]
        assert np.mean(draws) == pytest.approx(2.0, rel=0.05)

    def test_randint_bounds(self):
        src = RandomSource(0)
        draws = [src.randint(3, 7) for _ in range(200)]
        assert set(draws) <= {3, 4, 5, 6}
        assert len(set(draws)) == 4  # all values reached

    def test_choice_with_probabilities(self):
        src = RandomSource(0)
        draws = [src.choice(["x", "y"], p=[0.9, 0.1]) for _ in range(2000)]
        assert draws.count("x") > draws.count("y") * 4

    def test_sample_without_replacement(self):
        src = RandomSource(0)
        out = src.sample(list(range(10)), 5)
        assert len(out) == 5
        assert len(set(out)) == 5

    def test_sample_too_many_raises(self):
        with pytest.raises(ValueError):
            RandomSource(0).sample([1, 2], 3)

    def test_shuffle_is_permutation(self):
        src = RandomSource(0)
        items = list(range(20))
        shuffled = src.shuffle(items)
        assert sorted(shuffled) == items
        assert items == list(range(20))  # original untouched

    def test_bernoulli_rate(self):
        src = RandomSource(0)
        draws = [src.bernoulli(0.3) for _ in range(5000)]
        assert np.mean(draws) == pytest.approx(0.3, abs=0.03)

    def test_zipf_skew(self):
        src = RandomSource(0)
        draws = [src.zipf_index(100, 1.2) for _ in range(3000)]
        counts = np.bincount(draws, minlength=100)
        assert counts[0] > counts[50]
        assert counts[0] > counts[10]

    def test_zipf_invalid_n(self):
        with pytest.raises(ValueError):
            RandomSource(0).zipf_index(0, 1.0)


class TestPoissonProcess:
    def test_arrivals_within_horizon_and_sorted(self):
        src = RandomSource(0)
        times = list(src.poisson_process(5.0, 100.0))
        assert all(0 < t < 100.0 for t in times)
        assert times == sorted(times)

    def test_rate_matches(self):
        src = RandomSource(0)
        times = list(src.poisson_process(5.0, 2000.0))
        assert len(times) / 2000.0 == pytest.approx(5.0, rel=0.05)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            list(RandomSource(0).poisson_process(0.0, 10.0))
