"""Unit tests for the discrete-event kernel."""

import pytest

from repro.simsys.events import Event, EventQueue, Simulator


class TestEventQueue:
    def test_pop_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.push(3.0, lambda: fired.append("c"))
        queue.push(1.0, lambda: fired.append("a"))
        queue.push(2.0, lambda: fired.append("b"))
        while (event := queue.pop()) is not None:
            event.action()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_insertion_order(self):
        queue = EventQueue()
        fired = []
        for name in "abc":
            queue.push(1.0, lambda n=name: fired.append(n))
        while (event := queue.pop()) is not None:
            event.action()
        assert fired == ["a", "b", "c"]

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        keep = queue.push(1.0, lambda: None, name="keep")
        drop = queue.push(0.5, lambda: None, name="drop")
        drop.cancel()
        assert queue.pop() is keep

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        first = queue.push(0.5, lambda: None)
        queue.push(2.0, lambda: None)
        first.cancel()
        assert queue.peek_time() == 2.0

    def test_peek_time_empty(self):
        assert EventQueue().peek_time() is None

    def test_pop_empty(self):
        assert EventQueue().pop() is None

    def test_len_counts_pending(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2


class TestEvent:
    def test_events_compare_by_time_then_seq(self):
        early = Event(time=1.0, seq=5, action=lambda: None)
        late = Event(time=2.0, seq=1, action=lambda: None)
        assert early < late
        tie_a = Event(time=1.0, seq=1, action=lambda: None)
        tie_b = Event(time=1.0, seq=2, action=lambda: None)
        assert tie_a < tie_b


class TestSimulator:
    def test_clock_advances_to_event_times(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.schedule(1.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.0, 2.5]
        assert sim.now == 2.5

    def test_run_until_horizon_stops_clock_at_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        processed = sim.run(until=3.0)
        assert processed == 1
        assert fired == [1]
        assert sim.now == 3.0
        # The later event still fires when the horizon extends.
        sim.run(until=10.0)
        assert fired == [1, 5]

    def test_handlers_can_schedule_more_events(self):
        sim = Simulator()
        fired = []

        def recur(n):
            fired.append(sim.now)
            if n > 0:
                sim.schedule(1.0, lambda: recur(n - 1))

        sim.schedule(1.0, lambda: recur(3))
        sim.run()
        assert fired == [1.0, 2.0, 3.0, 4.0]

    def test_max_events_budget(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(float(i + 1), lambda: None)
        assert sim.run(max_events=4) == 4
        assert sim.pending == 6

    def test_step_runs_exactly_one_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        assert sim.step() is True
        assert fired == [1]
        assert sim.step() is True
        assert sim.step() is False

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 5

    def test_start_time(self):
        sim = Simulator(start_time=100.0)
        seen = []
        sim.schedule(1.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [101.0]

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("x"))
        event.cancel()
        sim.run()
        assert fired == []
