"""Unit tests for metric recorders."""

import numpy as np
import pytest

from repro.simsys.metrics import (
    Counter,
    MetricRegistry,
    PercentileTracker,
    TimeSeries,
    WindowedRate,
)


class TestCounter:
    def test_increments(self):
        counter = Counter("requests")
        counter.increment()
        counter.increment(5)
        assert counter.value == 6

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").increment(-1)


class TestPercentileTracker:
    def test_mean_and_std(self):
        tracker = PercentileTracker("latency")
        for v in [1.0, 2.0, 3.0, 4.0]:
            tracker.observe(v)
        assert tracker.mean() == pytest.approx(2.5)
        assert tracker.std() == pytest.approx(np.std([1, 2, 3, 4]))

    def test_percentiles_match_numpy(self):
        tracker = PercentileTracker("x")
        values = list(np.random.default_rng(0).uniform(0, 10, 500))
        for v in values:
            tracker.observe(v)
        for q in (1, 50, 95, 99):
            assert tracker.percentile(q) == pytest.approx(np.percentile(values, q))

    def test_p99_alias(self):
        tracker = PercentileTracker("x")
        for v in range(101):
            tracker.observe(float(v))
        assert tracker.p99() == tracker.percentile(99)

    def test_empty_tracker_is_zero(self):
        tracker = PercentileTracker("x")
        assert tracker.mean() == 0.0
        assert tracker.p99() == 0.0
        assert tracker.count == 0

    def test_invalid_percentile(self):
        tracker = PercentileTracker("x")
        tracker.observe(1.0)
        with pytest.raises(ValueError):
            tracker.percentile(101)

    def test_summary_keys(self):
        tracker = PercentileTracker("x")
        tracker.observe(1.0)
        summary = tracker.summary()
        assert set(summary) == {"count", "mean", "std", "p50", "p95", "p99"}

    def test_values_returns_copy(self):
        tracker = PercentileTracker("x")
        tracker.observe(1.0)
        tracker.values.append(99.0)
        assert tracker.count == 1


class TestTimeSeries:
    def test_records_and_length(self):
        series = TimeSeries("load")
        series.record(0.0, 1.0)
        series.record(1.0, 2.0)
        assert len(series) == 2

    def test_out_of_order_rejected(self):
        series = TimeSeries("load")
        series.record(5.0, 1.0)
        with pytest.raises(ValueError):
            series.record(4.0, 2.0)

    def test_value_at_step_interpolation(self):
        series = TimeSeries("load")
        series.record(0.0, 10.0)
        series.record(2.0, 20.0)
        assert series.value_at(1.5) == 10.0
        assert series.value_at(2.0) == 20.0
        assert series.value_at(-1.0) is None

    def test_time_average(self):
        series = TimeSeries("load")
        series.record(0.0, 10.0)
        series.record(1.0, 20.0)
        series.record(3.0, 0.0)
        # 10 for one unit, 20 for two units => (10 + 40) / 3
        assert series.time_average() == pytest.approx(50.0 / 3.0)

    def test_time_average_single_sample(self):
        series = TimeSeries("load")
        series.record(0.0, 7.0)
        assert series.time_average() == 7.0


class TestWindowedRate:
    def test_rate_within_window(self):
        rate = WindowedRate("hits", window=10.0)
        for t in range(10):
            rate.record(float(t))
        assert rate.rate(now=9.0) == pytest.approx(1.0)

    def test_old_events_fall_out(self):
        rate = WindowedRate("hits", window=5.0)
        rate.record(0.0)
        rate.record(10.0)
        assert rate.rate(now=10.0) == pytest.approx(1.0 / 5.0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            WindowedRate("x", window=0.0)


class TestMetricRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.tracker("b") is registry.tracker("b")
        assert registry.series("c") is registry.series("c")

    def test_snapshot_flattens(self):
        registry = MetricRegistry()
        registry.counter("hits").increment(3)
        registry.tracker("latency").observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["hits"] == 3.0
        assert snapshot["latency.mean"] == pytest.approx(0.5)
