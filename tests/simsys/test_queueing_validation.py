"""Validate the event kernel against closed-form queueing theory.

The load-balancer results all flow through this kernel, so we check it
against the one thing queueing gives us exactly: the M/M/1 queue.  We
build one from raw Simulator primitives — Poisson arrivals, a single
exponential server, FIFO queue — and compare the simulated mean number
in system and mean sojourn time to the analytic values

    E[N] = ρ / (1 − ρ)        E[T] = 1 / (μ − λ)

If these come out right, the clock, the event ordering, and the
Poisson source are all doing their jobs.
"""

import numpy as np
import pytest

from repro.simsys.events import Simulator
from repro.simsys.metrics import PercentileTracker, TimeSeries
from repro.simsys.random_source import RandomSource


def simulate_mm1(lam: float, mu: float, horizon: float, seed: int = 0):
    """An M/M/1 queue on the raw kernel; returns (E[N] est, E[T] est)."""
    randomness = RandomSource(seed, _name="mm1")
    service_rng = randomness.child("service")
    sim = Simulator()
    queue: list[float] = []  # arrival times of waiting customers
    state = {"busy": False, "in_system": 0}
    occupancy = TimeSeries("N")
    sojourn = PercentileTracker("T")

    def record():
        occupancy.record(sim.now, float(state["in_system"]))

    def finish_service(arrival_time: float) -> None:
        state["in_system"] -= 1
        sojourn.observe(sim.now - arrival_time)
        record()
        if queue:
            start_service(queue.pop(0))
        else:
            state["busy"] = False

    def start_service(arrival_time: float) -> None:
        state["busy"] = True
        service_time = service_rng.exponential(1.0 / mu)
        sim.schedule(service_time, lambda: finish_service(arrival_time))

    def arrive() -> None:
        state["in_system"] += 1
        record()
        if state["busy"]:
            queue.append(sim.now)
        else:
            start_service(sim.now)

    for t in randomness.child("arrivals").poisson_process(lam, horizon):
        sim.schedule_at(t, arrive)
    sim.run()
    return occupancy.time_average(), sojourn.mean()


class TestMM1Validation:
    @pytest.mark.parametrize("lam,mu", [(5.0, 10.0), (8.0, 10.0)])
    def test_mean_number_in_system(self, lam, mu):
        rho = lam / mu
        expected = rho / (1.0 - rho)
        estimates = [
            simulate_mm1(lam, mu, horizon=3000.0, seed=s)[0]
            for s in range(3)
        ]
        assert float(np.mean(estimates)) == pytest.approx(expected, rel=0.1)

    @pytest.mark.parametrize("lam,mu", [(5.0, 10.0), (8.0, 10.0)])
    def test_mean_sojourn_time(self, lam, mu):
        expected = 1.0 / (mu - lam)
        estimates = [
            simulate_mm1(lam, mu, horizon=3000.0, seed=10 + s)[1]
            for s in range(3)
        ]
        assert float(np.mean(estimates)) == pytest.approx(expected, rel=0.1)

    def test_littles_law(self):
        """L = λW must hold for the *same* run, by construction of a
        correct simulation — a strong internal-consistency check."""
        lam, mu = 6.0, 10.0
        n_in_system, sojourn = simulate_mm1(lam, mu, horizon=5000.0, seed=21)
        assert n_in_system == pytest.approx(lam * sojourn, rel=0.05)

    def test_heavier_load_longer_queues(self):
        light, _ = simulate_mm1(3.0, 10.0, horizon=1500.0, seed=4)
        heavy, _ = simulate_mm1(9.0, 10.0, horizon=1500.0, seed=4)
        assert heavy > 2 * light
