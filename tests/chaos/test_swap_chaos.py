"""Serving chaos: hot-swaps mid-burst, attribution, and a murdered gate.

Three invariants the online serving loop must hold under hostile
timing (ISSUE 10 acceptance criteria):

1. **Zero drops across hot-swaps.**  A policy swap landing in the
   middle of a saturating burst of concurrent asks loses nothing —
   every ask is answered exactly once, with contiguous non-overlapping
   ledger ordinals and one coherent policy version per response.
2. **Attribution.**  The propensity a client sees in its response is
   the propensity recorded in the hash-chained log at the same
   ordinal, and it matches the policy version the response names.
3. **Gate isolation.**  SIGKILLing the evaluation subprocess
   mid-gate never blocks serving; the promote request resolves to a
   ``promote=False`` decision naming the exit code.
"""

import asyncio
import json
import os
import signal

import numpy as np

from repro.core.policies import ConstantPolicy, UniformRandomPolicy
from repro.core.types import Dataset
from repro.serve import DecisionService, GateConfig, PolicyServer, RequestBatcher


def make_service(tmp_path=None, **kwargs):
    defaults = dict(
        pool_rows=64, seed=7, shard_size=128, config={"n_actions": 4}
    )
    defaults.update(kwargs)
    if tmp_path is not None:
        defaults.setdefault("log_path", str(tmp_path / "serve.jsonl"))
    return DecisionService("synthetic", UniformRandomPolicy(), **defaults)


class TestHotSwapMidBurst:
    def test_swap_mid_burst_drops_nothing(self):
        """200 concurrent asks, one mid-burst swap, zero drops."""

        async def scenario():
            service = make_service()
            service.register_candidate("greedy", ConstantPolicy(1))
            batcher = RequestBatcher(service, max_batch=32)
            await batcher.start()

            async def swap_midway():
                # Land the swap while the burst is in full flight.
                while service.served < 300:
                    await asyncio.sleep(0)
                service.policies.promote("greedy", reason="forced")

            swapper = asyncio.get_running_loop().create_task(swap_midway())
            responses = await asyncio.gather(
                *(batcher.ask(5) for _ in range(200))
            )
            await swapper
            await batcher.stop()
            return service, batcher, responses

        service, batcher, responses = asyncio.run(scenario())
        # Every ask answered exactly once, nothing dropped or errored.
        assert len(responses) == 200
        assert batcher.answered == 200
        assert batcher.errored == 0
        assert service.dropped == 0
        assert service.served == 1000
        ordinals = np.concatenate([r.ordinals for r in responses])
        assert sorted(ordinals.tolist()) == list(range(1000))
        # Each response carries one coherent version; the swap is a
        # clean boundary — v1 before, the promoted version after.
        versions = sorted({r.version for r in responses})
        assert len(versions) == 2
        v1_max = max(
            int(r.ordinals.max()) for r in responses if r.version == versions[0]
        )
        v2_min = min(
            int(r.ordinals.min()) for r in responses if r.version == versions[1]
        )
        assert v1_max < v2_min
        # After the swap every decision is the constant policy's.
        for response in responses:
            if response.version == versions[1]:
                assert np.all(response.actions == 1)
                assert np.all(response.propensities == 1.0)

    def test_repeated_swaps_keep_the_ledger_contiguous(self):
        """Ten swaps under load: the chain never skips an ordinal."""

        async def scenario():
            service = make_service()
            batcher = RequestBatcher(service, max_batch=16)
            await batcher.start()

            async def churn():
                for round_ in range(10):
                    name = f"cand-{round_}"
                    service.register_candidate(
                        name, ConstantPolicy(round_ % 4)
                    )
                    service.policies.promote(name, reason="forced")
                    await asyncio.sleep(0)

            churner = asyncio.get_running_loop().create_task(churn())
            responses = await asyncio.gather(
                *(batcher.ask(3) for _ in range(100))
            )
            await churner
            await batcher.stop()
            return service, responses

        service, responses = asyncio.run(scenario())
        ordinals = np.concatenate([r.ordinals for r in responses])
        assert sorted(ordinals.tolist()) == list(range(300))
        assert len(service.ledger) == 300


class TestAttributionUnderSwap:
    def test_response_propensity_matches_the_ledger_row(self, tmp_path):
        """What the client saw is what the chain recorded, per version.

        Uniform v1 logs propensity 0.25; the promoted constant logs
        1.0.  Every response row must agree with the log record at its
        ordinal, and the version named by the response must predict
        the propensity exactly.
        """

        async def scenario():
            service = make_service(tmp_path)
            service.register_candidate("greedy", ConstantPolicy(1))
            batcher = RequestBatcher(service, max_batch=32)
            await batcher.start()

            async def swap_midway():
                while service.served < 120:
                    await asyncio.sleep(0)
                service.policies.promote("greedy", reason="forced")

            swapper = asyncio.get_running_loop().create_task(swap_midway())
            responses = await asyncio.gather(
                *(batcher.ask(4) for _ in range(80))
            )
            await swapper
            await batcher.stop()
            service.flush()
            service.close()
            return service, responses

        service, responses = asyncio.run(scenario())
        dataset = Dataset.load_jsonl(service.log_path, verify_ledger="require")
        logged = {int(row.timestamp): row for row in dataset}
        versions = sorted({r.version for r in responses})
        by_version = {versions[0]: 0.25, versions[1]: 1.0}
        for response in responses:
            expected = by_version[response.version]
            for i, ordinal in enumerate(response.ordinals):
                row = logged[int(ordinal)]
                assert row.propensity == response.propensities[i] == expected
                assert row.action == response.actions[i]


class TestGateUnderFire:
    def test_sigkilled_gate_never_blocks_serving(self, tmp_path):
        """Kill the evaluation subprocess; serving and refusal go on."""

        async def scenario():
            service = make_service(
                tmp_path, pool_rows=512, shard_size=512
            )
            service.register_candidate("greedy", ConstantPolicy(1))
            server = PolicyServer(
                service, gate_config=GateConfig(min_rows=64)
            )
            await server.start()

            async def connect():
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )

                async def call(**request):
                    writer.write(json.dumps(request).encode() + b"\n")
                    await writer.drain()
                    return json.loads(await reader.readline())

                return call, writer

            # Separate connections: the promote handler occupies its
            # connection until the gate resolves, and the point is
            # that *other* connections keep being served meanwhile.
            gate_call, gate_writer = await connect()
            serve_call, serve_writer = await connect()
            await serve_call(op="act", n=256)
            promote_task = asyncio.get_running_loop().create_task(
                gate_call(op="promote", name="greedy")
            )
            while service.gate is None:
                await asyncio.sleep(0)
            os.kill(service.gate.pid, signal.SIGKILL)
            # Serving continues while the murdered gate resolves.
            act = await serve_call(op="act", n=16)
            promote = await promote_task
            stats = await serve_call(op="stats")
            gate_writer.close()
            serve_writer.close()
            await server.stop()
            return act, promote, stats

        act, promote, stats = asyncio.run(scenario())
        assert act["ok"] and len(act["decisions"]) == 16
        decision = promote["decision"]
        assert decision["promote"] is False
        assert any(
            "died without reporting" in reason
            for reason in decision["reasons"]
        )
        # The refusal is on the audit record and the incumbent stands.
        assert stats["stats"]["incumbent"]["name"] == "incumbent"
        assert stats["stats"]["gates_decided"] == [decision]
