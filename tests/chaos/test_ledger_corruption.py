"""Chaos over a ledgered log: chain verification localizes every defect.

The chain promise under fire: run :class:`LogCorruptor` over a
hash-chained exploration log and show that verification (a) detects
that the log is broken, (b) points at the *first* corrupted line, and
(c) still authenticates the intact spans — so after quarantine + rechain
the surviving suffix verifies clean.
"""

import json

import numpy as np
import pytest

from repro.audit.ledger import DecisionLedger, rechain, verify_records
from repro.chaos.corruption import LogCorruptor
from repro.core.types import Dataset, Interaction


def ledgered_log(tmp_path, n=200, name="clean.jsonl"):
    """Write a ledgered exploration log; return (path, ledger)."""
    rng = np.random.default_rng(11)
    ledger = DecisionLedger("chaos/harvest/decisions")
    interactions = []
    for i in range(n):
        context = {"load": float(i % 17) / 17.0, "burst": float(i % 5)}
        action = int(rng.integers(3))
        propensity = 1.0 / 3.0
        ledger.append(context, action, propensity)
        interactions.append(
            Interaction(context=context, action=action, reward=0.5,
                        propensity=propensity, timestamp=float(i))
        )
    ledger.annotate(interactions)
    path = tmp_path / name
    Dataset(interactions).save_jsonl(str(path))
    return path, ledger


def records_from(path):
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for i, line in enumerate(handle, start=1):
            try:
                records.append((i, json.loads(line)))
            except json.JSONDecodeError:
                records.append((i, {"metadata": {"ledger": {}}}))
    return records


class TestDetection:
    def test_clean_log_verifies(self, tmp_path):
        path, ledger = ledgered_log(tmp_path)
        result = verify_records(records_from(path), expected_head=ledger.head)
        assert result.ok

    @pytest.mark.parametrize(
        "kind", ["truncate", "drop_field", "zero_propensity",
                 "garble_propensity", "duplicate"]
    )
    def test_every_corruption_kind_detected(self, tmp_path, kind):
        path, ledger = ledgered_log(tmp_path)
        corrupted = tmp_path / f"{kind}.jsonl"
        corruptor = LogCorruptor(rate=0.05, kinds=(kind,), seed=3)
        counts = corruptor.corrupt_file(str(path), str(corrupted))
        assert counts[kind] > 0
        result = verify_records(
            records_from(corrupted), expected_head=ledger.head
        )
        assert not result.ok

    def test_first_bad_line_localized(self, tmp_path):
        path, ledger = ledgered_log(tmp_path)
        lines = path.read_text().splitlines()
        record = json.loads(lines[120])
        record["action"] = (record["action"] + 1) % 3
        lines[120] = json.dumps(record)
        path.write_text("\n".join(lines) + "\n")
        result = verify_records(records_from(path), expected_head=ledger.head)
        assert result.first_bad == 121
        assert len(result.issues) == 1

    def test_intact_spans_still_authenticated(self, tmp_path):
        # Corrupt one line; the prefix and suffix verify as segments.
        path, ledger = ledgered_log(tmp_path)
        lines = path.read_text().splitlines()
        record = json.loads(lines[99])
        record["propensity"] = 0.9
        lines[99] = json.dumps(record)
        path.write_text("\n".join(lines) + "\n")
        result = verify_records(records_from(path), expected_head=ledger.head)
        spans = [(s["start_line"], s["stop_line"]) for s in result.segments]
        assert (1, 99) in spans
        assert (101, 200) in spans


class TestRepairPath:
    def corrupt(self, tmp_path, seed=5, rate=0.04):
        path, ledger = ledgered_log(tmp_path)
        corrupted = tmp_path / "corrupted.jsonl"
        corruptor = LogCorruptor(rate=rate, seed=seed)
        corruptor.corrupt_file(str(path), str(corrupted))
        assert corruptor.n_corrupted > 0
        return corrupted, ledger

    def test_quarantine_isolates_broken_records(self, tmp_path):
        corrupted, _ = self.corrupt(tmp_path)
        dataset = Dataset.load_jsonl(str(corrupted), mode="quarantine")
        assert 0 < len(dataset) < 205  # duplicates can add lines
        assert dataset.quarantine.n_rejected > 0
        # Chain damage is attributed to the ledger, not misdiagnosed as
        # value errors, for records whose bytes no longer match the chain.
        assert "ledger" in dataset.quarantine.counts_by_reason()

    def test_rechain_survivors_verify_clean(self, tmp_path):
        corrupted, _ = self.corrupt(tmp_path)
        dataset = Dataset.load_jsonl(str(corrupted), mode="quarantine")
        fresh = rechain(list(dataset))
        records = [
            (i + 1, json.loads(json.dumps(interaction.to_dict())))
            for i, interaction in enumerate(list(dataset))
        ]
        result = verify_records(records, expected_head=fresh.head)
        assert result.ok
        assert len(result.segments) == 1

    def test_repaired_log_round_trips(self, tmp_path):
        # Quarantine + rechain + save: the written artifact is a fully
        # verified log a downstream consumer can trust end to end.
        corrupted, _ = self.corrupt(tmp_path, seed=9)
        dataset = Dataset.load_jsonl(str(corrupted), mode="quarantine")
        rechain(list(dataset))
        repaired = tmp_path / "repaired.jsonl"
        dataset.save_jsonl(str(repaired))
        reloaded = Dataset.load_jsonl(str(repaired), mode="strict")
        assert len(reloaded) == len(dataset)

    def test_truncated_tail_detected_via_expected_head(self, tmp_path):
        path, ledger = ledgered_log(tmp_path)
        lines = path.read_text().splitlines()[:150]
        path.write_text("\n".join(lines) + "\n")
        result = verify_records(records_from(path), expected_head=ledger.head)
        assert not result.ok
        assert result.truncated
        assert not result.issues  # every surviving record is authentic
