"""Unit tests for the JSONL log corruptor."""

import json

import pytest

from repro.chaos.corruption import KINDS, LogCorruptor


def clean_lines(n=100):
    return [
        json.dumps(
            {
                "context": {"load": i / n},
                "action": i % 3,
                "reward": 0.5,
                "propensity": 1.0 / 3.0,
                "timestamp": float(i),
            }
        )
        for i in range(n)
    ]


class TestConstruction:
    def test_rate_out_of_bounds_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            LogCorruptor(rate=1.5)
        with pytest.raises(ValueError, match="rate"):
            LogCorruptor(rate=-0.1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown corruption kind"):
            LogCorruptor(kinds=("truncate", "bitflip"))

    def test_empty_kinds_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            LogCorruptor(kinds=())


class TestCorruptLines:
    def test_zero_rate_is_identity(self):
        lines = clean_lines(50)
        out = list(LogCorruptor(rate=0.0).corrupt_lines(lines))
        assert out == lines

    def test_seeded_runs_are_deterministic(self):
        lines = clean_lines(200)
        first = list(LogCorruptor(rate=0.3, seed=42).corrupt_lines(lines))
        second = list(LogCorruptor(rate=0.3, seed=42).corrupt_lines(lines))
        assert first == second

    def test_different_seeds_differ(self):
        lines = clean_lines(200)
        a = list(LogCorruptor(rate=0.3, seed=1).corrupt_lines(lines))
        b = list(LogCorruptor(rate=0.3, seed=2).corrupt_lines(lines))
        assert a != b

    def test_counts_match_actual_damage(self):
        lines = clean_lines(500)
        corruptor = LogCorruptor(rate=0.2, seed=7)
        out = list(corruptor.corrupt_lines(lines))
        assert corruptor.n_corrupted > 0
        # Duplicates add a line each; everything else is 1:1.
        assert len(out) == len(lines) + corruptor.counts["duplicate"]
        assert set(corruptor.counts) <= set(KINDS)

    def test_rate_roughly_honored(self):
        lines = clean_lines(2000)
        corruptor = LogCorruptor(rate=0.1, seed=3)
        list(corruptor.corrupt_lines(lines))
        assert 0.05 < corruptor.n_corrupted / 2000 < 0.2

    def test_single_kind_only_produces_that_kind(self):
        lines = clean_lines(300)
        corruptor = LogCorruptor(rate=0.5, kinds=("zero_propensity",), seed=0)
        out = list(corruptor.corrupt_lines(lines))
        assert set(corruptor.counts) == {"zero_propensity"}
        zeroed = [
            line for line in out if json.loads(line)["propensity"] == 0.0
        ]
        assert len(zeroed) == corruptor.counts["zero_propensity"]

    def test_truncate_breaks_json(self):
        lines = clean_lines(300)
        corruptor = LogCorruptor(rate=0.5, kinds=("truncate",), seed=0)
        out = list(corruptor.corrupt_lines(lines))
        broken = 0
        for line in out:
            try:
                json.loads(line)
            except json.JSONDecodeError:
                broken += 1
        assert broken == corruptor.counts["truncate"] > 0

    def test_drop_field_removes_a_required_field(self):
        lines = clean_lines(300)
        corruptor = LogCorruptor(rate=0.5, kinds=("drop_field",), seed=0)
        out = list(corruptor.corrupt_lines(lines))
        required = {"context", "action", "reward", "propensity"}
        incomplete = [
            line for line in out if not required <= set(json.loads(line))
        ]
        assert len(incomplete) == corruptor.counts["drop_field"] > 0

    def test_blank_lines_pass_through(self):
        out = list(LogCorruptor(rate=1.0, seed=0).corrupt_lines(["", "  "]))
        assert out == ["", "  "]

    def test_counts_reset_between_runs(self):
        lines = clean_lines(100)
        corruptor = LogCorruptor(rate=0.5, seed=0)
        list(corruptor.corrupt_lines(lines))
        first = corruptor.n_corrupted
        list(corruptor.corrupt_lines(lines))
        assert corruptor.n_corrupted == first  # same seed, fresh counter


class TestCorruptFile:
    def test_file_round_trip(self, tmp_path):
        src = tmp_path / "clean.jsonl"
        dst = tmp_path / "dirty.jsonl"
        src.write_text("\n".join(clean_lines(100)) + "\n")
        counts = LogCorruptor(rate=0.3, seed=5).corrupt_file(str(src), str(dst))
        assert sum(counts.values()) > 0
        dirty = dst.read_text().splitlines()
        assert len(dirty) == 100 + counts["duplicate"]
