"""Sharded-harvest chaos: killed workers and corrupted shard payloads.

The coordinator's resilience contract: a SIGKILLed worker or an
in-transit payload corruption costs only the re-derivation of the
affected shards — the final spliced chain is bit-identical to an
unperturbed run (same rows, same head), nothing leaks into
``/dev/shm``, and shards that already completed are never recomputed.
"""

import multiprocessing
import os
import signal

import numpy as np
import pytest

from repro.core import pool as worker_pool
from repro.core import shm
from repro.core.coordinator import HarvestCoordinator, HarvestJob
from repro.core.policies import UniformRandomPolicy


@pytest.fixture(autouse=True)
def fresh_pool():
    worker_pool.reset_pool()
    yield
    worker_pool.reset_pool()


class KillOncePolicy(UniformRandomPolicy):
    """SIGKILLs the first worker process that samples through it.

    The flag file makes the kill one-shot across processes: retried
    shards (and the in-process fallback) complete normally.  Sampling
    probabilities are untouched, so an unperturbed
    :class:`UniformRandomPolicy` run is the bit-identical reference.
    """

    def __init__(self, flag_path: str) -> None:
        super().__init__()
        self.flag_path = flag_path

    def probabilities_batch(self, batch):
        if (
            multiprocessing.parent_process() is not None
            and not os.path.exists(self.flag_path)
        ):
            with open(self.flag_path, "w") as handle:
                handle.write("killed")
            os.kill(os.getpid(), signal.SIGKILL)
        return super().probabilities_batch(batch)


def job_for(policy, rows=200, shard_size=32):
    return HarvestJob(
        scenario="synthetic",
        rows=rows,
        master_seed=23,
        policy=policy,
        shard_size=shard_size,
        batch_size=32,
    )


@pytest.fixture()
def reference():
    result = HarvestCoordinator(job_for(UniformRandomPolicy()), workers=1).run()
    assert result.retries == 0
    return result


def assert_same_harvest(result, reference):
    np.testing.assert_array_equal(result.columns.actions, reference.columns.actions)
    np.testing.assert_array_equal(result.columns.rewards, reference.columns.rewards)
    np.testing.assert_array_equal(
        result.columns.propensities, reference.columns.propensities
    )
    assert result.head == reference.head
    assert result.ledger.entries() == reference.ledger.entries()


class TestKilledWorker:
    def test_sigkill_rederives_only_missing_shards(self, tmp_path, reference):
        policy = KillOncePolicy(str(tmp_path / "killed.flag"))
        coordinator = HarvestCoordinator(job_for(policy), workers=2)
        with pytest.warns(RuntimeWarning, match="worker pool died"):
            result = coordinator.run()
        assert os.path.exists(policy.flag_path)  # the kill really fired
        assert result.retries >= 1
        # Only shards that had not completed when the pool died were
        # re-derived; a completed shard is never recomputed.
        retried = {i for i, n in coordinator.attempts.items() if n}
        assert retried  # the killed worker's shard is in here
        assert all(n <= 1 for n in coordinator.attempts.values())
        assert_same_harvest(result, reference)
        assert shm.owned_segments() == ()

    def test_verifies_after_crash(self, tmp_path, reference):
        from repro.audit.shards import verify_sharded_jsonl

        policy = KillOncePolicy(str(tmp_path / "killed.flag"))
        with pytest.warns(RuntimeWarning, match="worker pool died"):
            result = HarvestCoordinator(job_for(policy), workers=2).run()
        dataset = result.columns.to_dataset()
        result.annotate(dataset)
        path = tmp_path / "sharded.jsonl"
        dataset.save_jsonl(str(path))
        entry = result.manifest_entry()
        verification = verify_sharded_jsonl(
            str(path),
            entry["shards"],
            expected_head=entry["head"],
            expected_n=entry["n"],
        )
        assert verification.ok
        assert entry["head"] == reference.head


class CorruptOnDelivery(HarvestCoordinator):
    """Flips one action in one shard's first delivered payload."""

    def __init__(self, *args, corrupt_index, **kwargs):
        super().__init__(*args, **kwargs)
        self.corrupt_index = corrupt_index
        self.deliveries = 0

    def _receive(self, spec, payload):
        if spec.index == self.corrupt_index and self.deliveries == 0:
            self.deliveries += 1
            payload = dict(payload)
            payload["actions"] = np.array(payload["actions"], copy=True)
            payload["actions"][-1] = (payload["actions"][-1] + 1) % 4
        return payload


class TestCorruptedPayload:
    def test_corruption_is_detected_and_shard_precise(self, reference):
        coordinator = CorruptOnDelivery(
            job_for(UniformRandomPolicy()), workers=2, corrupt_index=3
        )
        with pytest.warns(RuntimeWarning, match="re-deriving shard 3"):
            result = coordinator.run()
        assert coordinator.attempts[3] == 1
        assert all(
            n == 0 for i, n in coordinator.attempts.items() if i != 3
        )
        assert_same_harvest(result, reference)
        assert shm.owned_segments() == ()


class TestKillAndCorrupt:
    def test_combined_chaos_still_bit_identical(self, tmp_path, reference):
        policy = KillOncePolicy(str(tmp_path / "killed.flag"))
        coordinator = CorruptOnDelivery(
            job_for(policy), workers=2, corrupt_index=1
        )
        with pytest.warns(RuntimeWarning):
            result = coordinator.run()
        assert result.retries >= 1
        assert_same_harvest(result, reference)
        assert shm.owned_segments() == ()
