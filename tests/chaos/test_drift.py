"""Unit tests for environment drift and hook composition."""

import pytest

from repro.chaos.drift import ChainedHooks, EnvironmentDrift
from repro.chaos.monkey import ChaosMonkey, FaultSpec
from repro.loadbalance.server import BackendServer, ServerConfig


def make_servers(n=2):
    return [BackendServer(ServerConfig(i, 0.2, 0.05)) for i in range(n)]


class TestEnvironmentDrift:
    def test_applies_once_at_time(self):
        drift = EnvironmentDrift(10.0, {0: 3.0})
        servers = make_servers()
        drift.tick(5.0, servers)
        assert servers[0].drift_multiplier == 1.0
        drift.tick(10.0, servers)
        assert servers[0].drift_multiplier == 3.0
        assert servers[1].drift_multiplier == 1.0
        # Never applied twice.
        drift.tick(20.0, servers)
        assert servers[0].drift_multiplier == 3.0

    def test_multiple_servers(self):
        drift = EnvironmentDrift(0.0, {0: 2.0, 1: 4.0})
        servers = make_servers()
        drift.tick(0.0, servers)
        assert servers[0].drift_multiplier == 2.0
        assert servers[1].drift_multiplier == 4.0

    def test_out_of_range_server_ignored(self):
        drift = EnvironmentDrift(0.0, {5: 2.0})
        servers = make_servers()
        drift.tick(1.0, servers)  # no crash
        assert all(s.drift_multiplier == 1.0 for s in servers)

    def test_latency_actually_changes(self):
        drift = EnvironmentDrift(0.0, {0: 3.0})
        servers = make_servers()
        before = servers[0].service_latency()
        drift.tick(0.0, servers)
        assert servers[0].service_latency() == pytest.approx(3.0 * before)

    def test_validation(self):
        with pytest.raises(ValueError):
            EnvironmentDrift(-1.0, {0: 2.0})
        with pytest.raises(ValueError):
            EnvironmentDrift(0.0, {})
        with pytest.raises(ValueError):
            EnvironmentDrift(0.0, {0: 0.0})


class TestEnvironmentDriftEdgeCases:
    def test_boundary_tick_exactly_at_time_applies(self):
        drift = EnvironmentDrift(10.0, {0: 2.0})
        servers = make_servers()
        drift.tick(10.0 - 1e-12, servers)
        assert servers[0].drift_multiplier == 1.0
        drift.tick(10.0, servers)  # now == at_time: inclusive boundary
        assert servers[0].drift_multiplier == 2.0

    def test_clock_jump_past_at_time_still_applies(self):
        """A coarse tick that skips over at_time must not lose the
        drift — the event loop's time steps are request-driven and will
        rarely land exactly on the configured instant."""
        drift = EnvironmentDrift(10.0, {0: 2.0})
        servers = make_servers()
        drift.tick(9.0, servers)
        drift.tick(137.5, servers)
        assert servers[0].drift_multiplier == 2.0
        assert drift.applied

    def test_two_drifts_on_same_server_compose_multiplicatively(self):
        early = EnvironmentDrift(1.0, {0: 2.0})
        late = EnvironmentDrift(2.0, {0: 3.0})
        servers = make_servers()
        for t in (0.5, 1.5, 2.5):
            early.tick(t, servers)
            late.tick(t, servers)
        assert servers[0].drift_multiplier == pytest.approx(6.0)

    def test_speedup_drift_allowed(self):
        # Multipliers in (0, 1) model a server getting *faster* — a
        # hardware upgrade is drift too.
        drift = EnvironmentDrift(0.0, {0: 0.5})
        servers = make_servers()
        before = servers[0].service_latency()
        drift.tick(0.0, servers)
        assert servers[0].service_latency() == pytest.approx(0.5 * before)


class TestChainedHooks:
    def test_all_hooks_ticked(self):
        drift_a = EnvironmentDrift(1.0, {0: 2.0})
        drift_b = EnvironmentDrift(2.0, {1: 3.0})
        chain = ChainedHooks(drift_a, drift_b)
        servers = make_servers()
        chain.tick(1.5, servers)
        assert servers[0].drift_multiplier == 2.0
        assert servers[1].drift_multiplier == 1.0
        chain.tick(2.5, servers)
        assert servers[1].drift_multiplier == 3.0

    def test_compose_with_chaos_monkey(self):
        drift = EnvironmentDrift(0.0, {0: 2.0})
        monkey = ChaosMonkey(
            [FaultSpec("spike", rate=0.0, mean_duration=1.0, multiplier=2.0)],
            seed=0,
        )
        chain = ChainedHooks(monkey, drift)
        servers = make_servers()
        chain.tick(1.0, servers)
        # Drift applied; silent monkey leaves the chaos channel alone.
        assert servers[0].drift_multiplier == 2.0
        assert servers[0].fault_multiplier == 1.0

    def test_drift_survives_chaos_fault_churn(self):
        """Transient faults starting and expiring must not clobber a
        permanent drift — the two live in separate channels."""
        drift = EnvironmentDrift(0.0, {0: 2.0})
        spike = FaultSpec("spike", rate=5.0, mean_duration=2.0,
                          multiplier=5.0)
        monkey = ChaosMonkey([spike], seed=1)
        chain = ChainedHooks(monkey, drift)
        servers = make_servers()
        for t in range(50):
            chain.tick(float(t), servers)
        assert servers[0].drift_multiplier == 2.0
        # Effective latency includes the drift whatever the chaos state.
        base = 0.2 * servers[0].fault_multiplier * 2.0
        assert servers[0].service_latency() == pytest.approx(base)

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            ChainedHooks()


class TestObserverHook:
    def test_proxy_observer_sees_every_request(self):
        from repro.loadbalance import LoadBalancerSim, Workload, fig5_servers
        from repro.loadbalance.policies import random_policy
        from repro.simsys.random_source import RandomSource

        seen = []
        workload = Workload(10.0, randomness=RandomSource(3, _name="wl"))
        sim = LoadBalancerSim(fig5_servers(), random_policy(), workload, seed=3)
        sim.run(
            200,
            observer=lambda ctx, a, lat, p: seen.append((a, lat, p)),
        )
        assert len(seen) == 200
        assert all(p == pytest.approx(0.5) for _, _, p in seen)
        assert all(lat > 0 for _, lat, _ in seen)
