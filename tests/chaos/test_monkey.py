"""Unit tests for the chaos monkey."""

import pytest

from repro.chaos.monkey import ChaosMonkey, FaultSpec
from repro.loadbalance.server import BackendServer, ServerConfig


def make_servers(n=3):
    return [BackendServer(ServerConfig(i, 0.2, 0.05)) for i in range(n)]


SPIKE = FaultSpec(kind="spike", rate=0.5, mean_duration=5.0, multiplier=3.0)


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec("x", rate=-1.0, mean_duration=1.0, multiplier=2.0)
        with pytest.raises(ValueError):
            FaultSpec("x", rate=1.0, mean_duration=0.0, multiplier=2.0)
        with pytest.raises(ValueError):
            FaultSpec("x", rate=1.0, mean_duration=1.0, multiplier=1.0)


class TestChaosMonkey:
    def test_faults_fire_over_time(self):
        monkey = ChaosMonkey([SPIKE], seed=0)
        servers = make_servers()
        for t in range(200):
            monkey.tick(float(t), servers)
        assert len(monkey.history) > 10

    def test_fault_applies_multiplier(self):
        monkey = ChaosMonkey([SPIKE], seed=1)
        servers = make_servers()
        t = 0.0
        while not monkey.active:
            t += 1.0
            monkey.tick(t, servers)
        fault = monkey.active[0]
        assert servers[fault.server_index].fault_multiplier == pytest.approx(3.0)

    def test_fault_expires(self):
        monkey = ChaosMonkey([SPIKE], seed=2)
        servers = make_servers()
        t = 0.0
        while not monkey.active:
            t += 1.0
            monkey.tick(t, servers)
        first_active = list(monkey.active)
        end = max(f.end for f in first_active)
        monkey.tick(end + 0.001, servers)
        for fault in first_active:
            assert fault not in monkey.active

    def test_healthy_servers_have_unit_multiplier(self):
        monkey = ChaosMonkey([SPIKE], seed=3)
        servers = make_servers()
        monkey.tick(0.0, servers)  # arms; nothing fired at t=0
        assert all(s.fault_multiplier == 1.0 for s in servers)

    def test_overlapping_faults_multiply(self):
        heavy = FaultSpec(kind="h", rate=50.0, mean_duration=1000.0,
                          multiplier=2.0)
        monkey = ChaosMonkey([heavy], seed=4)
        servers = make_servers(1)  # all faults hit the same server
        monkey.tick(0.0, servers)  # arms the schedule
        monkey.tick(1.0, servers)  # ~50 faults due by now
        live = len(monkey.active)
        assert live >= 2
        assert servers[0].fault_multiplier == pytest.approx(2.0**live)

    def test_zero_rate_never_fires(self):
        silent = FaultSpec(kind="never", rate=0.0, mean_duration=1.0,
                           multiplier=2.0)
        monkey = ChaosMonkey([silent], seed=5)
        servers = make_servers()
        for t in range(100):
            monkey.tick(float(t), servers)
        assert monkey.history == []

    def test_deterministic(self):
        a = ChaosMonkey([SPIKE], seed=6)
        b = ChaosMonkey([SPIKE], seed=6)
        servers_a, servers_b = make_servers(), make_servers()
        for t in range(100):
            a.tick(float(t), servers_a)
            b.tick(float(t), servers_b)
        assert [(f.start, f.server_index) for f in a.history] == [
            (f.start, f.server_index) for f in b.history
        ]

    def test_total_fault_time(self):
        monkey = ChaosMonkey([SPIKE], seed=7)
        servers = make_servers()
        for t in range(100):
            monkey.tick(float(t), servers)
        assert monkey.total_fault_time() > 0

    def test_no_faults_rejected(self):
        with pytest.raises(ValueError):
            ChaosMonkey([])

    def test_targets_spread_across_servers(self):
        monkey = ChaosMonkey([SPIKE], seed=8)
        servers = make_servers(3)
        for t in range(600):
            monkey.tick(float(t), servers)
        targets = {f.server_index for f in monkey.history}
        assert targets == {0, 1, 2}


class TestChaosMonkeyEdgeCases:
    def test_zero_rate_spec_silent_while_sibling_fires(self):
        """A silent spec in the mix must not suppress (or be dragged
        along by) a firing sibling."""
        silent = FaultSpec(kind="never", rate=0.0, mean_duration=1.0,
                           multiplier=2.0)
        monkey = ChaosMonkey([silent, SPIKE], seed=9)
        servers = make_servers()
        for t in range(200):
            monkey.tick(float(t), servers)
        kinds = {f.kind for f in monkey.history}
        assert "spike" in kinds
        assert "never" not in kinds

    def test_expiry_recomputes_product_of_survivors(self):
        """When one of several overlapping faults expires, the server
        multiplier must drop to the product of the *remaining* faults,
        not reset to 1 or keep the stale product."""
        heavy = FaultSpec(kind="h", rate=50.0, mean_duration=1000.0,
                          multiplier=2.0)
        monkey = ChaosMonkey([heavy], seed=10)
        servers = make_servers(1)
        monkey.tick(0.0, servers)
        monkey.tick(1.0, servers)
        assert len(monkey.active) >= 2
        earliest_end = min(f.end for f in monkey.active)
        survivors_expected = [
            f for f in monkey.active if f.end > earliest_end + 0.001
        ]
        # Step just past the earliest expiry without firing new faults:
        # rate 50/unit means new arrivals are likely, so filter to the
        # actual survivor set after the tick.
        monkey.tick(earliest_end + 0.001, servers)
        product = 1.0
        for fault in monkey.active:
            product *= fault.multiplier
        assert servers[0].fault_multiplier == pytest.approx(product)
        assert all(f in monkey.active for f in survivors_expected)

    def test_multiplier_returns_to_exactly_one_after_all_expire(self):
        monkey = ChaosMonkey([SPIKE], seed=11)
        servers = make_servers()
        t = 0.0
        while not monkey.active:
            t += 1.0
            monkey.tick(t, servers)
        horizon = max(f.end for f in monkey.active)
        monkey.tick(horizon + 1e-9, servers)
        # New faults may have fired during the jump; every server not
        # currently under a live fault must read exactly 1.0.
        live_targets = {f.server_index for f in monkey.active}
        for i, server in enumerate(servers):
            if i not in live_targets:
                assert server.fault_multiplier == 1.0

    def test_large_time_jump_fires_backlog(self):
        """Jumping the clock far forward fires every fault that was due
        in the gap (each recorded in history), not just one."""
        busy = FaultSpec(kind="busy", rate=2.0, mean_duration=0.5,
                         multiplier=2.0)
        monkey = ChaosMonkey([busy], seed=12)
        servers = make_servers()
        monkey.tick(0.0, servers)   # arm
        monkey.tick(50.0, servers)  # ~100 faults due in the gap
        assert len(monkey.history) > 20
        starts = [f.start for f in monkey.history]
        assert starts == sorted(starts)
        assert all(f.start <= 50.0 for f in monkey.history)

    def test_fault_end_is_after_start(self):
        monkey = ChaosMonkey([SPIKE], seed=13)
        servers = make_servers()
        for t in range(100):
            monkey.tick(float(t), servers)
        assert monkey.history
        assert all(f.end > f.start for f in monkey.history)
