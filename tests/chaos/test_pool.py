"""Worker-pool chaos: killed workers must not change results or leak.

A SIGKILLed worker poisons the whole ``ProcessPoolExecutor``
(``BrokenProcessPool``).  The contract of :mod:`repro.core.pool` is
that every parallel caller catches it, resets the pool, recomputes
serially with *bit-identical* results, and releases every shared
segment it created along the way — a crash costs wall time, never
correctness and never ``/dev/shm``.
"""

import os
import signal

import multiprocessing
import numpy as np
import pytest

from repro.core import pool as worker_pool
from repro.core import shm
from repro.core.bootstrap import bootstrap_interval_from_terms
from repro.core.engine import evaluate_jsonl_chunked, use_backend
from repro.core.estimators.ips import IPSEstimator
from repro.core.policies import ConstantPolicy
from repro.core.types import ActionSpace, Dataset, Interaction, RewardRange

pytestmark = pytest.mark.skipif(
    not shm.available(), reason="shared memory unavailable"
)


class KillerPolicy(ConstantPolicy):
    """Kills the process on first batch — but only inside a worker.

    The parent-side serial fallback therefore completes normally and
    produces the reference result.
    """

    def probabilities_batch(self, batch):
        if multiprocessing.parent_process() is not None:
            os.kill(os.getpid(), signal.SIGKILL)
        return super().probabilities_batch(batch)


def make_dataset(n=150, seed=4):
    rng = np.random.default_rng(seed)
    rows = [
        Interaction({"x": float(i), "y": float(rng.uniform())},
                    int(rng.integers(0, 3)), float(rng.uniform()), 1 / 3,
                    timestamp=float(i))
        for i in range(n)
    ]
    return Dataset(rows, action_space=ActionSpace(3),
                   reward_range=RewardRange(0.0, 1.0))


@pytest.fixture(autouse=True)
def fresh_pool():
    """Isolate each test from pools poisoned by earlier kills."""
    worker_pool.reset_pool()
    yield
    worker_pool.reset_pool()


class TestKilledWorker:
    def test_shared_backend_falls_back_bit_identical(self):
        dataset = make_dataset()
        policy = KillerPolicy(1)
        with use_backend("chunked", chunk_size=25):
            ref = IPSEstimator().estimate(ConstantPolicy(1), dataset)
        with pytest.warns(RuntimeWarning, match="worker pool died"):
            with use_backend("shared", chunk_size=25, workers=2):
                survived = IPSEstimator().estimate(policy, dataset)
        assert survived.value == ref.value
        assert survived.std_error == ref.std_error
        dataset.columns().release_shared_block()
        assert shm.owned_segments() == ()

    def test_jsonl_driver_falls_back_bit_identical(self, tmp_path):
        dataset = make_dataset(n=120, seed=6)
        path = tmp_path / "log.jsonl"
        dataset.save_jsonl(str(path))
        serial = evaluate_jsonl_chunked(
            str(path), [ConstantPolicy(1)], [IPSEstimator()],
            chunk_size=20, workers=1,
        )
        with pytest.warns(RuntimeWarning, match="pool died"):
            survived = evaluate_jsonl_chunked(
                str(path), [KillerPolicy(1)], [IPSEstimator()],
                chunk_size=20, workers=2,
            )
        assert survived.results[0][0].value == serial.results[0][0].value
        assert (
            survived.results[0][0].std_error
            == serial.results[0][0].std_error
        )
        # Every one-shot chunk segment was released despite the crash.
        assert shm.owned_segments() == ()

    def test_pool_is_usable_after_reset(self):
        dataset = make_dataset(n=80, seed=7)
        with pytest.warns(RuntimeWarning, match="worker pool died"):
            with use_backend("shared", chunk_size=16, workers=2):
                IPSEstimator().estimate(KillerPolicy(0), dataset)
        # The reset pool serves the next parallel call as if nothing
        # happened — same results as serial, no lingering breakage.
        with use_backend("chunked", chunk_size=16):
            ref = IPSEstimator().estimate(ConstantPolicy(0), dataset)
        with use_backend("shared", chunk_size=16, workers=2):
            again = IPSEstimator().estimate(ConstantPolicy(0), dataset)
        assert again.value == ref.value
        dataset.columns().release_shared_block()

    def test_bootstrap_shards_survive_broken_pool(self):
        # Poison the pool with a killed engine worker, then run a
        # parallel bootstrap: it must reset and still match serial.
        dataset = make_dataset(n=90, seed=8)
        with pytest.warns(RuntimeWarning, match="worker pool died"):
            with use_backend("shared", chunk_size=16, workers=2):
                IPSEstimator().estimate(KillerPolicy(0), dataset)
        dataset.columns().release_shared_block()
        terms = np.random.default_rng(1).random(1200)
        serial = bootstrap_interval_from_terms(
            terms, seed=9, n_boot=512, workers=1
        )
        parallel = bootstrap_interval_from_terms(
            terms, seed=9, n_boot=512, workers=2
        )
        assert (parallel.low, parallel.high) == (serial.low, serial.high)
        assert shm.owned_segments() == ()


class TestPoolMechanics:
    def test_pool_grows_by_recreation(self):
        worker_pool.get_pool(1)
        assert worker_pool.pool_size() == 1
        worker_pool.get_pool(3)
        assert worker_pool.pool_size() == 3
        # Asking for fewer reuses the larger pool.
        worker_pool.get_pool(2)
        assert worker_pool.pool_size() == 3

    def test_reset_without_pool_is_safe(self):
        worker_pool.reset_pool()
        worker_pool.reset_pool()
        assert worker_pool.pool_size() == 0

    def test_job_keys_are_unique(self):
        key_a, _ = worker_pool.new_job(("a",))
        key_b, _ = worker_pool.new_job(("b",))
        assert key_a != key_b
        assert key_a.startswith(f"{os.getpid()}:")
