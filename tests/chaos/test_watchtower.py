"""Watchtower chaos: monitors and profiler under worker death and
corrupted logs.

Two resilience contracts ride on top of the sharded-harvest chaos
suite: (1) a SIGKILLed worker must not cost any telemetry — the
surviving shards' monitor states and flame tables still merge home,
the retry registers in the retry-storm monitor, and the harvest stays
bit-identical; (2) a seeded :class:`LogCorruptor` run must drive at
least one monitor to CRITICAL, and that verdict must land in all
three export surfaces — the run manifest, the Prometheus dump, and
the rendered dashboard.
"""

import json
import re

import pytest

from repro.chaos.corruption import LogCorruptor
from repro.core import pool as worker_pool
from repro.core.coordinator import HarvestCoordinator
from repro.core.policies import UniformRandomPolicy
from repro.obs.metrics import use_metrics
from repro.obs.monitors import MonitorSuite, use_monitors
from repro.obs.profiler import SpanProfiler, use_profiler
from repro.obs.tracing import Tracer, use_tracer
from tests.chaos.test_sharded_harvest import (
    KillOncePolicy,
    assert_same_harvest,
    job_for,
)
from tests.conftest import make_uniform_dataset


@pytest.fixture(autouse=True)
def fresh_pool():
    worker_pool.reset_pool()
    yield
    worker_pool.reset_pool()


class TestKilledWorkerKeepsTelemetry:
    def test_monitor_states_survive_sigkill_and_retry_registers(
        self, tmp_path
    ):
        reference = HarvestCoordinator(
            job_for(UniformRandomPolicy()), workers=1
        ).run()
        policy = KillOncePolicy(str(tmp_path / "killed.flag"))
        suite = MonitorSuite()
        profiler = SpanProfiler()
        tracer = Tracer()
        with use_metrics() as metrics, use_tracer(tracer), \
                use_monitors(suite), use_profiler(profiler, arm=False):
            coordinator = HarvestCoordinator(job_for(policy), workers=2)
            with pytest.warns(RuntimeWarning, match="worker pool died"):
                result = coordinator.run()

        # The kill cost nothing: the harvest is still bit-identical.
        assert result.retries >= 1
        assert_same_harvest(result, reference)

        # Worker-side monitor states were shipped home and absorbed:
        # every one of the 200 rows' propensities reached the parent
        # suite, even though one worker died mid-shard.
        states = suite.states()
        assert states["ess"]["n"] == 200
        assert states["propensity_floor"]["n"] == 200

        # The retry storm monitor saw the death (retried >= 1) and the
        # re-derivations (every shard still completed exactly once).
        shard_state = states["retry_storm"]
        assert shard_state["retried"] >= 1
        assert shard_state["completed"] == 200 // 32 + 1
        assert metrics.total("harvest.shards_retried") >= 1

        # Flame tables from dead workers are simply absent — absorb
        # tolerates the loss and the merged profile stays well-formed.
        profile = profiler.to_dict()
        assert profile["samples"] >= 0
        assert isinstance(profile["spans"], dict)

        # Worker span trees grafted home alongside the states.
        tree = tracer.span_tree()
        names = []

        def walk(spans):
            for span in spans:
                names.append(span["name"])
                walk(span.get("children", ()))

        walk(tree)
        assert "harvest.sharded" in names
        assert names.count("harvest.shard") == 200 // 32 + 1

    def test_health_snapshot_after_crash_is_consistent(self, tmp_path):
        policy = KillOncePolicy(str(tmp_path / "killed.flag"))
        suite = MonitorSuite()
        with use_monitors(suite):
            with pytest.warns(RuntimeWarning, match="worker pool died"):
                HarvestCoordinator(job_for(policy), workers=2).run()
        snapshot = suite.snapshot()
        # A pool death re-queues every pending shard, so most of the
        # run is retried — exactly the storm this monitor exists to
        # flag.  (WARN vs CRITICAL depends on how many shards had
        # already completed when the pool died.)
        storm = snapshot["monitors"]["retry_storm"]
        assert storm["level"] in ("WARN", "CRITICAL")
        assert storm["value"] >= 0.25
        assert snapshot["overall"] == storm["level"]
        assert any(
            event["monitor"] == "retry_storm"
            for event in snapshot["events"]
        )


class TestCorruptedLogGoesCritical:
    """ISSUE 9 acceptance: seeded corruption must surface as a
    CRITICAL verdict in the manifest, the Prometheus dump, and the
    dashboard."""

    @pytest.fixture()
    def corrupted_log(self, tmp_path):
        clean = tmp_path / "clean.jsonl"
        make_uniform_dataset(800, seed=11).save_jsonl(str(clean))
        corrupted = tmp_path / "corrupted.jsonl"
        counts = LogCorruptor(
            rate=0.3,
            kinds=("zero_propensity", "garble_propensity"),
            seed=5,
        ).corrupt_file(str(clean), str(corrupted))
        assert sum(counts.values()) > 50  # the seed really corrupted
        return str(corrupted)

    @pytest.fixture()
    def verdict_artifacts(self, corrupted_log, tmp_path, capsys):
        from repro.__main__ import main

        manifest_path = tmp_path / "run_manifest.json"
        prom_path = tmp_path / "metrics.prom"
        html_path = tmp_path / "dashboard.html"
        code = main(
            [
                "evaluate", corrupted_log,
                "--mode", "quarantine",
                "--policy", "constant:1",
                "--estimator", "ips",
                "--monitors",
                "--manifest", str(manifest_path),
                "--metrics-out", str(prom_path),
            ]
        )
        assert code == 0
        assert main(
            ["dashboard", str(manifest_path), "-o", str(html_path)]
        ) == 0
        capsys.readouterr()
        return manifest_path, prom_path, html_path

    def test_critical_in_manifest(self, verdict_artifacts):
        manifest_path, _, _ = verdict_artifacts
        health = json.loads(manifest_path.read_text())["health"]
        assert health["overall"] == "CRITICAL"
        critical = [
            name
            for name, entry in health["monitors"].items()
            if entry["level"] == "CRITICAL"
        ]
        assert "quarantine_rate" in critical  # ~30% of rows rejected
        assert any(
            event["level"] == "CRITICAL" for event in health["events"]
        )

    def test_critical_in_prometheus_dump(self, verdict_artifacts):
        _, prom_path, _ = verdict_artifacts
        text = prom_path.read_text()
        critical_gauges = re.findall(
            r'repro_health_level\{monitor="([^"]+)"\} 2(?:\.0)?$',
            text,
            flags=re.MULTILINE,
        )
        assert "quarantine_rate" in critical_gauges
        assert "repro_health_events_total" in text

    def test_critical_in_dashboard(self, verdict_artifacts):
        _, _, html_path = verdict_artifacts
        html = html_path.read_text()
        assert "CRITICAL" in html
        assert "quarantine_rate" in html
        assert "<script" not in html.lower()  # verdict page stays static

    def test_same_log_clean_run_is_healthy(self, tmp_path, capsys):
        from repro.__main__ import main

        clean = tmp_path / "clean.jsonl"
        make_uniform_dataset(800, seed=11).save_jsonl(str(clean))
        manifest_path = tmp_path / "clean_manifest.json"
        code = main(
            [
                "evaluate", str(clean),
                "--mode", "quarantine",
                "--policy", "constant:1",
                "--estimator", "ips",
                "--monitors",
                "--manifest", str(manifest_path),
            ]
        )
        capsys.readouterr()
        assert code == 0
        health = json.loads(manifest_path.read_text())["health"]
        assert health["overall"] == "OK"
        assert health["events"] == []
