"""Unit tests for the perf regression gate (benchmarks/perf/gate.py)."""

import json

import pytest

from benchmarks.perf.gate import check_regressions, main


def artifact(single=2.9, klass=90.0, chunked=4.0, shared=0.4, boot=0.5,
             instr=1.0, harvest=(25.0, 60.0, 13.0), ledger=0.95,
             obs=0.95, serve=75_000.0):
    return {
        "single_policy_ips": {"speedup": single},
        "class_search": {"speedup": klass},
        "chunked": {"relative_throughput": chunked},
        "shared": {"relative_throughput": shared},
        "bootstrap": {"parallel_speedup": boot},
        "instrumentation": {"relative_throughput": instr},
        "harvest": {
            "machinehealth": {"speedup": harvest[0]},
            "loadbalance": {"speedup": harvest[1]},
            "cache": {"speedup": harvest[2]},
        },
        "ledger": {"relative_throughput": ledger},
        "obs": {"monitor_overhead": {"relative_throughput": obs}},
        "serve": {"decisions_per_sec": serve},
    }


class TestCheckRegressions:
    def test_matching_baseline_passes(self):
        assert check_regressions(artifact(), artifact()) == []

    def test_improvement_passes(self):
        assert check_regressions(artifact(5.0, 200.0), artifact()) == []

    def test_drop_within_tolerance_passes(self):
        current = artifact(2.9 * 0.75, 90.0 * 0.75)
        assert check_regressions(current, artifact(), tolerance=0.30) == []

    def test_drop_beyond_tolerance_fails(self):
        current = artifact(2.9 * 0.6, 90.0)
        failures = check_regressions(current, artifact(), tolerance=0.30)
        assert len(failures) == 1
        assert "single-policy" in failures[0]

    def test_both_metrics_reported(self):
        failures = check_regressions(
            artifact(0.5, 10.0), artifact(), tolerance=0.30
        )
        assert len(failures) == 2

    def test_metric_missing_from_baseline_is_not_a_regression(self):
        baseline = {"class_search": {"speedup": 90.0}}
        assert check_regressions(artifact(), baseline) == []

    def test_metric_missing_from_current_raises(self):
        with pytest.raises(KeyError):
            check_regressions({"class_search": {}}, artifact())

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ValueError, match="tolerance"):
            check_regressions(artifact(), artifact(), tolerance=1.5)


class TestAbsoluteFloors:
    def test_ledger_at_floor_passes(self):
        assert check_regressions(artifact(ledger=0.9), artifact()) == []

    def test_ledger_below_floor_fails(self):
        failures = check_regressions(artifact(ledger=0.85), artifact())
        assert len(failures) == 1
        assert "ledger" in failures[0]
        assert "absolute floor" in failures[0]

    def test_floor_ignores_baseline_value(self):
        # A generous baseline cannot loosen an absolute floor: 0.85 fails
        # even though it is within 30% of a 1.0 baseline.
        failures = check_regressions(
            artifact(ledger=0.85), artifact(ledger=1.0), tolerance=0.30
        )
        assert len(failures) == 1

    def test_old_artifact_without_ledger_is_skipped(self):
        current = artifact()
        del current["ledger"]
        baseline = artifact()
        del baseline["ledger"]
        assert check_regressions(current, baseline) == []

    def test_monitor_overhead_at_floor_passes(self):
        assert check_regressions(artifact(obs=0.9), artifact()) == []

    def test_monitor_overhead_below_floor_fails(self):
        failures = check_regressions(artifact(obs=0.85), artifact())
        assert len(failures) == 1
        assert "monitor overhead" in failures[0]
        assert "absolute floor" in failures[0]

    def test_old_artifact_without_obs_is_skipped(self):
        current = artifact()
        del current["obs"]
        baseline = artifact()
        del baseline["obs"]
        assert check_regressions(current, baseline) == []

    def test_serve_at_floor_passes(self):
        assert check_regressions(artifact(serve=50_000.0), artifact()) == []

    def test_serve_below_floor_fails(self):
        failures = check_regressions(artifact(serve=42_000.0), artifact())
        assert len(failures) == 1
        assert "serve decisions/sec" in failures[0]
        assert "absolute floor" in failures[0]

    def test_serve_floor_ignores_generous_baseline(self):
        # 42k is within 30% of a 100k baseline, but the floor is absolute.
        failures = check_regressions(
            artifact(serve=42_000.0), artifact(serve=100_000.0),
            tolerance=0.30,
        )
        assert len(failures) == 1

    def test_old_artifact_without_serve_is_skipped(self):
        current = artifact()
        del current["serve"]
        baseline = artifact()
        del baseline["serve"]
        assert check_regressions(current, baseline) == []


class TestGateCli:
    def write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_passing_run_exits_zero(self, tmp_path, capsys):
        current = self.write(tmp_path, "current.json", artifact())
        baseline = self.write(tmp_path, "baseline.json", artifact())
        code = main(
            [current, "--baseline", baseline,
             "--history-dir", str(tmp_path / "history")]
        )
        assert code == 0
        assert "perf gate passed" in capsys.readouterr().out

    def test_regressed_run_exits_one(self, tmp_path, capsys):
        current = self.write(tmp_path, "current.json", artifact(1.0, 10.0))
        baseline = self.write(tmp_path, "baseline.json", artifact())
        code = main(
            [current, "--baseline", baseline, "--no-history"]
        )
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_committed_smoke_baseline_is_loadable(self):
        from benchmarks.perf.gate import DEFAULT_BASELINE

        with open(DEFAULT_BASELINE, "r", encoding="utf-8") as f:
            baseline = json.load(f)
        assert check_regressions(artifact(), baseline, tolerance=0.30) == []


class TestTrendCheck:
    """History append + monotone-drift warnings (advisory, never fatal)."""

    def write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def run_gate(self, tmp_path, current, history_dir):
        baseline = self.write(tmp_path, "baseline.json", artifact())
        return main(
            [self.write(tmp_path, "current.json", current),
             "--baseline", baseline,
             "--history-dir", str(history_dir)]
        )

    def test_every_run_appended(self, tmp_path):
        history_dir = tmp_path / "history"
        for _ in range(2):
            assert self.run_gate(tmp_path, artifact(), history_dir) == 0
        lines = (history_dir / "runs.jsonl").read_text().splitlines()
        assert len(lines) == 2
        record = json.loads(lines[0])
        assert record["kind"] == "bench"
        assert {"git_sha", "timestamp", "cpu_count"} <= set(record)
        assert record["metrics"]["single_policy_ips.speedup"] == 2.9
        assert (
            record["metrics"]["obs.monitor_overhead.relative_throughput"]
            == 0.95
        )

    def test_three_run_monotone_drop_warns_without_failing(
        self, tmp_path, capsys
    ):
        history_dir = tmp_path / "history"
        for speedup in (3.0, 2.9, 2.8):
            code = self.run_gate(
                tmp_path, artifact(single=speedup), history_dir
            )
            assert code == 0  # a drift warns, never gates
        err = capsys.readouterr().err
        assert "TREND WARNING" in err
        assert "single_policy_ips.speedup" in err

    def test_non_monotone_history_stays_quiet(self, tmp_path, capsys):
        history_dir = tmp_path / "history"
        for speedup in (3.0, 2.8, 2.9):
            assert self.run_gate(
                tmp_path, artifact(single=speedup), history_dir
            ) == 0
        assert "TREND WARNING" not in capsys.readouterr().err

    def test_no_history_flag_writes_nothing(self, tmp_path):
        baseline = self.write(tmp_path, "baseline.json", artifact())
        current = self.write(tmp_path, "current.json", artifact())
        assert main([current, "--baseline", baseline, "--no-history"]) == 0
        assert not (tmp_path / "history").exists()

    def test_unwritable_history_degrades_to_note(self, tmp_path, capsys):
        baseline = self.write(tmp_path, "baseline.json", artifact())
        current = self.write(tmp_path, "current.json", artifact())
        blocker = tmp_path / "blocked"
        blocker.write_text("not a directory")
        code = main(
            [current, "--baseline", baseline,
             "--history-dir", str(blocker / "history")]
        )
        assert code == 0
        assert "history: skipped" in capsys.readouterr().err
