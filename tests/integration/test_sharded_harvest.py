"""Sharded harvest ≡ serial harvest, per scenario and worker count.

The tentpole invariant of the distributed-harvest refactor: for every
scenario and any number of workers, the coordinator's rows AND its
spliced ledger head are bit-identical to a monolithic serial harvest
of the same job — shard boundaries, process boundaries, and retries
must all be invisible in the output.
"""

import numpy as np
import pytest

from repro.audit.ledger import DecisionLedger
from repro.audit.streams import StreamRegistry, StreamRNG
from repro.core import pool as worker_pool
from repro.core.coordinator import HarvestCoordinator, HarvestJob, build_inputs
from repro.core.harvest import harvest_columns
from repro.core.policies import UniformRandomPolicy

JOBS = {
    "machinehealth": dict(
        rows=300, shard_size=64, config={"seed": 3, "n_machines": 120}
    ),
    "loadbalance": dict(
        rows=300, shard_size=64, config={"seed": 4, "latency_noise": 0.01}
    ),
    "cache": dict(rows=2500, shard_size=64, config={"seed": 5}),
}


@pytest.fixture(autouse=True, scope="module")
def fresh_pool():
    worker_pool.reset_pool()
    yield
    worker_pool.reset_pool()


def job_for(scenario):
    spec = JOBS[scenario]
    return HarvestJob(
        scenario=scenario,
        rows=spec["rows"],
        master_seed=2017,
        policy=UniformRandomPolicy(),
        shard_size=spec["shard_size"],
        batch_size=50,
        config=spec["config"],
    )


@pytest.fixture(scope="module", params=sorted(JOBS))
def scenario_reference(request):
    """(job, serial columns, serial ledger) — computed once per scenario."""
    job = job_for(request.param)
    registry = StreamRegistry(job.master_seed)
    inputs = build_inputs(job, registry)
    key = job.stream_key()
    rng = StreamRNG(registry, key, shard_size=job.shard_size)
    ledger = DecisionLedger(
        key,
        shard_size=job.shard_size,
        master_fingerprint=registry.master_fingerprint,
    )
    columns = harvest_columns(
        job.policy,
        inputs.contexts,
        inputs.reward_fn,
        rng,
        eligible=inputs.eligible,
        action_space=inputs.action_space,
        batch_size=job.batch_size,
        reward_range=inputs.reward_range,
        scenario=job.scenario,
        timestamps=inputs.timestamps,
        ledger=ledger,
    )
    return job, columns, ledger


class TestShardedEqualsSerial:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_rows_and_head_bit_identical(self, scenario_reference, workers):
        job, reference, reference_ledger = scenario_reference
        result = HarvestCoordinator(job, workers=workers).run()
        assert result.columns.n == reference.n
        np.testing.assert_array_equal(result.columns.actions, reference.actions)
        np.testing.assert_array_equal(result.columns.rewards, reference.rewards)
        np.testing.assert_array_equal(
            result.columns.propensities, reference.propensities
        )
        assert result.head == reference_ledger.head
        assert result.ledger.entries() == reference_ledger.entries()
        assert result.plan.shard_size == job.shard_size

    def test_shard_map_matches_serial_boundary_hashes(self, scenario_reference):
        job, _, reference_ledger = scenario_reference
        result = HarvestCoordinator(job, workers=2).run()
        entries = reference_ledger.entries()
        for shard in result.shard_map:
            start, n = shard["start"], shard["n"]
            expected_prev = (
                entries[start - 1].hash if start else reference_ledger.genesis
            )
            assert shard["prev"] == expected_prev
            assert shard["head"] == entries[start + n - 1].hash

    def test_dataset_round_trip_verifies(self, scenario_reference, tmp_path):
        from repro.audit.shards import verify_sharded_jsonl

        job, _, _ = scenario_reference
        result = HarvestCoordinator(job, workers=2).run()
        dataset = result.columns.to_dataset()
        result.annotate(dataset)
        path = tmp_path / "sharded.jsonl"
        dataset.save_jsonl(str(path))
        entry = result.manifest_entry()
        verification = verify_sharded_jsonl(
            str(path),
            entry["shards"],
            expected_head=entry["head"],
            expected_n=entry["n"],
        )
        assert verification.ok
