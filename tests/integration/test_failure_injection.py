"""Failure injection on the harvesting path.

Real logs are hostile: truncated lines, rotations, interleaved garbage,
encoding damage, missing fields, and occasionally numbers that are not
numbers.  The pipeline's contract is: never crash, never silently
fabricate data — drop what cannot be parsed and *count* it.
"""

import numpy as np
import pytest

from repro.cache import (
    BigSmallWorkload,
    CacheSim,
    eviction_dataset_from_log,
    random_eviction_policy,
)
from repro.core import IPSEstimator, UniformRandomPolicy
from repro.core.harvest import LogScavenger
from repro.core.policies import ConstantPolicy
from repro.core.types import Interaction
from repro.core.vw_format import load_vw
from repro.loadbalance import LoadBalancerSim, Workload, fig5_servers
from repro.loadbalance.access_log import (
    format_access_log_line,
    parse_access_log_line,
)
from repro.loadbalance.harvest import dataset_from_access_log
from repro.loadbalance.policies import random_policy
from repro.simsys.random_source import RandomSource


def collect_lines(n=2000, seed=3):
    workload = Workload(10.0, randomness=RandomSource(seed, _name="wl"))
    sim = LoadBalancerSim(fig5_servers(), random_policy(), workload, seed=seed)
    return [format_access_log_line(e) for e in sim.run(n).access_log]


def corrupt(lines, rng, fraction=0.2):
    """Damage a fraction of lines in assorted realistic ways."""
    out = []
    for line in lines:
        roll = rng.random()
        if roll < fraction * 0.25:
            out.append(line[: int(len(line) * rng.random())])  # truncation
        elif roll < fraction * 0.5:
            out.append("-- " + line)  # prefix garbage (syslog wrapping)
        elif roll < fraction * 0.75:
            out.append("")  # blank line
        elif roll < fraction:
            out.append("May  4 03:17:01 host logrotate: rotating logs")
        else:
            out.append(line)
    return out


class TestCorruptedAccessLogs:
    def test_parser_survives_and_counts(self):
        rng = np.random.default_rng(0)
        lines = corrupt(collect_lines(), rng)
        parsed = [parse_access_log_line(line) for line in lines]
        good = [p for p in parsed if p is not None]
        # Roughly 80% survive; none crash.
        assert 0.7 * len(lines) < len(good) < len(lines)

    def test_estimates_robust_to_corruption(self):
        """Dropping 20% of lines at random should not change IPS
        estimates materially (the damage is action-independent)."""
        rng = np.random.default_rng(1)
        clean_lines = collect_lines(6000)
        clean_entries = [parse_access_log_line(l) for l in clean_lines]
        dirty_entries = [
            parse_access_log_line(l) for l in corrupt(clean_lines, rng)
        ]
        clean_ds = dataset_from_access_log(
            [e for e in clean_entries if e],
            logging_policy=UniformRandomPolicy(),
        )
        dirty_ds = dataset_from_access_log(
            [e for e in dirty_entries if e],
            logging_policy=UniformRandomPolicy(),
        )
        ips = IPSEstimator()
        clean_est = ips.estimate(ConstantPolicy(0), clean_ds).value
        dirty_est = ips.estimate(ConstantPolicy(0), dirty_ds).value
        assert dirty_est == pytest.approx(clean_est, rel=0.1)


class TestScavengerFailureModes:
    def test_extractor_exceptions_counted_not_raised(self):
        def explosive_context(record):
            if record.get("bomb"):
                raise KeyError("missing field")
            return {"x": 1.0}

        scavenger = LogScavenger(
            context_of=explosive_context,
            action_of=lambda r: r["a"],
            reward_of=lambda r: r["r"],
        )
        records = [{"a": 0, "r": 0.5}, {"bomb": True, "a": 0, "r": 0.1},
                   {"a": 1, "r": 0.9}]
        out = scavenger.scavenge(records)
        assert len(out) == 2
        assert scavenger.dropped == 1

    def test_type_errors_counted(self):
        scavenger = LogScavenger(
            context_of=lambda r: {"x": float(r["x"])},
            action_of=lambda r: int(r["a"]),
            reward_of=lambda r: float(r["r"]),
        )
        records = [{"x": "not-a-number", "a": 0, "r": 0.1},
                   {"x": 1.0, "a": "zero?", "r": 0.1},
                   {"x": 1.0, "a": 0, "r": 0.5}]
        out = scavenger.scavenge(records)
        assert len(out) == 1
        assert scavenger.dropped == 2


class TestPoisonedValues:
    def test_nan_reward_rejected_at_boundary(self):
        with pytest.raises(ValueError):
            Interaction({"x": 1.0}, 0, reward=float("nan"), propensity=0.5)

    def test_inf_reward_rejected(self):
        with pytest.raises(ValueError):
            Interaction({}, 0, reward=float("inf"), propensity=0.5)

    def test_nan_in_full_rewards_rejected(self):
        with pytest.raises(ValueError):
            Interaction({}, 0, 0.5, 1.0,
                        full_rewards=[0.1, float("nan")])

    def test_vw_loader_skips_nonfinite_costs(self):
        import io

        text = ("1:0.5:0.5 | x:1\n"
                "1:nan:0.5 | x:1\n"
                "1:inf:0.5 | x:1\n"
                "2:0.1:0.5 | x:1\n")
        dataset = load_vw(io.StringIO(text))
        assert len(dataset) == 2


class TestKeyspaceLogCorruption:
    def test_cache_harvest_survives_damage(self):
        workload = BigSmallWorkload(
            n_big=20, n_small=200, randomness=RandomSource(5, _name="wl")
        )
        sim = CacheSim(150, random_eviction_policy(), sample_size=5, seed=5)
        lines = sim.run(workload.requests(6000)).log_lines
        rng = np.random.default_rng(2)
        damaged = corrupt(lines, rng, fraction=0.15)
        dataset = eviction_dataset_from_log(damaged, sample_size=5)
        assert len(dataset) > 0
        # Rewards still bounded and usable.
        rewards = dataset.rewards()
        assert np.isfinite(rewards).all()

    def test_reordered_log_still_parses(self):
        """Log shippers reorder lines; reward reconstruction keys on
        timestamps, not file order, so the dataset is unchanged."""
        workload = BigSmallWorkload(
            n_big=10, n_small=100, randomness=RandomSource(6, _name="wl")
        )
        sim = CacheSim(60, random_eviction_policy(), sample_size=5, seed=6)
        lines = sim.run(workload.requests(3000)).log_lines
        ordered = eviction_dataset_from_log(lines, sample_size=5)
        rng = np.random.default_rng(3)
        shuffled_lines = list(lines)
        rng.shuffle(shuffled_lines)
        shuffled = eviction_dataset_from_log(shuffled_lines, sample_size=5)
        assert sorted(i.reward for i in ordered) == pytest.approx(
            sorted(i.reward for i in shuffled)
        )
