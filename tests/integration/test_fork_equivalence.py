"""Fork equivalence: any shard of a ledgered log rebuilds in isolation.

The audit layer's headline guarantee (ISSUE tentpole): given only the
master seed, the stream key, and a shard's start ordinal, an auditor
can re-derive the *middle* shard of a harvested log — its actions, its
propensities, and its ledger records — bit-identically, without
replaying the prefix.  Proven here for the generic engine and all
three scenarios.
"""

import dataclasses

import numpy as np
import pytest

from repro.audit.ledger import DecisionLedger
from repro.audit.streams import StreamKey, StreamRegistry
from repro.cache import (
    BigSmallWorkload,
    CacheSim,
    random_eviction_policy,
    resample_eviction_columns,
)
from repro.cache.keyspace_log import parse_keyspace_line
from repro.core.harvest import harvest_columns
from repro.core.policies import UniformRandomPolicy
from repro.loadbalance import (
    batch_exploration_columns,
    fig5_servers,
    synthetic_decision_snapshots,
)
from repro.loadbalance.policies import weighted_random_policy
from repro.machinehealth.dataset import (
    build_full_feedback_dataset,
    simulate_exploration_columns,
)
from repro.simsys.random_source import RandomSource

S = 64  # shard size; logs span 3 shards, the middle one is re-derived
MASTER_SEED = 2017


def streams_for(scenario, shard_size=S, start_ordinal=0):
    """(StreamRNG, StreamKey) for a scenario's decision stream."""
    registry = StreamRegistry(MASTER_SEED)
    stream = registry.stream(
        scenario, "harvest", "decisions",
        shard_size=shard_size, start_ordinal=start_ordinal,
    )
    return stream, StreamKey(scenario, "harvest", "decisions")


def shard_ledger_from(full_ledger, key, start, shard_size=S):
    """A ledger anchored exactly where the full log's shard begins."""
    entries = full_ledger.entries()
    genesis = entries[start - 1].hash if start else full_ledger.genesis
    return DecisionLedger(
        key, shard_size=shard_size, genesis=genesis, start_ordinal=start
    )


def assert_shard_matches(full, shard, start, stop):
    assert shard.n == stop - start
    assert (shard.actions == full.actions[start:stop]).all()
    assert (shard.propensities == full.propensities[start:stop]).all()
    assert (shard.rewards == full.rewards[start:stop]).all()


def assert_ledger_shard_matches(full_ledger, shard_ledger, start, stop):
    assert shard_ledger.entries() == full_ledger.entries()[start:stop]
    assert shard_ledger.head == full_ledger.entries()[stop - 1].hash


class TestGenericEngine:
    def contexts(self, n):
        rng = np.random.default_rng(1)
        return [{"x": float(v)} for v in rng.normal(size=n)]

    def reward(self, indices, actions):
        return (indices % 5 + actions).astype(float)

    def test_middle_shard_rebuilds_in_isolation(self):
        contexts = self.contexts(3 * S)
        policy = UniformRandomPolicy()
        stream, key = streams_for("generic")
        full_ledger = DecisionLedger(key, shard_size=S)
        full = harvest_columns(
            policy, contexts, self.reward, stream,
            eligible=(0, 1, 2), batch_size=50, ledger=full_ledger,
        )
        shard_stream, _ = streams_for("generic", start_ordinal=S)
        shard_ledger = shard_ledger_from(full_ledger, key, S)
        # The auditor sees only the shard's input rows — but the reward
        # function must still address them by their global indices.
        shard = harvest_columns(
            policy, contexts[S: 2 * S],
            lambda indices, actions: self.reward(indices + S, actions),
            shard_stream,
            eligible=(0, 1, 2), batch_size=50, ledger=shard_ledger,
        )
        assert_shard_matches(full, shard, S, 2 * S)
        assert_ledger_shard_matches(full_ledger, shard_ledger, S, 2 * S)

    def test_rebuild_is_batch_size_independent(self):
        contexts = self.contexts(3 * S)
        stream, key = streams_for("generic")
        full = harvest_columns(
            UniformRandomPolicy(), contexts, self.reward, stream,
            eligible=(0, 1, 2), batch_size=7,
        )
        shard_stream, _ = streams_for("generic", start_ordinal=S)
        shard = harvest_columns(
            UniformRandomPolicy(), contexts[S: 2 * S],
            lambda indices, actions: self.reward(indices + S, actions),
            shard_stream,
            eligible=(0, 1, 2), batch_size=3 * S,
        )
        assert_shard_matches(full, shard, S, 2 * S)

    def test_wrong_master_seed_diverges(self):
        contexts = self.contexts(2 * S)
        stream, _ = streams_for("generic")
        full = harvest_columns(
            UniformRandomPolicy(), contexts, self.reward, stream,
            eligible=(0, 1, 2), batch_size=64,
        )
        other = StreamRegistry(MASTER_SEED + 1).stream(
            "generic", "harvest", "decisions",
            shard_size=S, start_ordinal=S,
        )
        shard = harvest_columns(
            UniformRandomPolicy(), contexts[S: 2 * S],
            lambda indices, actions: self.reward(indices + S, actions),
            other,
            eligible=(0, 1, 2), batch_size=64,
        )
        assert not (shard.actions == full.actions[S: 2 * S]).all()


class TestMachineHealthForkEquivalence:
    def test_middle_shard(self):
        full_data = build_full_feedback_dataset(n_events=3 * S, seed=7)
        stream, key = streams_for("machinehealth")
        full_ledger = DecisionLedger(key, shard_size=S)
        full = simulate_exploration_columns(
            full_data.full, stream, batch_size=41, ledger=full_ledger
        )
        shard_stream, _ = streams_for("machinehealth", start_ordinal=S)
        shard_ledger = shard_ledger_from(full_ledger, key, S)
        shard = simulate_exploration_columns(
            full_data.full[S: 2 * S], shard_stream,
            batch_size=41, ledger=shard_ledger,
        )
        assert_shard_matches(full, shard, S, 2 * S)
        assert_ledger_shard_matches(full_ledger, shard_ledger, S, 2 * S)


class TestLoadBalanceForkEquivalence:
    def slice_snapshots(self, snapshots, start, stop):
        return dataclasses.replace(
            snapshots,
            contexts=snapshots.contexts[start:stop],
            connections=snapshots.connections[start:stop],
            kind_index=snapshots.kind_index[start:stop],
            weights=snapshots.weights[start:stop],
        )

    def test_middle_shard(self):
        snapshots = synthetic_decision_snapshots(3 * S, n_servers=2, seed=3)
        servers = fig5_servers()
        policy = weighted_random_policy([0.7, 0.3])
        stream, key = streams_for("loadbalance")
        full_ledger = DecisionLedger(key, shard_size=S)
        # Latency noise off: its stream is indexed by global row up
        # front, which is exactly the ambient pattern the decision
        # stream escapes.  The ledgered decision fields are the claim.
        full = batch_exploration_columns(
            policy, snapshots, servers, stream,
            batch_size=50, latency_noise=0.0, ledger=full_ledger,
        )
        shard_stream, _ = streams_for("loadbalance", start_ordinal=S)
        shard_ledger = shard_ledger_from(full_ledger, key, S)
        shard = batch_exploration_columns(
            policy, self.slice_snapshots(snapshots, S, 2 * S), servers,
            shard_stream,
            batch_size=50, latency_noise=0.0, ledger=shard_ledger,
        )
        assert_shard_matches(full, shard, S, 2 * S)
        assert_ledger_shard_matches(full_ledger, shard_ledger, S, 2 * S)

    def test_middle_shard_with_latency_noise(self):
        # The satellite claim of the sharded-harvest refactor: latency
        # noise now rides a ShardedNormal stream addressed by global
        # row, so the *rewards* of a middle shard — not just its
        # ledgered decision fields — re-derive in isolation from
        # (master seed, key, start ordinal).
        from repro.loadbalance.harvest import latency_noise_stream

        snapshots = synthetic_decision_snapshots(3 * S, n_servers=2, seed=3)
        servers = fig5_servers()
        policy = weighted_random_policy([0.7, 0.3])
        stream, key = streams_for("loadbalance")
        full_registry = StreamRegistry(MASTER_SEED)
        full_ledger = DecisionLedger(key, shard_size=S)
        full = batch_exploration_columns(
            policy, snapshots, servers, stream,
            batch_size=50,
            noise=latency_noise_stream(full_registry, S, scale=0.01),
            ledger=full_ledger,
        )
        shard_stream, _ = streams_for("loadbalance", start_ordinal=S)
        shard_registry = StreamRegistry(MASTER_SEED)
        shard_ledger = shard_ledger_from(full_ledger, key, S)
        shard = batch_exploration_columns(
            policy, self.slice_snapshots(snapshots, S, 2 * S), servers,
            shard_stream,
            batch_size=50,
            noise=latency_noise_stream(shard_registry, S, scale=0.01),
            noise_start=S,
            ledger=shard_ledger,
        )
        assert_shard_matches(full, shard, S, 2 * S)
        assert_ledger_shard_matches(full_ledger, shard_ledger, S, 2 * S)
        # The isolated shard derived exactly its own noise shard.
        noise_keys = [
            d["key"] for d in shard_registry.derivations()
            if "latency-noise" in d["key"]
        ]
        assert noise_keys == [f"loadbalance/harvest/latency-noise#{S}"]

    def test_noise_scheme_batch_grid_independent(self):
        # Same stream parameters, wildly different batch grids — the
        # noise is addressed by row, never by draw order.
        snapshots = synthetic_decision_snapshots(2 * S, n_servers=2, seed=3)
        servers = fig5_servers()
        from repro.loadbalance.harvest import latency_noise_stream

        outputs = []
        for batch_size in (7, 2 * S):
            stream, _ = streams_for("loadbalance")
            outputs.append(
                batch_exploration_columns(
                    weighted_random_policy([0.6, 0.4]),
                    snapshots, servers, stream,
                    batch_size=batch_size,
                    noise=latency_noise_stream(
                        StreamRegistry(MASTER_SEED), S, scale=0.01
                    ),
                )
            )
        assert (outputs[0].rewards == outputs[1].rewards).all()
        assert (outputs[0].actions == outputs[1].actions).all()


class TestCacheForkEquivalence:
    SHARD = 32  # eviction counts are workload-dependent; smaller shards

    @pytest.fixture(scope="class")
    def events(self):
        workload = BigSmallWorkload(
            n_big=20, n_small=200, randomness=RandomSource(0, _name="wl")
        )
        sim = CacheSim(150, random_eviction_policy(), seed=0)
        result = sim.run(workload.requests(8000), keep_log=True)
        parsed = [parse_keyspace_line(line) for line in result.log_lines]
        return [event for event in parsed if event is not None]

    def test_middle_shard(self, events):
        S_c = self.SHARD
        stream, key = streams_for("cache", shard_size=S_c)
        full_ledger = DecisionLedger(key, shard_size=S_c)
        full = resample_eviction_columns(
            events, random_eviction_policy(), stream,
            batch_size=64, ledger=full_ledger,
        )
        assert full.n >= 3 * S_c  # the workload evicts enough to shard
        # The shard's decision points are its EVICT events; the GET
        # history rides along because the look-ahead reward is data,
        # not randomness — the verifier has the full keyspace log.
        evictions = [e for e in events if e.kind == "EVICT"]
        shard_events = [
            e for e in events if e.kind != "EVICT"
        ] + evictions[S_c: 2 * S_c]
        shard_stream, _ = streams_for(
            "cache", shard_size=S_c, start_ordinal=S_c
        )
        shard_ledger = shard_ledger_from(
            full_ledger, key, S_c, shard_size=S_c
        )
        shard = resample_eviction_columns(
            shard_events, random_eviction_policy(), shard_stream,
            batch_size=64, ledger=shard_ledger,
        )
        assert_shard_matches(full, shard, S_c, 2 * S_c)
        assert_ledger_shard_matches(full_ledger, shard_ledger, S_c, 2 * S_c)
