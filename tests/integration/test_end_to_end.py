"""Integration tests: the paper's experiments at miniature scale.

Each test runs a scaled-down version of one headline experiment and
asserts its *qualitative shape* — the same checks the full benchmarks
print at scale.
"""

import numpy as np
import pytest

from repro.cache import (
    BigSmallWorkload,
    CacheSim,
    eviction_dataset_from_log,
    freq_size_policy,
    lru_policy,
    random_eviction_policy,
    train_cb_eviction,
)
from repro.core import (
    ConstantPolicy,
    IPSEstimator,
    SupervisedTrainer,
    UniformRandomPolicy,
)
from repro.core.learners.cb import EpsilonGreedyLearner
from repro.loadbalance import LoadBalancerSim, Workload, fig5_servers
from repro.loadbalance.harvest import dataset_from_access_log, train_cb_policy
from repro.loadbalance.policies import (
    least_loaded_policy,
    random_policy,
    send_to_policy,
)
from repro.machinehealth import (
    build_full_feedback_dataset,
    default_policy_reward,
    ground_truth_value,
    simulate_exploration,
)
from repro.simsys.random_source import RandomSource


class TestMachineHealthPipeline:
    """Figs. 3–4 in miniature."""

    @pytest.fixture(scope="class")
    def scenario(self):
        return build_full_feedback_dataset(
            n_events=4000, n_machines=500, seed=11
        )

    def test_cb_policy_beats_deployed_default(self, scenario):
        train, test = scenario.split(0.5)
        rng = np.random.default_rng(0)
        exploration = simulate_exploration(train, rng)
        learner = EpsilonGreedyLearner(10, maximize=False, learning_rate=0.5)
        for _ in range(3):
            learner.observe_all(exploration)
        cb_downtime = ground_truth_value(learner.policy(), test)
        default_downtime = default_policy_reward(test)
        assert cb_downtime < 0.9 * default_downtime

    def test_cb_within_striking_distance_of_supervised(self, scenario):
        """Fig. 4: CB converges to within ~20% of full feedback."""
        train, test = scenario.split(0.5)
        rng = np.random.default_rng(1)
        exploration = simulate_exploration(train, rng)
        learner = EpsilonGreedyLearner(10, maximize=False, learning_rate=0.5)
        for _ in range(3):
            learner.observe_all(exploration)
        supervised = SupervisedTrainer(10, maximize=False).fit(train)
        cb = ground_truth_value(learner.policy(), test)
        ceiling = ground_truth_value(supervised.policy(), test)
        assert cb <= 1.35 * ceiling

    def test_ips_error_shrinks_with_test_size(self, scenario):
        """Fig. 3: evaluation error decays with N."""
        _, test = scenario.split(0.5)
        policy = ConstantPolicy(2)
        truth = ground_truth_value(policy, test)
        rng = np.random.default_rng(2)

        def replicate_errors(n, reps=30):
            errors = []
            for _ in range(reps):
                sample = test.subsample(n, rng)
                exploration = simulate_exploration(sample, rng)
                estimate = IPSEstimator().estimate(policy, exploration)
                errors.append(abs(estimate.value - truth) / truth)
            return float(np.mean(errors))

        assert replicate_errors(1600) < replicate_errors(100)


class TestLoadBalancingPipeline:
    """Table 2 in miniature."""

    @pytest.fixture(scope="class")
    def collected(self):
        workload = Workload(10.0, randomness=RandomSource(42, _name="wl"))
        sim = LoadBalancerSim(
            fig5_servers(), random_policy(), workload, seed=42
        )
        result = sim.run(8000)
        dataset = dataset_from_access_log(
            result.access_log, logging_policy=UniformRandomPolicy()
        )
        return result, dataset

    def _online(self, policy, n=5000, seed=7):
        workload = Workload(10.0, randomness=RandomSource(seed, _name="wl"))
        sim = LoadBalancerSim(fig5_servers(), policy, workload, seed=seed)
        return sim.run(n).mean_latency

    def test_random_estimate_is_unbiased(self, collected):
        result, dataset = collected
        offline = IPSEstimator().estimate(random_policy(), dataset).value
        online = self._online(random_policy())
        assert offline == pytest.approx(online, rel=0.1)

    def test_send_to_one_breaks_ope(self, collected):
        """Offline says send-to-1 beats random; online it's far worse."""
        _, dataset = collected
        ips = IPSEstimator()
        offline_send = ips.estimate(send_to_policy(0), dataset).value
        offline_random = ips.estimate(random_policy(), dataset).value
        online_send = self._online(send_to_policy(0))
        online_random = self._online(random_policy())
        assert offline_send < offline_random  # the illusion
        assert online_send > 1.3 * online_random  # the reality

    def test_cb_optimization_still_works(self, collected):
        """§5: 'policy optimization can be much easier than policy
        evaluation' — the CB policy genuinely wins online."""
        _, dataset = collected
        cb = train_cb_policy(dataset, n_servers=2)
        online_cb = self._online(cb)
        online_ll = self._online(least_loaded_policy())
        online_random = self._online(random_policy())
        assert online_cb < online_random
        assert online_cb < 1.05 * online_ll  # at least competitive


class TestCachingPipeline:
    """Table 3 in miniature."""

    CAP = 350
    N = 20000

    def _workload(self, seed):
        return BigSmallWorkload(
            n_big=50, n_small=500,
            randomness=RandomSource(seed, _name="wl"),
        )

    def _deploy(self, policy, pool=16, seed=3):
        pool = pool if hasattr(policy, "score") else 0
        sim = CacheSim(self.CAP, policy, sample_size=10, seed=seed,
                       pool_size=pool)
        return sim.run(
            self._workload(seed).requests(self.N), keep_log=False
        ).hit_rate

    @pytest.fixture(scope="class")
    def collected(self):
        sim = CacheSim(self.CAP, random_eviction_policy(), sample_size=10,
                       seed=11)
        return sim.run(self._workload(11).requests(self.N))

    def test_freq_size_beats_everyone(self, collected):
        random_hit = self._deploy(random_eviction_policy())
        lru_hit = self._deploy(lru_policy())
        fs_hit = self._deploy(freq_size_policy())
        assert fs_hit > random_hit + 0.02
        assert fs_hit > lru_hit + 0.02

    def test_greedy_cb_no_better_than_random(self, collected):
        """The long-term-reward failure: CB ≈ random on hit rate."""
        dataset = eviction_dataset_from_log(
            collected.log_lines, sample_size=10
        )
        cb = train_cb_eviction(dataset)
        cb_hit = self._deploy(cb, pool=0)
        fs_hit = self._deploy(freq_size_policy())
        random_hit = self._deploy(random_eviction_policy())
        assert abs(cb_hit - random_hit) < 0.05  # clustered with random
        assert cb_hit < fs_hit  # and clearly below the size-aware policy

    def test_harvested_rewards_are_plausible(self, collected):
        dataset = eviction_dataset_from_log(
            collected.log_lines, sample_size=10
        )
        assert len(dataset) > 500
        rewards = dataset.rewards()
        # A mix of quick re-accesses and never-seen-again caps.
        assert rewards.min() < 100
        assert rewards.max() == 2000.0
