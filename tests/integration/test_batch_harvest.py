"""Batch harvesting end to end: the determinism contract in the flesh.

The ISSUE-level acceptance test: for each of the three scenarios
(machine health, load balancing, cache eviction), harvesting with a
large batch size and harvesting one row at a time (``batch_size=1``,
the "per-row" mode of the batched engine) produce **bit-identical**
logs under the same seeded generator.  Plus: the generic engine's
instrumentation, its legacy per-row reference path, and the columnar
output's round trip into the evaluators.
"""

import numpy as np
import pytest

from repro.cache import (
    BigSmallWorkload,
    CacheSim,
    random_eviction_policy,
    resample_eviction_columns,
)
from repro.core.columns import DatasetColumns
from repro.core.estimators.ips import IPSEstimator
from repro.core.harvest import harvest_columns, harvest_dataset, harvest_rows
from repro.core.policies import EpsilonGreedyPolicy, ConstantPolicy, UniformRandomPolicy
from repro.core.types import ActionSpace
from repro.loadbalance import (
    batch_exploration_columns,
    fig5_servers,
    synthetic_decision_snapshots,
)
from repro.loadbalance.policies import weighted_random_policy
from repro.machinehealth.dataset import (
    build_full_feedback_dataset,
    simulate_exploration,
    simulate_exploration_columns,
)
from repro.obs.metrics import use_metrics
from repro.obs.report import flatten_spans
from repro.obs.tracing import use_tracer
from repro.simsys.random_source import RandomSource


def assert_identical(a: DatasetColumns, b: DatasetColumns) -> None:
    assert a.n == b.n
    assert (a.actions == b.actions).all()
    assert (a.propensities == b.propensities).all()
    assert (a.rewards == b.rewards).all()
    assert (a.timestamps == b.timestamps).all()


def simple_contexts(n, seed=0):
    rng = np.random.default_rng(seed)
    return [{"x": float(v)} for v in rng.normal(size=n)]


class TestGenericEngine:
    def test_batch_sizes_bit_identical(self):
        contexts = simple_contexts(500)

        def reward(indices, actions):
            return (indices % 7 + actions).astype(float)

        policy = UniformRandomPolicy()
        logs = [
            harvest_columns(
                policy,
                contexts,
                reward,
                np.random.default_rng(3),
                eligible=(0, 1, 2),
                batch_size=size,
            )
            for size in (1, 64, 500, 10_000)
        ]
        for other in logs[1:]:
            assert_identical(logs[0], other)

    def test_rewards_see_global_indices(self):
        """reward_fn receives absolute row indices, not batch offsets."""
        contexts = simple_contexts(100)
        columns = harvest_columns(
            ConstantPolicy(0),
            contexts,
            lambda indices, actions: indices.astype(float),
            np.random.default_rng(0),
            eligible=(0, 1),
            batch_size=17,
        )
        assert (columns.rewards == np.arange(100)).all()

    def test_eligibility_from_action_space(self):
        space = ActionSpace(
            3, eligibility=lambda c: [0, 1] if c["x"] > 0 else [2]
        )
        contexts = simple_contexts(200, seed=1)
        columns = harvest_columns(
            UniformRandomPolicy(),
            contexts,
            lambda indices, actions: np.zeros(len(indices)),
            np.random.default_rng(1),
            action_space=space,
            batch_size=64,
        )
        for i, context in enumerate(contexts):
            assert int(columns.actions[i]) in space.actions(context)

    def test_requires_eligibility_or_space(self):
        with pytest.raises(ValueError, match="eligible actions or an action"):
            harvest_columns(
                UniformRandomPolicy(),
                simple_contexts(5),
                lambda i, a: np.zeros(len(i)),
                np.random.default_rng(0),
            )

    def test_instrumentation_counts_rows_and_batches(self):
        contexts = simple_contexts(300)
        with use_tracer() as tracer, use_metrics() as metrics:
            harvest_columns(
                UniformRandomPolicy(),
                contexts,
                lambda i, a: np.zeros(len(i)),
                np.random.default_rng(0),
                eligible=(0, 1),
                batch_size=100,
                scenario="generic",
            )
        assert metrics.value("harvest.rows_generated", scenario="generic") == 300
        histogram = metrics.histogram("harvest.batch_seconds", scenario="generic")
        assert histogram.count == 3
        names = [span["name"] for _, span in flatten_spans(tracer.span_tree())]
        assert names.count("harvest.batched") == 1
        assert names.count("harvest.batch") == 3

    def test_harvest_dataset_matches_columns(self):
        contexts = simple_contexts(120)
        policy = EpsilonGreedyPolicy(ConstantPolicy(1), 0.25)
        kwargs = dict(eligible=(0, 1, 2), batch_size=50)
        dataset = harvest_dataset(
            policy, contexts,
            lambda i, a: a.astype(float),
            np.random.default_rng(2), **kwargs,
        )
        columns = harvest_columns(
            policy, contexts,
            lambda i, a: a.astype(float),
            np.random.default_rng(2), **kwargs,
        )
        assert [i.action for i in dataset] == columns.actions.tolist()
        assert [i.propensity for i in dataset] == columns.propensities.tolist()

    def test_batch_size_zero_selects_legacy_stream(self):
        """batch_size=0 is the Generator.choice reference — a different
        (equally valid) stream, so actions may differ but the log is
        still internally consistent."""
        contexts = simple_contexts(80)
        legacy = harvest_dataset(
            UniformRandomPolicy(),
            contexts,
            lambda i, a: np.zeros(len(i)),
            np.random.default_rng(4),
            eligible=(0, 1, 2),
            batch_size=0,
        )
        assert len(legacy) == 80
        assert all(i.propensity == pytest.approx(1 / 3) for i in legacy)

    def test_harvest_rows_instrumented(self):
        with use_tracer() as tracer, use_metrics() as metrics:
            harvest_rows(
                UniformRandomPolicy(),
                simple_contexts(40),
                lambda i, a: np.zeros(len(i)),
                np.random.default_rng(0),
                eligible=(0, 1),
                scenario="legacy",
            )
        assert metrics.value("harvest.rows_generated", scenario="legacy") == 40
        names = [span["name"] for _, span in flatten_spans(tracer.span_tree())]
        assert "harvest.per_row" in names


class TestMachineHealthBatching:
    @pytest.fixture(scope="class")
    def full(self):
        return build_full_feedback_dataset(n_events=400, seed=7)

    def test_batch_sizes_bit_identical(self, full):
        logs = [
            simulate_exploration_columns(
                full.full, np.random.default_rng(11), batch_size=size
            )
            for size in (1, 97, 4096)
        ]
        for other in logs[1:]:
            assert_identical(logs[0], other)

    def test_rewards_come_from_full_feedback(self, full):
        columns = simulate_exploration_columns(
            full.full, np.random.default_rng(11)
        )
        for row in (0, 57, 399):
            interaction = full.full[row]
            assert columns.rewards[row] == pytest.approx(
                interaction.full_rewards[int(columns.actions[row])]
            )

    def test_dataset_wrapper_matches_columns(self, full):
        dataset = simulate_exploration(full.full, np.random.default_rng(11))
        columns = simulate_exploration_columns(
            full.full, np.random.default_rng(11)
        )
        assert [i.action for i in dataset] == columns.actions.tolist()
        assert [i.reward for i in dataset] == columns.rewards.tolist()

    def test_evaluates_like_per_row_harvest(self, full):
        """The columnar log plugs straight into the estimators."""
        columns = simulate_exploration_columns(
            full.full, np.random.default_rng(11)
        )
        result = IPSEstimator(backend="vectorized").estimate(
            UniformRandomPolicy(), columns.to_dataset()
        )
        assert result.n == 400
        assert np.isfinite(result.value)


class TestLoadBalanceBatching:
    @pytest.fixture(scope="class")
    def snapshots(self):
        return synthetic_decision_snapshots(600, n_servers=2, seed=3)

    def test_batch_sizes_bit_identical(self, snapshots):
        servers = fig5_servers()
        policy = weighted_random_policy([0.7, 0.3])
        logs = [
            batch_exploration_columns(
                policy,
                snapshots,
                servers,
                np.random.default_rng(5),
                batch_size=size,
            )
            for size in (1, 113, 8192)
        ]
        for other in logs[1:]:
            assert_identical(logs[0], other)

    def test_latencies_follow_fig5_law(self, snapshots):
        """Noise off → observed latency is exactly the linear law."""
        from repro.loadbalance.harvest import batch_latency_law

        servers = fig5_servers()
        columns = batch_exploration_columns(
            UniformRandomPolicy(),
            snapshots,
            servers,
            np.random.default_rng(5),
            latency_noise=0.0,
        )
        law = batch_latency_law(snapshots, servers)
        expected = law[np.arange(columns.n), columns.actions]
        assert np.allclose(columns.rewards, np.maximum(expected, 0.001))

    def test_noise_stream_independent_of_batch_size(self, snapshots):
        servers = fig5_servers()
        small = batch_exploration_columns(
            UniformRandomPolicy(), snapshots, servers,
            np.random.default_rng(5), batch_size=7, latency_noise=0.05,
        )
        large = batch_exploration_columns(
            UniformRandomPolicy(), snapshots, servers,
            np.random.default_rng(5), batch_size=600, latency_noise=0.05,
        )
        assert_identical(small, large)


class TestCacheBatching:
    @pytest.fixture(scope="class")
    def log_lines(self):
        workload = BigSmallWorkload(
            n_big=20, n_small=200, randomness=RandomSource(0, _name="wl")
        )
        sim = CacheSim(150, random_eviction_policy(), seed=0)
        result = sim.run(workload.requests(4000), keep_log=True)
        return result.log_lines

    def test_batch_sizes_bit_identical(self, log_lines):
        logs = [
            resample_eviction_columns(
                log_lines,
                random_eviction_policy(),
                np.random.default_rng(9),
                batch_size=size,
            )
            for size in (1, 41, 8192)
        ]
        assert logs[0].n > 50  # the workload actually evicts
        for other in logs[1:]:
            assert_identical(logs[0], other)

    def test_actions_respect_sampled_slots(self, log_lines):
        columns = resample_eviction_columns(
            log_lines,
            random_eviction_policy(),
            np.random.default_rng(9),
            sample_size=5,
        )
        assert (columns.actions < 5).all()
        assert (columns.actions >= 0).all()
        # Eligibility was per-row: each chosen slot was in its row's set.
        chosen_ok = columns.eligible_mask[
            np.arange(columns.n), columns.actions
        ]
        assert chosen_ok.all()

    def test_rewards_capped_and_positive(self, log_lines):
        from repro.cache.harvest import DEFAULT_REWARD_CAP

        columns = resample_eviction_columns(
            log_lines, random_eviction_policy(), np.random.default_rng(9)
        )
        assert (columns.rewards >= 0).all()
        assert (columns.rewards <= DEFAULT_REWARD_CAP).all()
