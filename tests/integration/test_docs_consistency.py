"""Documentation ↔ code consistency.

The docs promise specific files and experiments; these tests keep the
promises from drifting as the code evolves.
"""

import os
import re

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


def read(path: str) -> str:
    with open(os.path.join(REPO_ROOT, path), encoding="utf-8") as f:
        return f.read()


class TestDesignDoc:
    def test_every_referenced_bench_file_exists(self):
        design = read("DESIGN.md")
        for match in re.finditer(r"benchmarks/test_\w+\.py", design):
            assert os.path.exists(
                os.path.join(REPO_ROOT, match.group(0))
            ), f"DESIGN.md references missing {match.group(0)}"

    def test_every_bench_file_is_referenced(self):
        design = read("DESIGN.md")
        bench_dir = os.path.join(REPO_ROOT, "benchmarks")
        for name in os.listdir(bench_dir):
            if name.startswith("test_") and name.endswith(".py"):
                assert f"benchmarks/{name}" in design, (
                    f"{name} missing from DESIGN.md's experiment index"
                )

    def test_paper_identity_check_present(self):
        assert "no title collision" in read("DESIGN.md")


class TestExperimentsDoc:
    def test_every_bench_file_mentioned(self):
        experiments = read("EXPERIMENTS.md")
        bench_dir = os.path.join(REPO_ROOT, "benchmarks")
        for name in os.listdir(bench_dir):
            if name.startswith("test_") and name.endswith(".py"):
                assert name in experiments, (
                    f"{name} has no entry in EXPERIMENTS.md"
                )

    def test_headline_tables_present(self):
        experiments = read("EXPERIMENTS.md")
        for anchor in ("Fig. 1", "Fig. 2", "Fig. 3", "Fig. 4",
                       "Table 2", "Table 3", "Fig. 6",
                       "Known deviations"):
            assert anchor in experiments


class TestReadme:
    def test_every_listed_file_exists(self):
        readme = read("README.md")
        for match in re.finditer(r"`(\w+)\.py`", readme):
            name = match.group(1) + ".py"
            locations = [
                os.path.join(REPO_ROOT, "examples", name),
                os.path.join(REPO_ROOT, "benchmarks", name),
                os.path.join(REPO_ROOT, name),
            ]
            if any(os.path.exists(p) for p in locations):
                continue
            # Only names in tables (examples/benchmark listings) must
            # resolve; prose code fences may name partial modules.
            line = readme[: match.start()].rsplit("\n", 1)[-1]
            if line.strip().startswith("|"):
                pytest.fail(f"README table lists missing file {name}")

    def test_every_example_file_is_listed(self):
        readme = read("README.md")
        examples_dir = os.path.join(REPO_ROOT, "examples")
        for name in os.listdir(examples_dir):
            if name.endswith(".py"):
                assert f"`{name}`" in readme, (
                    f"examples/{name} missing from README's table"
                )

    def test_docs_links_resolve(self):
        readme = read("README.md")
        for match in re.finditer(r"\]\(([\w/.-]+\.md)\)", readme):
            assert os.path.exists(
                os.path.join(REPO_ROOT, match.group(1))
            ), f"README links missing doc {match.group(1)}"


class TestDocsDirectory:
    def test_methodology_covers_all_packages(self):
        methodology = read("docs/methodology.md")
        for package in ("repro.core", "repro.loadbalance", "repro.cache",
                        "repro.machinehealth", "repro.chaos"):
            assert package in methodology

    def test_api_reference_mentions_public_estimators(self):
        api = read("docs/api.md")
        for name in ("IPSEstimator", "SNIPSEstimator",
                     "DoublyRobustEstimator", "SwitchEstimator",
                     "TrajectoryISEstimator"):
            assert name in api
