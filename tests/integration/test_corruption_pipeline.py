"""End-to-end chaos test: corrupted log → quarantine → flagged estimates.

The acceptance path for the reliability layer: a JSONL exploration log
with ≥10% injected corruption (via :class:`repro.chaos.LogCorruptor`)
must evaluate without crashing in quarantine mode, produce a quarantine
report with per-reason counts, and every surviving estimate must carry
reliability diagnostics and a finite value.
"""

import math

import pytest

from repro.chaos.corruption import LogCorruptor
from repro.core.estimators.direct import DirectMethodEstimator
from repro.core.estimators.fallback import FallbackEstimator
from repro.core.estimators.ips import IPSEstimator, SNIPSEstimator
from repro.core.policies import ConstantPolicy, UniformRandomPolicy
from repro.core.types import Dataset

from tests.conftest import make_uniform_dataset

CORRUPTION_RATE = 0.15
N_RECORDS = 1000


@pytest.fixture(scope="module")
def corrupted_log(tmp_path_factory):
    """A realistic exploration log with ≥10% of lines damaged."""
    root = tmp_path_factory.mktemp("chaos")
    clean = root / "clean.jsonl"
    dirty = root / "dirty.jsonl"
    make_uniform_dataset(N_RECORDS, seed=21).save_jsonl(str(clean))
    corruptor = LogCorruptor(rate=CORRUPTION_RATE, seed=8)
    counts = corruptor.corrupt_file(str(clean), str(dirty))
    assert sum(counts.values()) >= 0.10 * N_RECORDS
    return str(dirty), counts


class TestQuarantineSurvivesChaos:
    def test_quarantine_mode_loads_without_crashing(self, corrupted_log):
        path, _ = corrupted_log
        dataset = Dataset.load_jsonl(path, mode="quarantine")
        assert len(dataset) > 0
        assert len(dataset) < N_RECORDS + 50  # damage really was rejected

    def test_quarantine_report_has_per_reason_counts(self, corrupted_log):
        path, injected = corrupted_log
        dataset = Dataset.load_jsonl(path, mode="quarantine")
        quarantine = dataset.quarantine
        assert quarantine.n_rejected > 0
        by_reason = quarantine.counts_by_reason()
        assert by_reason  # at least one reason bucket
        assert sum(by_reason.values()) == quarantine.n_rejected
        # Truncation shows up as unparseable lines, dropped fields as
        # schema defects, propensity damage as propensity defects.
        if injected["truncate"]:
            assert by_reason.get("unparseable", 0) > 0
        if injected["drop_field"]:
            assert by_reason.get("schema", 0) > 0
        if injected["zero_propensity"] or injected["garble_propensity"]:
            assert by_reason.get("propensity", 0) > 0

    def test_strict_mode_refuses_the_same_log(self, corrupted_log):
        path, _ = corrupted_log
        with pytest.raises(ValueError, match="line"):
            Dataset.load_jsonl(path, mode="strict")

    def test_every_surviving_estimate_is_flagged_and_finite(
        self, corrupted_log
    ):
        path, _ = corrupted_log
        dataset = Dataset.load_jsonl(path, mode="quarantine")
        policies = [UniformRandomPolicy(), ConstantPolicy(1)]
        estimators = [
            IPSEstimator(),
            SNIPSEstimator(),
            DirectMethodEstimator(),
            FallbackEstimator(),
        ]
        for policy in policies:
            for estimator in estimators:
                result = estimator.estimate(policy, dataset)
                assert math.isfinite(result.value), (policy.name, result)
                assert result.diagnostics is not None, (
                    policy.name,
                    result.estimator,
                )
                assert result.diagnostics.verdict in (
                    "OK",
                    "WARN",
                    "UNRELIABLE",
                )

    def test_surviving_estimates_close_to_clean_baseline(self, corrupted_log):
        # Quarantining damage should leave the estimate near the value
        # computed from the pristine log — the point of rejecting rather
        # than ingesting garbage.
        path, _ = corrupted_log
        dirty = Dataset.load_jsonl(path, mode="quarantine")
        clean = make_uniform_dataset(N_RECORDS, seed=21)
        policy = ConstantPolicy(1)
        dirty_value = IPSEstimator().estimate(policy, dirty).value
        clean_value = IPSEstimator().estimate(policy, clean).value
        assert dirty_value == pytest.approx(clean_value, abs=0.15)


class TestChunkedBackendSurvivesChaos:
    """Quarantine counts and verdicts must survive chunk-boundary folds.

    The chunked file driver validates while streaming, so a corrupted
    line discovered mid-chunk must land in the same quarantine bucket —
    and leave the same diagnostics verdicts — as the whole-log path,
    regardless of where chunk boundaries fall.
    """

    ESTIMATORS = (
        IPSEstimator,
        SNIPSEstimator,
        DirectMethodEstimator,
        FallbackEstimator,
    )

    def _evaluate_chunked(self, path, chunk_size, workers=1):
        from repro.core.engine import evaluate_jsonl_chunked

        return evaluate_jsonl_chunked(
            path,
            [UniformRandomPolicy(), ConstantPolicy(1)],
            [cls() for cls in self.ESTIMATORS],
            mode="quarantine",
            chunk_size=chunk_size,
            workers=workers,
        )

    @pytest.mark.parametrize("chunk_size", [37, 256])
    def test_quarantine_counts_match_whole_log_path(
        self, corrupted_log, chunk_size
    ):
        path, _ = corrupted_log
        reference = Dataset.load_jsonl(path, mode="quarantine")
        evaluation = self._evaluate_chunked(path, chunk_size)
        assert evaluation.n == len(reference)
        assert (
            evaluation.quarantine.counts_by_reason()
            == reference.quarantine.counts_by_reason()
        )
        assert (
            evaluation.quarantine.n_rejected
            == reference.quarantine.n_rejected
        )

    @pytest.mark.parametrize("chunk_size", [37, 256])
    def test_verdicts_and_values_match_in_memory_evaluation(
        self, corrupted_log, chunk_size
    ):
        path, _ = corrupted_log
        dataset = Dataset.load_jsonl(path, mode="quarantine")
        evaluation = self._evaluate_chunked(path, chunk_size)
        policies = [UniformRandomPolicy(), ConstantPolicy(1)]
        for pi, policy in enumerate(policies):
            for ei, estimator_cls in enumerate(self.ESTIMATORS):
                reference = estimator_cls().estimate(policy, dataset)
                chunked = evaluation.results[pi][ei]
                assert math.isfinite(chunked.value)
                assert chunked.value == pytest.approx(
                    reference.value, rel=1e-8, abs=1e-8
                )
                assert chunked.diagnostics is not None
                assert (
                    chunked.diagnostics.verdict
                    == reference.diagnostics.verdict
                )
                assert (
                    chunked.diagnostics.reasons
                    == reference.diagnostics.reasons
                )

    def test_parallel_folding_preserves_quarantine_and_verdicts(
        self, corrupted_log
    ):
        path, _ = corrupted_log
        serial = self._evaluate_chunked(path, chunk_size=64, workers=1)
        parallel = self._evaluate_chunked(path, chunk_size=64, workers=3)
        assert (
            serial.quarantine.counts_by_reason()
            == parallel.quarantine.counts_by_reason()
        )
        for row_a, row_b in zip(serial.results, parallel.results):
            for a, b in zip(row_a, row_b):
                assert a.value == b.value
                verdict_a = a.diagnostics and a.diagnostics.verdict
                verdict_b = b.diagnostics and b.diagnostics.verdict
                assert verdict_a == verdict_b


class TestCliOnCorruptedLog:
    def test_evaluate_quarantine_mode_end_to_end(
        self, corrupted_log, capsys
    ):
        from repro.__main__ import main

        path, _ = corrupted_log
        code = main(
            [
                "evaluate",
                path,
                "--mode",
                "quarantine",
                "--policy",
                "constant:1",
                "--estimator",
                "auto",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "constant[1]" in captured.out
        assert "rejected" in captured.err  # quarantine summary on stderr

    def test_evaluate_strict_mode_fails_cleanly(self, corrupted_log, capsys):
        from repro.__main__ import main

        path, _ = corrupted_log
        code = main(["evaluate", path])
        captured = capsys.readouterr()
        assert code == 1
        assert "line" in captured.err

    def test_chunked_backend_end_to_end_on_corrupted_log(
        self, corrupted_log, capsys
    ):
        from repro.__main__ import main

        path, _ = corrupted_log
        code = main(
            [
                "evaluate",
                path,
                "--backend",
                "chunked",
                "--chunk-size",
                "128",
                "--mode",
                "quarantine",
                "--policy",
                "constant:1",
                "--estimator",
                "auto",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "backend: chunked" in captured.out
        assert "constant[1]" in captured.out
        assert "rejected" in captured.err  # quarantine summary on stderr
