"""End-to-end chaos test: corrupted log → quarantine → flagged estimates.

The acceptance path for the reliability layer: a JSONL exploration log
with ≥10% injected corruption (via :class:`repro.chaos.LogCorruptor`)
must evaluate without crashing in quarantine mode, produce a quarantine
report with per-reason counts, and every surviving estimate must carry
reliability diagnostics and a finite value.
"""

import math

import pytest

from repro.chaos.corruption import LogCorruptor
from repro.core.estimators.direct import DirectMethodEstimator
from repro.core.estimators.fallback import FallbackEstimator
from repro.core.estimators.ips import IPSEstimator, SNIPSEstimator
from repro.core.policies import ConstantPolicy, UniformRandomPolicy
from repro.core.types import Dataset

from tests.conftest import make_uniform_dataset

CORRUPTION_RATE = 0.15
N_RECORDS = 1000


@pytest.fixture(scope="module")
def corrupted_log(tmp_path_factory):
    """A realistic exploration log with ≥10% of lines damaged."""
    root = tmp_path_factory.mktemp("chaos")
    clean = root / "clean.jsonl"
    dirty = root / "dirty.jsonl"
    make_uniform_dataset(N_RECORDS, seed=21).save_jsonl(str(clean))
    corruptor = LogCorruptor(rate=CORRUPTION_RATE, seed=8)
    counts = corruptor.corrupt_file(str(clean), str(dirty))
    assert sum(counts.values()) >= 0.10 * N_RECORDS
    return str(dirty), counts


class TestQuarantineSurvivesChaos:
    def test_quarantine_mode_loads_without_crashing(self, corrupted_log):
        path, _ = corrupted_log
        dataset = Dataset.load_jsonl(path, mode="quarantine")
        assert len(dataset) > 0
        assert len(dataset) < N_RECORDS + 50  # damage really was rejected

    def test_quarantine_report_has_per_reason_counts(self, corrupted_log):
        path, injected = corrupted_log
        dataset = Dataset.load_jsonl(path, mode="quarantine")
        quarantine = dataset.quarantine
        assert quarantine.n_rejected > 0
        by_reason = quarantine.counts_by_reason()
        assert by_reason  # at least one reason bucket
        assert sum(by_reason.values()) == quarantine.n_rejected
        # Truncation shows up as unparseable lines, dropped fields as
        # schema defects, propensity damage as propensity defects.
        if injected["truncate"]:
            assert by_reason.get("unparseable", 0) > 0
        if injected["drop_field"]:
            assert by_reason.get("schema", 0) > 0
        if injected["zero_propensity"] or injected["garble_propensity"]:
            assert by_reason.get("propensity", 0) > 0

    def test_strict_mode_refuses_the_same_log(self, corrupted_log):
        path, _ = corrupted_log
        with pytest.raises(ValueError, match="line"):
            Dataset.load_jsonl(path, mode="strict")

    def test_every_surviving_estimate_is_flagged_and_finite(
        self, corrupted_log
    ):
        path, _ = corrupted_log
        dataset = Dataset.load_jsonl(path, mode="quarantine")
        policies = [UniformRandomPolicy(), ConstantPolicy(1)]
        estimators = [
            IPSEstimator(),
            SNIPSEstimator(),
            DirectMethodEstimator(),
            FallbackEstimator(),
        ]
        for policy in policies:
            for estimator in estimators:
                result = estimator.estimate(policy, dataset)
                assert math.isfinite(result.value), (policy.name, result)
                assert result.diagnostics is not None, (
                    policy.name,
                    result.estimator,
                )
                assert result.diagnostics.verdict in (
                    "OK",
                    "WARN",
                    "UNRELIABLE",
                )

    def test_surviving_estimates_close_to_clean_baseline(self, corrupted_log):
        # Quarantining damage should leave the estimate near the value
        # computed from the pristine log — the point of rejecting rather
        # than ingesting garbage.
        path, _ = corrupted_log
        dirty = Dataset.load_jsonl(path, mode="quarantine")
        clean = make_uniform_dataset(N_RECORDS, seed=21)
        policy = ConstantPolicy(1)
        dirty_value = IPSEstimator().estimate(policy, dirty).value
        clean_value = IPSEstimator().estimate(policy, clean).value
        assert dirty_value == pytest.approx(clean_value, abs=0.15)


class TestCliOnCorruptedLog:
    def test_evaluate_quarantine_mode_end_to_end(
        self, corrupted_log, capsys
    ):
        from repro.__main__ import main

        path, _ = corrupted_log
        code = main(
            [
                "evaluate",
                path,
                "--mode",
                "quarantine",
                "--policy",
                "constant:1",
                "--estimator",
                "auto",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "constant[1]" in captured.out
        assert "rejected" in captured.err  # quarantine summary on stderr

    def test_evaluate_strict_mode_fails_cleanly(self, corrupted_log, capsys):
        from repro.__main__ import main

        path, _ = corrupted_log
        code = main(["evaluate", path])
        captured = capsys.readouterr()
        assert code == 1
        assert "line" in captured.err
