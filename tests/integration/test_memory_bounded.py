"""Out-of-core acceptance: chunked evaluation under a hard memory cap.

The chunked backend's reason to exist is logs that don't fit in
memory.  This suite proves it the blunt way: evaluate a 500k-row JSONL
log in a subprocess whose *address space* is capped with ``RLIMIT_AS``
at a level the whole-log (vectorized) path demonstrably cannot satisfy
— the same policy/estimator run MemoryErrors there — and check the
chunked run completes and prints the same estimates as an uncapped
vectorized run.

Sizing (measured on CPython 3.11 / NumPy baseline ≈150 MB of VA):
loading 500k interactions as Python objects needs >450 MB of address
space, while the chunked path folds 8192-row chunks and stays under
180 MB.  The 384 MB cap splits those with margin on both sides.

``REPRO_MEMORY_ROWS`` scales the log down for quick local iterations;
CI runs the full default (see ``.github/workflows/ci.yml``,
``memory-smoke`` job).
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

pytestmark = pytest.mark.skipif(
    not sys.platform.startswith("linux"),
    reason="RLIMIT_AS semantics are only dependable on Linux",
)

N_ROWS = int(os.environ.get("REPRO_MEMORY_ROWS", "500000"))
CAP_BYTES = 384 * 2**20
SRC = str(Path(__file__).resolve().parents[2] / "src")

EVALUATE_ARGS = [
    "--policy", "constant:1",
    "--policy", "uniform",
    "--estimator", "ips",
]


@pytest.fixture(scope="module")
def big_log(tmp_path_factory):
    """A 500k-row exploration log, written without building a Dataset."""
    import json

    path = tmp_path_factory.mktemp("outofcore") / "big.jsonl"
    rng = np.random.default_rng(17)
    propensities = (0.5, 0.3, 0.2)
    with open(path, "w", encoding="utf-8") as handle:
        for i in range(N_ROWS):
            action = int(rng.integers(3))
            load = round(float(rng.uniform()), 4)
            handle.write(json.dumps({
                "context": {"load": load},
                "action": action,
                "reward": round(load * (action + 1) / 3.0, 4),
                "propensity": propensities[action],
                "timestamp": float(i),
            }) + "\n")
    return str(path)


def run_evaluate(path, backend, cap_bytes=None, extra=()):
    def limit():
        if cap_bytes is not None:
            import resource

            resource.setrlimit(resource.RLIMIT_AS, (cap_bytes, cap_bytes))

    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", "evaluate", path,
         "--backend", backend, *EVALUATE_ARGS, *extra],
        capture_output=True,
        text=True,
        env=env,
        preexec_fn=limit,
        timeout=600,
    )


class TestAddressSpaceCap:
    def test_vectorized_cannot_fit_under_the_cap(self, big_log):
        result = run_evaluate(big_log, "vectorized", cap_bytes=CAP_BYTES)
        assert result.returncode != 0, (
            "the whole-log path fit under the cap — raise N_ROWS or "
            "lower CAP_BYTES, the test no longer separates the backends"
        )
        assert "MemoryError" in result.stderr

    def test_chunked_completes_under_the_same_cap(self, big_log):
        result = run_evaluate(
            big_log, "chunked", cap_bytes=CAP_BYTES,
            extra=("--chunk-size", "8192"),
        )
        assert result.returncode == 0, result.stderr[-2000:]
        assert f"({N_ROWS} interactions" in result.stdout
        assert "constant[1]" in result.stdout

    def test_capped_chunked_matches_uncapped_vectorized(self, big_log):
        chunked = run_evaluate(
            big_log, "chunked", cap_bytes=CAP_BYTES,
            extra=("--chunk-size", "8192"),
        )
        vectorized = run_evaluate(big_log, "vectorized")
        assert chunked.returncode == 0, chunked.stderr[-2000:]
        assert vectorized.returncode == 0, vectorized.stderr[-2000:]
        # Identical tables (4-decimal estimates and stderrs) modulo the
        # banner line naming the backend.
        assert (
            chunked.stdout.splitlines()[1:]
            == vectorized.stdout.splitlines()[1:]
        )

    def test_parallel_chunked_stays_o_chunk_under_the_cap(self, big_log):
        # With workers the parent additionally packs in-flight chunks
        # into shared segments; residency must stay O(workers × chunk),
        # not O(log) — the same 384 MB cap that kills the whole-log
        # path must accommodate parallel folding with segments mapped.
        result = run_evaluate(
            big_log, "chunked", cap_bytes=CAP_BYTES,
            extra=("--chunk-size", "8192", "--workers", "2"),
        )
        assert result.returncode == 0, result.stderr[-2000:]
        assert f"({N_ROWS} interactions" in result.stdout

    def test_parallel_chunked_matches_serial_chunked(self, big_log):
        serial = run_evaluate(
            big_log, "chunked", extra=("--chunk-size", "8192"),
        )
        parallel = run_evaluate(
            big_log, "chunked", cap_bytes=CAP_BYTES,
            extra=("--chunk-size", "8192", "--workers", "2"),
        )
        assert serial.returncode == 0, serial.stderr[-2000:]
        assert parallel.returncode == 0, parallel.stderr[-2000:]
        assert (
            serial.stdout.splitlines()[1:]
            == parallel.stdout.splitlines()[1:]
        )
