"""Seed robustness: the headline shapes must not be seed artifacts.

The benchmarks run on fixed seeds for determinism; these tests rerun
the two headline qualitative results at reduced scale across several
*different* seeds and require the shape to hold for every one.
"""

import numpy as np
import pytest

from repro.cache import (
    BigSmallWorkload,
    CacheSim,
    freq_size_policy,
    random_eviction_policy,
)
from repro.core import IPSEstimator, UniformRandomPolicy
from repro.loadbalance import LoadBalancerSim, Workload, fig5_servers
from repro.loadbalance.harvest import dataset_from_access_log
from repro.loadbalance.policies import random_policy, send_to_policy
from repro.machinehealth import (
    build_full_feedback_dataset,
    default_policy_reward,
    ground_truth_value,
    simulate_exploration,
)
from repro.core.learners.cb import EpsilonGreedyLearner
from repro.simsys.random_source import RandomSource

SEEDS = (101, 202, 303)


class TestTable2ShapeAcrossSeeds:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_send_to_one_illusion_holds(self, seed):
        workload = Workload(10.0, randomness=RandomSource(seed, _name="wl"))
        collection = LoadBalancerSim(
            fig5_servers(), random_policy(), workload, seed=seed
        ).run(6000)
        dataset = dataset_from_access_log(
            collection.access_log, logging_policy=UniformRandomPolicy()
        )
        ips = IPSEstimator()
        offline_send = ips.estimate(send_to_policy(0), dataset).value
        offline_random = ips.estimate(random_policy(), dataset).value

        online_workload = Workload(
            10.0, randomness=RandomSource(seed + 7, _name="wl")
        )
        online_send = LoadBalancerSim(
            fig5_servers(), send_to_policy(0), online_workload, seed=seed + 7
        ).run(5000).mean_latency

        assert offline_send < offline_random  # looks good offline...
        assert online_send > 1.5 * offline_send  # ...blows up online


class TestTable3ShapeAcrossSeeds:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_freq_size_wins(self, seed):
        def deploy(policy, pool):
            workload = BigSmallWorkload(
                randomness=RandomSource(seed, _name="wl")
            )
            sim = CacheSim(700, policy, sample_size=10, seed=seed,
                           pool_size=pool)
            return sim.run(workload.requests(25000), keep_log=False).hit_rate

        random_hit = deploy(random_eviction_policy(), 0)
        fs_hit = deploy(freq_size_policy(), 16)
        assert fs_hit > random_hit + 0.025


class TestMachineHealthShapeAcrossSeeds:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_cb_beats_default(self, seed):
        scenario = build_full_feedback_dataset(
            n_events=3000, n_machines=400, seed=seed
        )
        train, test = scenario.split(0.5)
        rng = np.random.default_rng(seed)
        learner = EpsilonGreedyLearner(10, maximize=False, learning_rate=0.5)
        for _ in range(2):
            learner.observe_all(simulate_exploration(train, rng))
        cb = ground_truth_value(learner.policy(), test)
        assert cb < 0.9 * default_policy_reward(test)
