"""Docstring lint for the public API surface.

Stdlib-only enforcement of the pydocstyle rules that matter for this
repo (the ruff ``D`` configuration in ``pyproject.toml`` mirrors them
for editors and CI runners that have ruff installed):

- every module under ``src/repro`` has a docstring whose first line is
  a complete summary sentence (D100/D400-style);
- every class and function exported via ``__all__`` of the public
  packages (the list in ``tests/test_public_api.py``) is documented;
- every public method/property those classes define is documented,
  where a docstring on the overridden base-class method counts
  (protocol implementations inherit their contract's doc);
- multi-line docstrings separate the summary line from the body with a
  blank line (D205-style).
"""

import ast
import importlib
import inspect
import pathlib

import pytest

from tests.test_public_api import PACKAGES

SRC_ROOT = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

#: Characters a summary line may end with and still read as a sentence.
SENTENCE_ENDINGS = (".", "?", "!", ":")


def iter_source_modules():
    """Yield every ``.py`` file under ``src/repro``."""
    return sorted(SRC_ROOT.rglob("*.py"))


def docstring_problems(doc, *, where):
    """Return style problems with an existing docstring ``doc``."""
    problems = []
    lines = doc.strip().splitlines()
    first = lines[0].strip()
    if not first:
        problems.append(f"{where}: docstring starts with a blank line")
    elif not first.endswith(SENTENCE_ENDINGS):
        problems.append(
            f"{where}: summary line does not end a sentence: {first!r}"
        )
    if len(lines) > 1 and lines[1].strip():
        problems.append(
            f"{where}: missing blank line between summary and body"
        )
    return problems


def public_objects(package_name):
    """Exported classes/functions defined inside ``repro`` itself."""
    package = importlib.import_module(package_name)
    for name in package.__all__:
        obj = getattr(package, name)
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if not getattr(obj, "__module__", "").startswith("repro"):
            continue
        yield f"{package_name}.{name}", obj


def method_doc(cls, method_name):
    """The docstring for ``cls.method_name``, searching the MRO.

    Overrides without a docstring inherit the contract documented on
    the base class — the same resolution ``inspect.getdoc`` applies.
    """
    for base in cls.__mro__:
        member = vars(base).get(method_name)
        if member is None:
            continue
        if isinstance(member, property):
            member = member.fget
        member = getattr(member, "__func__", member)
        doc = getattr(member, "__doc__", None)
        if doc and doc.strip():
            return doc
    return None


@pytest.mark.parametrize(
    "path", iter_source_modules(), ids=lambda p: str(p.relative_to(SRC_ROOT))
)
def test_module_docstring(path):
    doc = ast.get_docstring(ast.parse(path.read_text(encoding="utf-8")))
    assert doc is not None and doc.strip(), f"{path} has no module docstring"
    assert not docstring_problems(doc, where=str(path))


@pytest.mark.parametrize("package_name", PACKAGES)
def test_exported_objects_documented(package_name):
    problems = []
    for qualname, obj in public_objects(package_name):
        doc = inspect.getdoc(obj)
        if not doc or not doc.strip():
            problems.append(f"{qualname}: missing docstring")
        else:
            problems.extend(docstring_problems(doc, where=qualname))
    assert not problems, "\n".join(problems)


@pytest.mark.parametrize("package_name", PACKAGES)
def test_exported_class_methods_documented(package_name):
    problems = []
    seen = set()
    for qualname, obj in public_objects(package_name):
        if not inspect.isclass(obj) or obj in seen:
            continue
        seen.add(obj)
        for method_name, member in vars(obj).items():
            if method_name.startswith("_"):
                continue
            is_callable = inspect.isfunction(member) or isinstance(
                member, (classmethod, staticmethod, property)
            )
            if not is_callable:
                continue
            if method_doc(obj, method_name) is None:
                problems.append(f"{qualname}.{method_name}: missing docstring")
    assert not problems, "\n".join(problems)
