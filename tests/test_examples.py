"""Smoke tests for the runnable examples the docs promise.

Each example doubles as executable documentation (docs/tutorial.md
walks through ``batch_harvest.py`` step by step), so CI runs them for
real — a drifting API breaks these before it breaks a reader.
"""

import subprocess
import sys


def run_example(name: str, timeout: int = 120):
    return subprocess.run(
        [sys.executable, f"examples/{name}"],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestBatchHarvestExample:
    def test_runs_end_to_end(self):
        result = run_example("batch_harvest.py")
        assert result.returncode == 0, result.stderr
        out = result.stdout
        assert "harvested 20000 rows" in out
        assert "per-row mode (batch_size=1) is bit-identical: OK" in out
        assert "uniform-random" in out
        assert "0 quarantined" in out
        assert "manifest schema v" in out
        assert out.rstrip().endswith("done.")


class TestVerifyLedgerExample:
    def test_runs_end_to_end(self):
        result = run_example("verify_ledger.py")
        assert result.returncode == 0, result.stderr
        out = result.stdout
        assert "harvested 300 rows" in out
        assert "clean log verifies: OK" in out
        assert "first bad line 150" in out
        assert "2 intact segment(s)" in out
        assert "rechained 299 survivors (quarantined 1): OK" in out
        assert "middle shard re-derived in isolation: bit-identical" in out
        assert out.rstrip().endswith("done.")


class TestDistributedHarvestExample:
    def test_runs_end_to_end(self):
        result = run_example("distributed_harvest.py")
        assert result.returncode == 0, result.stderr
        out = result.stdout
        assert "harvested 600 rows in 5 shard(s) of 128" in out
        assert "workers=1 vs workers=2: bit-identical" in out
        assert "shard 0 rows [0, 128) prev 00000000" in out
        assert "per-shard verification: OK — 5 shard(s)" in out
        assert "shard 1 re-derived in isolation: bit-identical" in out
        assert out.rstrip().endswith("done.")


class TestOnlineServingExample:
    def test_runs_end_to_end(self):
        result = run_example("online_serving.py")
        assert result.returncode == 0, result.stderr
        out = result.stdout
        assert "serving synthetic on 127.0.0.1" in out
        assert "served 1024 decisions under v1 (incumbent)" in out
        assert "shadowed greedy on 1024 decisions" in out
        assert "gate promoted greedy" in out
        assert "post-swap decisions come from v3 (greedy)" in out
        assert "ledger chain verifies: OK" in out
        assert "offline toolchain re-reads 1040 logged decisions" in out
        assert out.rstrip().endswith("done.")
