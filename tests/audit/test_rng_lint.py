"""Ambient-RNG lint: no hidden global randomness in src/repro.

The last test is the tier-1 gate: the shipped package must scan
clean.  Any new ambient RNG call either gets a derived stream or an
explicit allowlist entry reviewed here.
"""

import os

from repro.audit.lint import scan_file, scan_package, scan_source

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
)
PACKAGE_ROOT = os.path.join(REPO_ROOT, "src", "repro")

# Paths (relative to src/repro, POSIX separators) where ambient RNG is
# accepted.  Keep empty unless a reviewed exception exists.
AMBIENT_RNG_ALLOWLIST = ()


def calls(source):
    return [(f.call, f.line) for f in scan_source(source, "<test>")]


class TestFlagged:
    def test_random_module_calls(self):
        source = (
            "import random\n"
            "x = random.random()\n"
            "random.seed(0)\n"
            "random.shuffle([1, 2])\n"
        )
        assert calls(source) == [
            ("random.random", 2),
            ("random.seed", 3),
            ("random.shuffle", 4),
        ]

    def test_random_import_alias(self):
        source = "import random as rnd\nx = rnd.randint(0, 3)\n"
        assert calls(source) == [("rnd.randint", 2)]

    def test_from_import(self):
        source = "from random import choice\nx = choice([1, 2])\n"
        assert calls(source) == [("choice", 2)]

    def test_from_import_alias(self):
        source = "from random import random as r\nx = r()\n"
        assert calls(source) == [("r", 2)]

    def test_np_random_module_calls(self):
        source = (
            "import numpy as np\n"
            "x = np.random.rand(3)\n"
            "np.random.seed(7)\n"
        )
        assert calls(source) == [
            ("np.random.rand", 2),
            ("np.random.seed", 3),
        ]

    def test_np_random_submodule_import(self):
        source = "import numpy.random as npr\nx = npr.normal()\n"
        assert calls(source) == [("npr.normal", 2)]

    def test_argless_default_rng(self):
        source = "import numpy as np\nrng = np.random.default_rng()\n"
        findings = scan_source(source, "<test>")
        assert len(findings) == 1
        assert "default_rng" in findings[0].call
        assert "seed" in findings[0].reason

    def test_argless_default_rng_from_import(self):
        source = (
            "from numpy.random import default_rng\n"
            "rng = default_rng()\n"
        )
        assert len(scan_source(source, "<test>")) == 1


class TestAllowed:
    def test_seeded_default_rng(self):
        source = "import numpy as np\nrng = np.random.default_rng(42)\n"
        assert scan_source(source, "<test>") == []

    def test_generator_methods(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng(0)\n"
            "x = rng.random(5)\n"
            "y = rng.integers(0, 10)\n"
        )
        assert scan_source(source, "<test>") == []

    def test_random_class_instances(self):
        source = "import random\nr = random.Random(7)\nx = r.random()\n"
        assert scan_source(source, "<test>") == []

    def test_np_random_constructors(self):
        source = (
            "import numpy as np\n"
            "g = np.random.Generator(np.random.PCG64(3))\n"
            "s = np.random.SeedSequence(1)\n"
        )
        assert scan_source(source, "<test>") == []

    def test_unrelated_names(self):
        source = "def random():\n    return 4\nx = random()\n"
        assert scan_source(source, "<test>") == []

    def test_local_attribute_named_random(self):
        source = "x = obj.random()\n"
        assert scan_source(source, "<test>") == []


class TestScanning:
    def test_scan_file(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("import random\nx = random.random()\n")
        findings = scan_file(str(path))
        assert len(findings) == 1
        assert findings[0].path == str(path)

    def test_scan_package_recurses_and_sorts(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "a.py").write_text(
            "import random\nrandom.seed(1)\n"
        )
        (tmp_path / "pkg" / "b.py").write_text("x = 1\n")
        findings = scan_package(str(tmp_path))
        assert [os.path.basename(f.path) for f in findings] == ["a.py"]

    def test_scan_package_allowlist(self, tmp_path):
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "legacy.py").write_text(
            "import random\nrandom.seed(1)\n"
        )
        assert scan_package(str(tmp_path)) != []
        assert scan_package(
            str(tmp_path), allowlist=("sub/legacy.py",)
        ) == []


class TestTier1Gate:
    def test_repro_package_has_no_ambient_rng(self):
        findings = scan_package(
            PACKAGE_ROOT, allowlist=AMBIENT_RNG_ALLOWLIST
        )
        details = "\n".join(
            f"{f.path}:{f.line}: {f.call} — {f.reason}" for f in findings
        )
        assert findings == [], f"ambient RNG in src/repro:\n{details}"
