"""HKDF stream derivation: correctness, injectivity, shard semantics."""

import numpy as np
import pytest

from repro.audit.streams import (
    DEFAULT_SHARD_SIZE,
    StreamKey,
    StreamRegistry,
    StreamRNG,
    derive_child_seed,
    derive_generator,
    derive_key_bytes,
    derive_seed,
    encode_segments,
    hkdf_sha256,
)


class TestHKDF:
    def test_rfc5869_case_1(self):
        # RFC 5869 A.1: basic SHA-256 test vector.
        okm = hkdf_sha256(
            bytes.fromhex("0b" * 22),
            info=bytes.fromhex("f0f1f2f3f4f5f6f7f8f9"),
            salt=bytes.fromhex("000102030405060708090a0b0c"),
            length=42,
        )
        assert okm.hex() == (
            "3cb25f25faacd57a90434f64d0362f2a"
            "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_rfc5869_case_3_empty_salt_and_info(self):
        # RFC 5869 A.3: zero-length salt and info.
        okm = hkdf_sha256(bytes.fromhex("0b" * 22), info=b"", length=42)
        assert okm.hex() == (
            "8da4e775a563c18f715f802a063c5a31"
            "b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8"
        )

    def test_length_is_respected(self):
        for length in (1, 16, 32, 64, 255 * 32):
            assert len(hkdf_sha256(b"k", info=b"i", length=length)) == length

    def test_length_cap(self):
        with pytest.raises(ValueError):
            hkdf_sha256(b"k", info=b"i", length=255 * 32 + 1)


class TestEncodeSegments:
    def test_injective_on_boundaries(self):
        # The classic concatenation ambiguity length prefixes exist for.
        assert encode_segments(("a.b",)) != encode_segments(("a", "b"))
        assert encode_segments(("ab", "c")) != encode_segments(("a", "bc"))

    def test_deterministic(self):
        assert encode_segments(("x", "y")) == encode_segments(("x", "y"))


class TestStreamKey:
    def test_canonical_round_trip(self):
        key = StreamKey("loadbalance", "harvest", "decisions", 8192)
        assert key.canonical() == "loadbalance/harvest/decisions#8192"
        assert StreamKey.parse(key.canonical()) == key

    def test_name_excludes_ordinal(self):
        key = StreamKey("s", "c", "st", 42)
        assert key.name == "s/c/st"

    def test_with_ordinal(self):
        key = StreamKey("s", "c", "st")
        assert key.with_ordinal(100).ordinal == 100
        assert key.ordinal == 0

    def test_rejects_bad_segments(self):
        with pytest.raises(ValueError):
            StreamKey("bad/segment", "c", "st")
        with pytest.raises(ValueError):
            StreamKey("", "c", "st")
        with pytest.raises(ValueError):
            StreamKey("s", "c", "st", -1)

    def test_info_differs_by_every_field(self):
        base = StreamKey("s", "c", "st", 0)
        variants = [
            StreamKey("s2", "c", "st", 0),
            StreamKey("s", "c2", "st", 0),
            StreamKey("s", "c", "st2", 0),
            StreamKey("s", "c", "st", 1),
        ]
        infos = {key.info() for key in [base] + variants}
        assert len(infos) == 5


class TestDerivation:
    def test_deterministic(self):
        key = StreamKey("s", "c", "st", 0)
        assert derive_seed(123, key) == derive_seed(123, key)
        assert derive_key_bytes(1, key) != derive_key_bytes(2, key)

    def test_generators_reproduce(self):
        key = StreamKey("s", "c", "st", 0)
        a = derive_generator(9, key).random(16)
        b = derive_generator(9, key).random(16)
        assert np.array_equal(a, b)

    def test_distinct_keys_distinct_streams(self):
        a = derive_generator(9, StreamKey("s", "c", "one")).random(8)
        b = derive_generator(9, StreamKey("s", "c", "two")).random(8)
        assert not np.array_equal(a, b)

    def test_negative_and_large_master_seeds(self):
        key = StreamKey("s", "c", "st")
        for seed in (-1, 0, 2**127, 2**200):
            assert isinstance(derive_seed(seed, key), int)

    def test_child_seed_is_63_bit(self):
        for name in ("a", "b", "nested.child", "plumless"):
            seed = derive_child_seed(12345, name)
            assert 0 <= seed < 2**63

    def test_child_seed_accepts_any_parent_int(self):
        # The legacy CRC32 mix accepted arbitrarily large (and negative)
        # parents; the HKDF path must too (it reduces to 128 bits like
        # master_key_bytes instead of a range-limited signed encoding).
        for parent in (-1, 0, 2**127, 2**200, -(2**130)):
            seed = derive_child_seed(parent, "x")
            assert 0 <= seed < 2**63
        # Aliasing is exactly mod 2**128 — nothing finer.
        assert derive_child_seed(-5, "x") == derive_child_seed(
            -5 + (1 << 128), "x"
        )

    def test_child_seed_reduction_matches_signed_encoding(self):
        # Two's-complement compatibility: every parent the old signed
        # 16-byte encoding accepted derives the identical child seed.
        from repro.audit.streams import PROTOCOL

        for parent in (-5, 12345, -(2**126), 2**126):
            material = hkdf_sha256(
                int(parent).to_bytes(16, "big", signed=True),
                info=encode_segments((PROTOCOL, "random-source", "x")),
                salt=b"repro.simsys.random_source",
                length=8,
            )
            expected = int.from_bytes(material, "big") % (1 << 63)
            assert derive_child_seed(parent, "x") == expected

    def test_random_source_child_with_huge_seed(self):
        from repro.simsys.random_source import RandomSource

        child = RandomSource(2**200).child("arrivals")
        assert 0 <= child.seed < 2**63


class TestStreamRegistry:
    def test_derivation_log_records_each_key_once(self):
        registry = StreamRegistry(5)
        key = StreamKey("s", "c", "st")
        registry.generator(key)
        registry.generator(key)
        registry.generator(key.with_ordinal(8192))
        log = registry.derivations()
        assert [entry["key"] for entry in log] == [
            "s/c/st#0",
            "s/c/st#8192",
        ]

    def test_manifest_entry_hides_master_seed(self):
        registry = StreamRegistry(1234567)
        entry = registry.manifest_entry()
        assert "1234567" not in str(entry)
        assert len(entry["master_fingerprint"]) == 16

    def test_same_seed_same_fingerprint(self):
        assert (
            StreamRegistry(7).master_fingerprint
            == StreamRegistry(7).master_fingerprint
        )
        assert (
            StreamRegistry(7).master_fingerprint
            != StreamRegistry(8).master_fingerprint
        )


class TestStreamRNG:
    def test_default_shard_size(self):
        rng = StreamRegistry(0).stream("s", "c", "st")
        assert rng.shard_size == DEFAULT_SHARD_SIZE

    def test_rejects_unaligned_start(self):
        registry = StreamRegistry(0)
        with pytest.raises(ValueError):
            StreamRNG(registry, StreamKey("s", "c", "st"),
                      shard_size=8, start_ordinal=3)

    def test_rejects_nonpositive_shard(self):
        registry = StreamRegistry(0)
        with pytest.raises(ValueError):
            StreamRNG(registry, StreamKey("s", "c", "st"), shard_size=0)

    def test_rows_must_move_forward(self):
        rng = StreamRegistry(0).stream("s", "c", "st", shard_size=4)
        rng.generator_for_row(9)
        with pytest.raises(ValueError):
            rng.generator_for_row(3)

    def test_segments_split_at_shard_boundaries(self):
        rng = StreamRegistry(0).stream("s", "c", "st", shard_size=10)
        spans = [(a, b) for a, b, _ in rng.segments(5, 27)]
        assert spans == [(5, 10), (10, 20), (20, 27)]

    def test_segments_with_start_ordinal(self):
        rng = StreamRegistry(0).stream(
            "s", "c", "st", shard_size=10, start_ordinal=20
        )
        # Local rows [0, 15) are ordinals [20, 35): split at ordinal 30.
        spans = [(a, b) for a, b, _ in rng.segments(0, 15)]
        assert spans == [(0, 10), (10, 15)]

    def test_shard_isolation_bit_identical(self):
        # Draws for rows [S, 2S) equal the draws of a fresh stream
        # started at ordinal S — the fork-equivalence primitive.
        S = 8
        full = StreamRegistry(3).stream("s", "c", "st", shard_size=S)
        draws = np.array(
            [full.generator_for_row(row).random() for row in range(3 * S)]
        )
        shard = StreamRegistry(3).stream(
            "s", "c", "st", shard_size=S, start_ordinal=S
        )
        redone = np.array(
            [shard.generator_for_row(row).random() for row in range(S)]
        )
        assert np.array_equal(redone, draws[S: 2 * S])

    def test_manifest_entry(self):
        rng = StreamRegistry(0).stream("s", "c", "st", shard_size=16)
        entry = rng.manifest_entry()
        assert entry["key"] == "s/c/st"
        assert entry["shard_size"] == 16
