"""CLI surface of the audit layer: harvest --ledger and verify-ledger."""

import json

import pytest

from repro.__main__ import main
from repro.obs.manifest import RunManifest


def harvest(tmp_path, capsys, extra=(), rows=300):
    log = tmp_path / "log.jsonl"
    manifest = tmp_path / "manifest.json"
    code = main(
        [
            "harvest", "loadbalance", str(log),
            "--rows", str(rows),
            "--seed", "7",
            "--ledger",
            "--shard-size", "128",
            "--manifest", str(manifest),
        ]
        + list(extra)
    )
    out = capsys.readouterr().out
    return code, log, manifest, out


class TestHarvestLedger:
    def test_prints_head_and_writes_manifest(self, tmp_path, capsys):
        code, log, manifest_path, out = harvest(tmp_path, capsys)
        assert code == 0
        assert "ledger: stream loadbalance/harvest/decisions" in out
        data = RunManifest.load(str(manifest_path)).to_dict()
        assert data["ledger"]["n"] == 300
        assert data["ledger"]["shard_size"] == 128
        assert len(data["ledger"]["head"]) == 64
        assert data["streams"]["master_fingerprint"]
        derivation_keys = [
            d["key"] for d in data["streams"]["derivations"]
        ]
        # 300 rows over shard 128 → shards at ordinals 0, 128, 256.
        assert derivation_keys == [
            "loadbalance/harvest/decisions#0",
            "loadbalance/harvest/decisions#128",
            "loadbalance/harvest/decisions#256",
        ]

    def test_every_record_carries_ledger_metadata(self, tmp_path, capsys):
        _, log, _, _ = harvest(tmp_path, capsys)
        with open(log) as handle:
            for line in handle:
                assert "ledger" in json.loads(line)["metadata"]

    def test_without_ledger_flag_log_is_plain(self, tmp_path, capsys):
        log = tmp_path / "plain.jsonl"
        code = main(
            ["harvest", "loadbalance", str(log), "--rows", "50", "--seed", "7"]
        )
        capsys.readouterr()
        assert code == 0
        with open(log) as handle:
            first = json.loads(handle.readline())
        assert "ledger" not in (first.get("metadata") or {})


class TestVerifyLedger:
    def test_clean_log_verifies_against_manifest(self, tmp_path, capsys):
        _, log, manifest, _ = harvest(tmp_path, capsys)
        code = main(["verify-ledger", str(log), "--manifest", str(manifest)])
        out = capsys.readouterr().out
        assert code == 0
        assert "ledger: OK" in out
        assert "300/300 record(s) chained" in out

    def test_expect_head_flag(self, tmp_path, capsys):
        _, log, manifest, _ = harvest(tmp_path, capsys)
        head = RunManifest.load(str(manifest)).to_dict()["ledger"]["head"]
        assert main(["verify-ledger", str(log), "--expect-head", head]) == 0
        capsys.readouterr()
        assert main(["verify-ledger", str(log), "--expect-head", "f" * 64]) == 1
        out = capsys.readouterr().out
        assert "TRUNCATED/MODIFIED" in out

    def test_tamper_is_localized_with_exit_one(self, tmp_path, capsys):
        _, log, manifest, _ = harvest(tmp_path, capsys)
        lines = log.read_text().splitlines()
        record = json.loads(lines[149])
        record["action"] = 1 - record["action"]
        lines[149] = json.dumps(record)
        log.write_text("\n".join(lines) + "\n")
        code = main(
            ["verify-ledger", str(log), "--manifest", str(manifest), "--json"]
        )
        report = json.loads(capsys.readouterr().out)
        assert code == 1
        assert report["ok"] is False
        assert report["first_bad"] == 150
        spans = [
            (s["start_line"], s["stop_line"]) for s in report["segments"]
        ]
        assert (1, 149) in spans
        assert (151, 300) in spans

    def test_truncation_detected(self, tmp_path, capsys):
        _, log, manifest, _ = harvest(tmp_path, capsys)
        lines = log.read_text().splitlines()[:200]
        log.write_text("\n".join(lines) + "\n")
        code = main(["verify-ledger", str(log), "--manifest", str(manifest)])
        out = capsys.readouterr().out
        assert code == 1
        assert "TRUNCATED/MODIFIED" in out

    def test_front_truncation_detected(self, tmp_path, capsys):
        # Dropping the leading lines leaves the head intact; the genesis
        # anchor and the manifest's recorded n must both flag it.
        _, log, manifest, _ = harvest(tmp_path, capsys)
        lines = log.read_text().splitlines()[50:]
        log.write_text("\n".join(lines) + "\n")
        code = main(
            ["verify-ledger", str(log), "--manifest", str(manifest), "--json"]
        )
        report = json.loads(capsys.readouterr().out)
        assert code == 1
        assert report["ok"] is False
        assert report["truncated"] is False  # head itself still matches
        assert report["count_mismatch"] is True
        assert report["expected_n"] == 300 and report["n_ledgered"] == 250
        assert report["gaps"] and "line 1:" in report["gaps"][0]

    def test_plain_log_fails_verification(self, tmp_path, capsys):
        log = tmp_path / "plain.jsonl"
        code = main(
            ["harvest", "loadbalance", str(log), "--rows", "50", "--seed", "7"]
        )
        assert code == 0
        capsys.readouterr()
        assert main(["verify-ledger", str(log)]) == 1
        assert "0/50 record(s) chained" in capsys.readouterr().out

    def test_manifest_without_ledger_section_errors(self, tmp_path, capsys):
        log = tmp_path / "plain.jsonl"
        manifest = tmp_path / "plain_manifest.json"
        code = main(
            ["harvest", "loadbalance", str(log), "--rows", "50", "--seed", "7",
             "--manifest", str(manifest)]
        )
        assert code == 0
        capsys.readouterr()
        code = main(["verify-ledger", str(log), "--manifest", str(manifest)])
        captured = capsys.readouterr()
        assert code == 1
        assert "records no ledger head" in captured.err

    def test_missing_file_errors(self, tmp_path, capsys):
        code = main(["verify-ledger", str(tmp_path / "absent.jsonl")])
        captured = capsys.readouterr()
        assert code == 1
        assert "cannot read" in captured.err


class TestLedgeredLogDownstream:
    def test_evaluate_consumes_ledgered_log(self, tmp_path, capsys):
        _, log, _, _ = harvest(tmp_path, capsys)
        code = main(["evaluate", str(log), "--policy", "constant:0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "constant[0]" in out

    def test_report_shows_ledger_and_streams(self, tmp_path, capsys):
        _, _, manifest, _ = harvest(tmp_path, capsys)
        code = main(["report", str(manifest)])
        out = capsys.readouterr().out
        assert code == 0
        assert "ledger" in out
        assert "rng streams" in out
        assert "master fingerprint" in out

    def test_same_seed_reproduces_head(self, tmp_path, capsys):
        _, _, manifest_a, _ = harvest(tmp_path, capsys)
        (tmp_path / "log.jsonl").unlink()
        _, _, manifest_b, _ = harvest(tmp_path, capsys)
        head_a = RunManifest.load(str(manifest_a)).to_dict()["ledger"]["head"]
        head_b = RunManifest.load(str(manifest_b)).to_dict()["ledger"]["head"]
        assert head_a == head_b
