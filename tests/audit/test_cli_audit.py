"""CLI surface of the audit layer: harvest --ledger and verify-ledger."""

import json

import pytest

from repro.__main__ import main
from repro.obs.manifest import RunManifest


def harvest(tmp_path, capsys, extra=(), rows=300):
    log = tmp_path / "log.jsonl"
    manifest = tmp_path / "manifest.json"
    code = main(
        [
            "harvest", "loadbalance", str(log),
            "--rows", str(rows),
            "--seed", "7",
            "--ledger",
            "--shard-size", "128",
            "--manifest", str(manifest),
        ]
        + list(extra)
    )
    out = capsys.readouterr().out
    return code, log, manifest, out


class TestHarvestLedger:
    def test_prints_head_and_writes_manifest(self, tmp_path, capsys):
        code, log, manifest_path, out = harvest(tmp_path, capsys)
        assert code == 0
        assert "ledger: stream loadbalance/harvest/decisions" in out
        assert "sharded: 3 shard(s) x 128 rows" in out
        data = RunManifest.load(str(manifest_path)).to_dict()
        assert data["ledger"]["n"] == 300
        assert data["ledger"]["shard_size"] == 128
        assert len(data["ledger"]["head"]) == 64
        assert data["streams"]["master_fingerprint"]
        derivation_keys = [
            d["key"] for d in data["streams"]["derivations"]
        ]
        # 300 rows over shard 128 → shards at ordinals 0, 128, 256 —
        # each deriving its decision stream AND its latency-noise shard.
        assert derivation_keys == [
            "loadbalance/harvest/decisions#0",
            "loadbalance/harvest/latency-noise#0",
            "loadbalance/harvest/decisions#128",
            "loadbalance/harvest/latency-noise#128",
            "loadbalance/harvest/decisions#256",
            "loadbalance/harvest/latency-noise#256",
        ]

    def test_manifest_records_shard_map(self, tmp_path, capsys):
        _, _, manifest_path, _ = harvest(tmp_path, capsys)
        ledger = RunManifest.load(str(manifest_path)).to_dict()["ledger"]
        assert ledger["workers"] == 1
        assert ledger["plan"] == {
            "n_rows": 300, "shard_size": 128, "n_shards": 3,
        }
        shards = ledger["shards"]
        assert [s["start"] for s in shards] == [0, 128, 256]
        assert [s["n"] for s in shards] == [128, 128, 44]
        assert shards[0]["prev"] == "0" * 64
        assert shards[-1]["head"] == ledger["head"]
        # Boundary hashes link: each shard's prev is its predecessor's head.
        assert shards[1]["prev"] == shards[0]["head"]
        assert shards[2]["prev"] == shards[1]["head"]

    def test_workers_flag_is_bit_identical(self, tmp_path, capsys):
        _, log_serial, manifest_serial, _ = harvest(tmp_path, capsys)
        serial_bytes = log_serial.read_bytes()
        log_serial.unlink()
        _, log_parallel, manifest_parallel, out = harvest(
            tmp_path, capsys, extra=["--workers", "2"]
        )
        assert "2 worker(s)" in out
        assert log_parallel.read_bytes() == serial_bytes
        heads = [
            RunManifest.load(str(m)).to_dict()["ledger"]["head"]
            for m in (manifest_serial, manifest_parallel)
        ]
        assert heads[0] == heads[1]

    def test_workers_without_ledger_errors(self, tmp_path, capsys):
        code = main(
            ["harvest", "loadbalance", str(tmp_path / "x.jsonl"),
             "--rows", "50", "--workers", "2"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "--workers requires --ledger" in captured.err

    def test_workers_must_be_positive(self, tmp_path, capsys):
        code = main(
            ["harvest", "loadbalance", str(tmp_path / "x.jsonl"),
             "--rows", "50", "--ledger", "--workers", "0"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "--workers must be >= 1" in captured.err

    def test_every_record_carries_ledger_metadata(self, tmp_path, capsys):
        _, log, _, _ = harvest(tmp_path, capsys)
        with open(log) as handle:
            for line in handle:
                assert "ledger" in json.loads(line)["metadata"]

    def test_without_ledger_flag_log_is_plain(self, tmp_path, capsys):
        log = tmp_path / "plain.jsonl"
        code = main(
            ["harvest", "loadbalance", str(log), "--rows", "50", "--seed", "7"]
        )
        capsys.readouterr()
        assert code == 0
        with open(log) as handle:
            first = json.loads(handle.readline())
        assert "ledger" not in (first.get("metadata") or {})


class TestVerifyLedger:
    def test_clean_log_verifies_against_manifest(self, tmp_path, capsys):
        _, log, manifest, _ = harvest(tmp_path, capsys)
        code = main(["verify-ledger", str(log), "--manifest", str(manifest)])
        out = capsys.readouterr().out
        assert code == 0
        assert "sharded ledger: OK — 3 shard(s)" in out
        assert "shard 1 rows [128, 256): OK" in out
        assert "300/300 record(s) chained" in out

    def test_expect_head_flag(self, tmp_path, capsys):
        _, log, manifest, _ = harvest(tmp_path, capsys)
        head = RunManifest.load(str(manifest)).to_dict()["ledger"]["head"]
        assert main(["verify-ledger", str(log), "--expect-head", head]) == 0
        capsys.readouterr()
        assert main(["verify-ledger", str(log), "--expect-head", "f" * 64]) == 1
        out = capsys.readouterr().out
        assert "TRUNCATED/MODIFIED" in out

    def test_tamper_is_localized_with_exit_one(self, tmp_path, capsys):
        _, log, manifest, _ = harvest(tmp_path, capsys)
        lines = log.read_text().splitlines()
        record = json.loads(lines[149])
        record["action"] = 1 - record["action"]
        lines[149] = json.dumps(record)
        log.write_text("\n".join(lines) + "\n")
        code = main(
            ["verify-ledger", str(log), "--manifest", str(manifest), "--json"]
        )
        report = json.loads(capsys.readouterr().out)
        assert code == 1
        assert report["ok"] is False
        assert report["overall"]["first_bad"] == 150
        spans = [
            (s["start_line"], s["stop_line"])
            for s in report["overall"]["segments"]
        ]
        assert (1, 149) in spans
        assert (151, 300) in spans
        # The sharded report pins the tamper to shard 1 (rows 128–256).
        assert [s["ok"] for s in report["shards"]] == [True, False, True]

    def test_truncation_detected(self, tmp_path, capsys):
        _, log, manifest, _ = harvest(tmp_path, capsys)
        lines = log.read_text().splitlines()[:200]
        log.write_text("\n".join(lines) + "\n")
        code = main(["verify-ledger", str(log), "--manifest", str(manifest)])
        out = capsys.readouterr().out
        assert code == 1
        assert "TRUNCATED/MODIFIED" in out

    def test_front_truncation_detected(self, tmp_path, capsys):
        # Dropping the leading lines leaves the head intact; the genesis
        # anchor and the manifest's recorded n must both flag it.
        _, log, manifest, _ = harvest(tmp_path, capsys)
        lines = log.read_text().splitlines()[50:]
        log.write_text("\n".join(lines) + "\n")
        code = main(
            ["verify-ledger", str(log), "--manifest", str(manifest), "--json"]
        )
        report = json.loads(capsys.readouterr().out)
        assert code == 1
        assert report["ok"] is False
        overall = report["overall"]
        assert overall["truncated"] is False  # head itself still matches
        assert overall["count_mismatch"] is True
        assert overall["expected_n"] == 300 and overall["n_ledgered"] == 250
        assert overall["gaps"] and "line 1:" in overall["gaps"][0]
        # The missing prefix is shard 0's problem and nobody else's.
        assert [s["count_mismatch"] for s in report["shards"]] == [
            True, False, False,
        ]

    def test_plain_log_fails_verification(self, tmp_path, capsys):
        log = tmp_path / "plain.jsonl"
        code = main(
            ["harvest", "loadbalance", str(log), "--rows", "50", "--seed", "7"]
        )
        assert code == 0
        capsys.readouterr()
        assert main(["verify-ledger", str(log)]) == 1
        assert "0/50 record(s) chained" in capsys.readouterr().out

    def test_manifest_without_ledger_section_errors(self, tmp_path, capsys):
        log = tmp_path / "plain.jsonl"
        manifest = tmp_path / "plain_manifest.json"
        code = main(
            ["harvest", "loadbalance", str(log), "--rows", "50", "--seed", "7",
             "--manifest", str(manifest)]
        )
        assert code == 0
        capsys.readouterr()
        code = main(["verify-ledger", str(log), "--manifest", str(manifest)])
        captured = capsys.readouterr()
        assert code == 1
        assert "records no ledger head" in captured.err

    def test_missing_file_errors(self, tmp_path, capsys):
        code = main(["verify-ledger", str(tmp_path / "absent.jsonl")])
        captured = capsys.readouterr()
        assert code == 1
        assert "cannot read" in captured.err


class TestLedgeredLogDownstream:
    def test_evaluate_consumes_ledgered_log(self, tmp_path, capsys):
        _, log, _, _ = harvest(tmp_path, capsys)
        code = main(["evaluate", str(log), "--policy", "constant:0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "constant[0]" in out

    def test_report_shows_ledger_and_streams(self, tmp_path, capsys):
        _, _, manifest, _ = harvest(tmp_path, capsys)
        code = main(["report", str(manifest)])
        out = capsys.readouterr().out
        assert code == 0
        assert "ledger" in out
        assert "rng streams" in out
        assert "master fingerprint" in out

    def test_same_seed_reproduces_head(self, tmp_path, capsys):
        _, _, manifest_a, _ = harvest(tmp_path, capsys)
        (tmp_path / "log.jsonl").unlink()
        _, _, manifest_b, _ = harvest(tmp_path, capsys)
        head_a = RunManifest.load(str(manifest_a)).to_dict()["ledger"]["head"]
        head_b = RunManifest.load(str(manifest_b)).to_dict()["ledger"]["head"]
        assert head_a == head_b
