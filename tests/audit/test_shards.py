"""Shard planning, digest re-chaining, splicing, sharded verification."""

import numpy as np
import pytest

from repro.audit.ledger import GENESIS, DecisionLedger, context_digest
from repro.audit.shards import (
    ShardPlan,
    ShardSpec,
    SpliceError,
    chain_digests,
    splice_payloads,
    verify_sharded_records,
)

STREAM = "demo/harvest/decisions"
S = 16  # shard size for these tests


def serial_ledger(n, stream=STREAM):
    """A serially-sealed reference chain plus its raw decision columns."""
    contexts = [{"x": float(i), "y": i * 0.25} for i in range(n)]
    actions = [i % 3 for i in range(n)]
    propensities = [0.05 + 0.09 * (i % 10) for i in range(n)]
    ledger = DecisionLedger(stream, shard_size=S)
    for context, action, propensity in zip(contexts, actions, propensities):
        ledger.append(context, action, propensity)
    return ledger, contexts, actions, propensities


def worker_payloads(plan, contexts, actions, propensities, stream=STREAM):
    """What shard workers ship: provisionally genesis-anchored payloads."""
    payloads = []
    for spec in plan:
        shas = [context_digest(c) for c in contexts[spec.start : spec.stop]]
        payloads.append(
            {
                "start": spec.start,
                "n": spec.n,
                "actions": actions[spec.start : spec.stop],
                "propensities": propensities[spec.start : spec.stop],
                "context_shas": shas,
                "head": chain_digests(
                    stream,
                    shas,
                    actions[spec.start : spec.stop],
                    propensities[spec.start : spec.stop],
                    start_ordinal=spec.start,
                ),
            }
        )
    return payloads


def records_of(ledger, contexts):
    entries = ledger.entries()
    return [
        (
            i + 1,
            {
                "context": contexts[i],
                "action": entry.action,
                "reward": 1.0,
                "propensity": entry.propensity,
                "metadata": {"ledger": entry.to_metadata()},
            },
        )
        for i, entry in enumerate(entries)
    ]


class TestShardPlan:
    def test_partitions_exactly(self):
        plan = ShardPlan(40, S)
        assert len(plan) == 3
        assert [(s.start, s.stop) for s in plan] == [(0, 16), (16, 32), (32, 40)]
        assert sum(s.n for s in plan) == 40

    def test_aligned_rows(self):
        plan = ShardPlan(2 * S, S)
        assert [(s.start, s.stop) for s in plan] == [(0, S), (S, 2 * S)]

    def test_empty_plan(self):
        assert len(ShardPlan(0, S)) == 0

    def test_single_shard_when_rows_fit(self):
        plan = ShardPlan(5, S)
        assert len(plan) == 1
        assert plan[0] == ShardSpec(index=0, start=0, stop=5)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            ShardPlan(-1, S)
        with pytest.raises(ValueError):
            ShardPlan(10, 0)

    def test_to_dict(self):
        assert ShardPlan(40, S).to_dict() == {
            "n_rows": 40,
            "shard_size": S,
            "n_shards": 3,
        }


class TestChainDigests:
    def test_matches_ledger_head(self):
        ledger, contexts, actions, propensities = serial_ledger(10)
        head = chain_digests(
            STREAM,
            [context_digest(c) for c in contexts],
            actions,
            propensities,
        )
        assert head == ledger.head

    def test_any_field_changes_head(self):
        _, contexts, actions, propensities = serial_ledger(6)
        shas = [context_digest(c) for c in contexts]
        reference = chain_digests(STREAM, shas, actions, propensities)
        tampered_action = list(actions)
        tampered_action[3] = (tampered_action[3] + 1) % 3
        assert chain_digests(STREAM, shas, tampered_action, propensities) != reference
        tampered_propensity = list(propensities)
        tampered_propensity[0] += 1e-9
        assert (
            chain_digests(STREAM, shas, actions, tampered_propensity) != reference
        )
        assert (
            chain_digests(STREAM, shas, actions, propensities, start_ordinal=1)
            != reference
        )

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length mismatch"):
            chain_digests(STREAM, ["a" * 32], [0, 1], [0.5, 0.5])


class TestSplicePayloads:
    def test_splice_is_bit_identical_to_serial(self):
        ledger, contexts, actions, propensities = serial_ledger(40)
        plan = ShardPlan(40, S)
        payloads = worker_payloads(plan, contexts, actions, propensities)
        spliced, shard_map = splice_payloads(STREAM, payloads, shard_size=S)
        assert spliced.head == ledger.head
        assert spliced.entries() == ledger.entries()
        assert [m["n"] for m in shard_map] == [16, 16, 8]
        # The shard map records the true boundary hashes of the chain.
        entries = ledger.entries()
        assert shard_map[0]["prev"] == GENESIS
        assert shard_map[1]["prev"] == entries[S - 1].hash
        assert shard_map[-1]["head"] == ledger.head

    def test_non_contiguous_payloads_rejected(self):
        _, contexts, actions, propensities = serial_ledger(40)
        plan = ShardPlan(40, S)
        payloads = worker_payloads(plan, contexts, actions, propensities)
        with pytest.raises(SpliceError, match="contiguous"):
            splice_payloads(STREAM, [payloads[0], payloads[2]])

    def test_records_retries(self):
        _, contexts, actions, propensities = serial_ledger(S)
        payloads = worker_payloads(ShardPlan(S, S), contexts, actions, propensities)
        payloads[0]["retries"] = 2
        _, shard_map = splice_payloads(STREAM, payloads)
        assert shard_map[0]["retries"] == 2


class TestVerifySharded:
    def sharded_log(self, n=40):
        ledger, contexts, actions, propensities = serial_ledger(n)
        plan = ShardPlan(n, S)
        payloads = worker_payloads(plan, contexts, actions, propensities)
        spliced, shard_map = splice_payloads(STREAM, payloads, shard_size=S)
        return records_of(spliced, contexts), shard_map, spliced.head

    def test_clean_log_verifies(self):
        records, shard_map, head = self.sharded_log()
        result = verify_sharded_records(
            records, shard_map, expected_head=head, expected_n=40
        )
        assert result.ok
        assert result.overall.ok
        assert all(e["verification"].ok for e in result.shards)
        assert result.splice_issues == []
        assert "OK" in result.summary_text()

    def test_tamper_pins_to_one_shard(self):
        records, shard_map, head = self.sharded_log()
        line, record = records[20]  # inside shard 1 (rows 16..32)
        record = dict(record, action=(record["action"] + 1) % 3)
        records[20] = (line, record)
        result = verify_sharded_records(
            records, shard_map, expected_head=head, expected_n=40
        )
        assert not result.ok
        per_shard = [e["verification"].ok for e in result.shards]
        assert per_shard == [True, False, True]
        report = result.report()
        assert report["ok"] is False
        assert report["shards"][1]["ok"] is False

    def test_missing_record_is_count_mismatch_in_its_shard(self):
        records, shard_map, head = self.sharded_log()
        del records[35]  # inside shard 2 (rows 32..40)
        result = verify_sharded_records(
            records, shard_map, expected_head=head, expected_n=40
        )
        assert not result.ok
        assert result.shards[0]["verification"].ok
        assert result.shards[1]["verification"].ok
        assert result.shards[2]["verification"].count_mismatch

    def test_broken_shard_map_geometry_reported(self):
        records, shard_map, head = self.sharded_log()
        shard_map[1] = dict(shard_map[1], prev="f" * 64)
        result = verify_sharded_records(
            records, shard_map, expected_head=head, expected_n=40
        )
        assert not result.ok
        assert any("does not match" in issue for issue in result.splice_issues)

    def test_foreign_ordinal_reported(self):
        records, shard_map, head = self.sharded_log()
        line, record = records[0]
        meta = dict(record["metadata"]["ledger"], ordinal=999)
        records[0] = (line, dict(record, metadata={"ledger": meta}))
        result = verify_sharded_records(
            records, shard_map, expected_head=head, expected_n=40
        )
        assert not result.ok
        assert any("outside every manifest shard" in i for i in result.splice_issues)


class TestShardedNormal:
    def test_access_order_and_grid_independent(self):
        from repro.audit.streams import ShardedNormal, StreamKey, StreamRegistry

        key = StreamKey("demo", "harvest", "noise")
        one = ShardedNormal(StreamRegistry(5), key, shard_size=8, scale=0.3)
        two = ShardedNormal(StreamRegistry(5), key, shard_size=8, scale=0.3)
        rows = np.arange(30)
        forward = one.values(rows)
        scattered = np.empty_like(forward)
        order = np.random.default_rng(0).permutation(30)
        scattered[order] = two.values(order)
        np.testing.assert_array_equal(forward, scattered)

    def test_shard_isolation(self):
        from repro.audit.streams import ShardedNormal, StreamKey, StreamRegistry

        key = StreamKey("demo", "harvest", "noise")
        full = ShardedNormal(StreamRegistry(5), key, shard_size=8, scale=0.3)
        registry = StreamRegistry(5)
        shard_only = ShardedNormal(registry, key, shard_size=8, scale=0.3)
        rows = np.arange(8, 16)  # exactly shard 1
        np.testing.assert_array_equal(
            full.values(np.arange(24))[8:16], shard_only.values(rows)
        )
        # Only shard 1's derivation was recorded.
        keys = [d["key"] for d in registry.derivations()]
        assert keys == ["demo/harvest/noise#8"]
