"""Tests for the audit layer: RNG streams, decision ledger, RNG lint."""
