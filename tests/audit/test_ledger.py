"""The decision ledger: chaining, verification, localization, repair."""

import copy
import json

import numpy as np
import pytest

from repro.audit.ledger import (
    GENESIS,
    LEDGER_SCHEMA_VERSION,
    ChainFollower,
    DecisionLedger,
    context_digest,
    entry_hash,
    rechain,
    verify_jsonl,
    verify_records,
)
from repro.core.types import Interaction


def build_ledger(n=10, stream="s/c/st"):
    ledger = DecisionLedger(stream)
    contexts = [{"a": float(i), "b": i * 0.5} for i in range(n)]
    for i, context in enumerate(contexts):
        ledger.append(context, i % 3, 0.1 + 0.08 * (i % 10))
    return ledger, contexts


def records_of(ledger, contexts):
    entries = ledger.entries()
    return [
        (
            i + 1,
            {
                "context": contexts[i],
                "action": entry.action,
                "reward": 1.0,
                "propensity": entry.propensity,
                "metadata": {"ledger": entry.to_metadata()},
            },
        )
        for i, entry in enumerate(entries)
    ]


class TestContextDigest:
    def test_order_invariant(self):
        assert context_digest({"a": 1.0, "b": 2.0}) == context_digest(
            {"b": 2.0, "a": 1.0}
        )

    def test_value_sensitive(self):
        assert context_digest({"a": 1.0}) != context_digest({"a": 1.0 + 1e-12})

    def test_key_boundary_unambiguous(self):
        assert context_digest({"ab": 1.0, "c": 2.0}) != context_digest(
            {"a": 1.0, "bc": 2.0}
        )

    def test_json_round_trip_stable(self):
        context = {"x": 0.1 + 0.2, "y": -3.75e-9}
        loaded = json.loads(json.dumps(context))
        assert context_digest(loaded) == context_digest(context)


class TestEntryHash:
    def test_commits_to_every_field(self):
        base = ("p" * 64, "s/c/st", 3, "c" * 32, 1, 0.25)
        reference = entry_hash(*base)
        variants = [
            ("q" * 64, "s/c/st", 3, "c" * 32, 1, 0.25),
            ("p" * 64, "s/c/s2", 3, "c" * 32, 1, 0.25),
            ("p" * 64, "s/c/st", 4, "c" * 32, 1, 0.25),
            ("p" * 64, "s/c/st", 3, "d" * 32, 1, 0.25),
            ("p" * 64, "s/c/st", 3, "c" * 32, 2, 0.25),
            ("p" * 64, "s/c/st", 3, "c" * 32, 1, 0.26),
        ]
        assert all(entry_hash(*v) != reference for v in variants)

    def test_propensity_bit_exact(self):
        # float.hex() distinguishes values repr might round identically.
        a = entry_hash(GENESIS, "s", 0, "c" * 32, 0, 0.1)
        b = entry_hash(GENESIS, "s", 0, "c" * 32, 0, 0.1 + 1e-18)
        assert a == b  # 0.1 + 1e-18 == 0.1 in float64 — same bits
        c = entry_hash(GENESIS, "s", 0, "c" * 32, 0, np.nextafter(0.1, 1.0))
        assert c != a


class TestDecisionLedger:
    def test_chain_links(self):
        ledger, _ = build_ledger(5)
        entries = ledger.entries()
        assert entries[0].prev == GENESIS
        for prev_entry, entry in zip(entries, entries[1:]):
            assert entry.prev == prev_entry.hash
        assert ledger.head == entries[-1].hash

    def test_append_and_extend_batch_agree(self):
        contexts = [{"x": float(i)} for i in range(20)]
        actions = np.arange(20) % 4
        propensities = np.linspace(0.05, 0.95, 20)
        one = DecisionLedger("s/c/st")
        for i in range(20):
            one.append(contexts[i], int(actions[i]), float(propensities[i]))
        two = DecisionLedger("s/c/st")
        two.extend_batch(contexts[:7], actions[:7], propensities[:7])
        two.extend_batch(contexts[7:], actions[7:], propensities[7:])
        assert one.head == two.head
        assert one.entries() == two.entries()

    def test_extend_batch_is_lazy(self):
        ledger = DecisionLedger("s/c/st")
        ledger.extend_batch(
            [{"x": 1.0}], np.array([0]), np.array([0.5])
        )
        assert len(ledger._entries) == 0  # not sealed yet
        assert len(ledger) == 1  # but counted
        assert ledger.head != GENESIS  # sealing on demand
        assert len(ledger._entries) == 1

    def test_extend_batch_length_mismatch(self):
        ledger = DecisionLedger("s/c/st")
        with pytest.raises(ValueError):
            ledger.extend_batch([{"x": 1.0}], np.array([0, 1]), np.array([0.5]))

    def test_genesis_override_extends_chain(self):
        first, contexts = build_ledger(4)
        second = DecisionLedger("s/c/st", genesis=first.head)
        second.append({"z": 0.0}, 0, 0.5)
        assert second.entries()[0].prev == first.head

    def test_annotate(self):
        ledger, contexts = build_ledger(3)
        interactions = [
            Interaction(context=contexts[i], action=i % 3, reward=1.0,
                        propensity=0.1 + 0.08 * (i % 10))
            for i in range(3)
        ]
        ledger.annotate(interactions)
        for interaction, entry in zip(interactions, ledger.entries()):
            meta = interaction.metadata["ledger"]
            assert meta["hash"] == entry.hash
            assert meta["v"] == LEDGER_SCHEMA_VERSION

    def test_annotate_length_mismatch(self):
        ledger, contexts = build_ledger(3)
        with pytest.raises(ValueError):
            ledger.annotate([])

    def test_manifest_entry(self):
        ledger, _ = build_ledger(5)
        entry = ledger.manifest_entry()
        assert entry["n"] == 5
        assert entry["head"] == ledger.head
        assert entry["stream"] == "s/c/st"

    def test_metadata_round_trips_jsonl(self):
        ledger, contexts = build_ledger(2)
        entry = ledger.entries()[0]
        interaction = Interaction(
            context=contexts[0], action=entry.action, reward=1.0,
            propensity=entry.propensity,
        )
        interaction.metadata["ledger"] = entry.to_metadata()
        reloaded = Interaction.from_dict(
            json.loads(json.dumps(interaction.to_dict()))
        )
        assert reloaded.metadata["ledger"] == entry.to_metadata()


class TestVerification:
    def test_clean_chain_ok(self):
        ledger, contexts = build_ledger(10)
        result = verify_records(
            records_of(ledger, contexts), expected_head=ledger.head
        )
        assert result.ok
        assert result.n_ledgered == 10
        assert len(result.segments) == 1
        assert result.first_bad is None

    def test_empty_or_unledgered_is_not_ok(self):
        result = verify_records([])
        assert not result.ok
        result = verify_records([(1, {"context": {}, "action": 0,
                                      "propensity": 0.5, "reward": 1.0})])
        assert not result.ok
        assert result.n == 1 and result.n_ledgered == 0

    @pytest.mark.parametrize("field,value", [
        ("action", 99),
        ("propensity", 0.123456),
    ])
    def test_tampered_field_localized(self, field, value):
        ledger, contexts = build_ledger(10)
        records = records_of(ledger, contexts)
        records[4][1][field] = value
        result = verify_records(records, expected_head=ledger.head)
        assert not result.ok
        assert result.first_bad == 5
        assert len(result.issues) == 1
        # The intact suffix re-verifies as its own segment.
        assert result.segments[-1]["stop_line"] == 10

    def test_tampered_context_detected(self):
        ledger, contexts = build_ledger(6)
        records = records_of(ledger, contexts)
        records[2][1]["context"] = {"a": 999.0, "b": 1.0}
        result = verify_records(records)
        assert result.first_bad == 3
        assert any("context" in issue.detail for issue in result.issues)

    def test_tampered_metadata_detected(self):
        ledger, contexts = build_ledger(6)
        records = records_of(ledger, contexts)
        meta = dict(records[3][1]["metadata"]["ledger"])
        meta["ordinal"] = 77
        records[3][1]["metadata"] = {"ledger": meta}
        result = verify_records(records)
        assert result.first_bad == 4

    def test_dropped_record_is_gap(self):
        ledger, contexts = build_ledger(10)
        records = records_of(ledger, contexts)
        del records[4]
        result = verify_records(records)
        assert not result.ok
        assert not result.issues  # every surviving record is authentic
        assert len(result.gaps) == 1
        assert result.gaps[0].line == 6

    def test_reordered_records_detected(self):
        ledger, contexts = build_ledger(10)
        records = records_of(ledger, contexts)
        records[3], records[4] = records[4], records[3]
        result = verify_records(records)
        assert not result.ok

    def test_front_truncation_detected(self):
        # Deleting the leading records leaves the head intact, so only
        # the genesis anchor can catch it: the first surviving record's
        # prev no longer matches genesis and must open a gap.
        ledger, contexts = build_ledger(10)
        records = records_of(ledger, contexts)[3:]
        result = verify_records(records, expected_head=ledger.head)
        assert not result.ok
        assert not result.truncated  # the head still matches...
        assert not result.issues  # ...and every survivor is authentic
        assert len(result.gaps) == 1
        assert result.gaps[0].line == 4
        assert "genesis" in result.gaps[0].detail

    def test_shard_verifies_in_isolation_with_genesis_anchor(self):
        # The same suffix is legitimate when explicitly anchored at the
        # shard's recorded prev — that is the fork-equivalence hook.
        ledger, contexts = build_ledger(10)
        entries = ledger.entries()
        records = records_of(ledger, contexts)[3:]
        result = verify_records(
            records, expected_head=ledger.head, genesis=entries[2].hash
        )
        assert result.ok
        assert result.n_ledgered == 7

    def test_missing_context_detected(self):
        ledger, contexts = build_ledger(6)
        records = records_of(ledger, contexts)
        del records[2][1]["context"]
        result = verify_records(records)
        assert not result.ok
        assert result.first_bad == 3
        assert any("context" in issue.detail for issue in result.issues)

    def test_non_mapping_context_detected(self):
        ledger, contexts = build_ledger(6)
        records = records_of(ledger, contexts)
        records[2][1]["context"] = "not-a-mapping"
        result = verify_records(records)
        assert not result.ok
        assert result.first_bad == 3

    def test_expected_n_pins_record_count(self):
        ledger, contexts = build_ledger(10)
        records = records_of(ledger, contexts)
        ok = verify_records(
            records, expected_head=ledger.head, expected_n=10
        )
        assert ok.ok and not ok.count_mismatch
        bad = verify_records(
            records, expected_head=ledger.head, expected_n=12
        )
        assert not bad.ok
        assert bad.count_mismatch
        assert bad.report()["count_mismatch"] is True
        assert "COUNT MISMATCH" in bad.summary_text()

    def test_truncation_via_expected_head(self):
        ledger, contexts = build_ledger(10)
        records = records_of(ledger, contexts)[:7]
        result = verify_records(records, expected_head=ledger.head)
        assert not result.ok
        assert result.truncated
        assert not result.issues and not result.gaps

    def test_verify_jsonl(self, tmp_path):
        ledger, contexts = build_ledger(8)
        path = tmp_path / "log.jsonl"
        with open(path, "w") as handle:
            for _, record in records_of(ledger, contexts):
                handle.write(json.dumps(record) + "\n")
        assert verify_jsonl(str(path), expected_head=ledger.head).ok
        # Garbage line counts as a binding failure at its line number.
        with open(path, "a") as handle:
            handle.write("{not json\n")
        result = verify_jsonl(str(path), expected_head=ledger.head)
        assert not result.ok
        assert result.first_bad == 9

    def test_report_serializable(self):
        ledger, contexts = build_ledger(4)
        result = verify_records(records_of(ledger, contexts))
        json.dumps(result.report())
        assert "OK" in result.summary_text()


class TestChainFollower:
    def test_check_is_pure(self):
        ledger, contexts = build_ledger(3)
        follower = ChainFollower()
        record = records_of(ledger, contexts)[0][1]
        assert follower.check(record) == []
        assert follower.check(record) == []
        assert follower.head == GENESIS

    def test_strict_links_flags_gaps(self):
        ledger, contexts = build_ledger(4)
        records = [record for _, record in records_of(ledger, contexts)]
        follower = ChainFollower(strict_links=True)
        assert follower.check(records[0]) == []
        follower.observe(records[0])
        issues = follower.check(records[2])  # skipped record 1
        assert issues and issues[0][0] == "ledger"

    def test_lenient_links_tolerate_gaps(self):
        ledger, contexts = build_ledger(4)
        records = [record for _, record in records_of(ledger, contexts)]
        follower = ChainFollower(strict_links=False)
        follower.observe(records[0])
        assert follower.check(records[2]) == []
        assert follower.observe(records[2]) is True  # gap tallied
        assert follower.n_gaps == 1

    def test_first_record_must_anchor_at_genesis(self):
        ledger, contexts = build_ledger(3)
        records = [record for _, record in records_of(ledger, contexts)]
        follower = ChainFollower()
        assert follower.observe(records[1]) is True  # front-truncated
        assert follower.n_gaps == 1

    def test_missing_metadata_mid_chain_flagged(self):
        ledger, contexts = build_ledger(2)
        records = [record for _, record in records_of(ledger, contexts)]
        follower = ChainFollower()
        follower.observe(records[0])
        bare = {"context": {}, "action": 0, "propensity": 0.5, "reward": 1.0}
        issues = follower.check(bare)
        assert issues and "no ledger metadata" in issues[0][1]

    def test_unledgered_stream_passes(self):
        follower = ChainFollower()
        bare = {"context": {}, "action": 0, "propensity": 0.5, "reward": 1.0}
        assert follower.check(bare) == []
        assert follower.observe(bare) is False
        assert not follower.engaged


class TestRechain:
    def test_rechain_after_drop_verifies_clean(self):
        ledger, contexts = build_ledger(6)
        interactions = [
            Interaction(context=contexts[i], action=entry.action, reward=1.0,
                        propensity=entry.propensity)
            for i, entry in enumerate(ledger.entries())
        ]
        ledger.annotate(interactions)
        survivors = interactions[:2] + interactions[3:]  # drop one
        fresh = rechain(survivors)
        assert fresh.stream == "s/c/st"
        records = [
            (i + 1, json.loads(json.dumps(interaction.to_dict())))
            for i, interaction in enumerate(survivors)
        ]
        result = verify_records(records, expected_head=fresh.head)
        assert result.ok
        assert len(result.segments) == 1

    def test_rechain_requires_a_stream(self):
        interaction = Interaction(
            context={"x": 1.0}, action=0, reward=1.0, propensity=0.5
        )
        with pytest.raises(ValueError):
            rechain([interaction])
        fresh = rechain([interaction], stream="a/b/c")
        assert fresh.stream == "a/b/c"


class TestLoadJsonlIntegration:
    def make_log(self, tmp_path, n=12):
        from repro.core.types import Dataset

        ledger, contexts = build_ledger(n)
        interactions = [
            Interaction(context=contexts[i], action=entry.action, reward=1.0,
                        propensity=entry.propensity, timestamp=float(i))
            for i, entry in enumerate(ledger.entries())
        ]
        ledger.annotate(interactions)
        dataset = Dataset(interactions)
        path = tmp_path / "log.jsonl"
        dataset.save_jsonl(str(path))
        return path, ledger

    def test_strict_load_clean(self, tmp_path):
        from repro.core.types import Dataset

        path, _ = self.make_log(tmp_path)
        dataset = Dataset.load_jsonl(str(path), mode="strict")
        assert len(dataset) == 12
        assert not dataset.quarantine

    def test_strict_load_rejects_tamper(self, tmp_path):
        from repro.core.types import Dataset

        path, _ = self.make_log(tmp_path)
        lines = path.read_text().splitlines()
        record = json.loads(lines[5])
        record["action"] = (record["action"] + 1) % 3
        lines[5] = json.dumps(record)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="ledger"):
            Dataset.load_jsonl(str(path), mode="strict")

    def test_quarantine_load_localizes_tamper(self, tmp_path):
        from repro.core.types import Dataset

        path, _ = self.make_log(tmp_path)
        lines = path.read_text().splitlines()
        record = json.loads(lines[5])
        record["propensity"] = min(1.0, record["propensity"] + 0.1)
        lines[5] = json.dumps(record)
        path.write_text("\n".join(lines) + "\n")
        dataset = Dataset.load_jsonl(str(path), mode="quarantine")
        assert len(dataset) == 11
        assert dataset.quarantine.counts_by_reason() == {"ledger": 1}

    def test_repair_does_not_resurrect_tampered_records(self, tmp_path):
        # A tampered propensity is also a value violation repair mode
        # would clamp — but the chain check sees the original record.
        from repro.core.types import Dataset

        path, _ = self.make_log(tmp_path)
        lines = path.read_text().splitlines()
        record = json.loads(lines[5])
        record["propensity"] = 0.0
        lines[5] = json.dumps(record)
        path.write_text("\n".join(lines) + "\n")
        dataset = Dataset.load_jsonl(str(path), mode="repair")
        assert len(dataset) == 11
        assert dataset.quarantine.counts_by_reason() == {"ledger": 1}
        assert dataset.quarantine.n_repaired == 0

    def test_verify_ledger_off_skips_chain(self, tmp_path):
        from repro.core.types import Dataset

        path, _ = self.make_log(tmp_path)
        lines = path.read_text().splitlines()
        record = json.loads(lines[5])
        record["action"] = (record["action"] + 1) % 3
        lines[5] = json.dumps(record)
        path.write_text("\n".join(lines) + "\n")
        dataset = Dataset.load_jsonl(
            str(path), mode="quarantine", verify_ledger="off"
        )
        assert len(dataset) == 12

    def test_verify_ledger_require_on_plain_log(self, tmp_path):
        from repro.core.types import Dataset

        path = tmp_path / "plain.jsonl"
        interaction = Interaction(
            context={"x": 1.0}, action=0, reward=1.0, propensity=0.5
        )
        Dataset([interaction]).save_jsonl(str(path))
        Dataset.load_jsonl(str(path))  # auto: fine
        with pytest.raises(ValueError, match="require"):
            Dataset.load_jsonl(str(path), verify_ledger="require")

    def test_bad_verify_ledger_value(self, tmp_path):
        from repro.core.types import Dataset

        path, _ = self.make_log(tmp_path)
        with pytest.raises(ValueError, match="verify_ledger"):
            Dataset.load_jsonl(str(path), verify_ledger="sometimes")
