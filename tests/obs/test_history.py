"""Unit tests for the append-only cross-run telemetry history."""

import json
import os

from repro.obs.history import (
    HISTORY_FILE,
    RunHistory,
    bench_record,
    git_sha,
    manifest_record,
    monotone_regressions,
)


def bench(metrics, cpu_count=1, timestamp=0.0):
    return {
        "kind": "bench",
        "metrics": metrics,
        "cpu_count": cpu_count,
        "timestamp": timestamp,
    }


class TestRunHistory:
    def test_directory_path_appends_runs_jsonl(self, tmp_path):
        history = RunHistory(str(tmp_path))
        assert history.path == str(tmp_path / HISTORY_FILE)

    def test_jsonl_path_used_verbatim(self, tmp_path):
        target = str(tmp_path / "custom.jsonl")
        assert RunHistory(target).path == target

    def test_append_stamps_and_persists(self, tmp_path):
        history = RunHistory(str(tmp_path / "deep" / "nested"))
        stamped = history.append({"kind": "bench", "metrics": {"x": 1.0}})
        assert {"timestamp", "git_sha", "cpu_count"} <= set(stamped)
        assert stamped["cpu_count"] == (os.cpu_count() or 1)
        (line,) = open(history.path, encoding="utf-8").read().splitlines()
        assert json.loads(line) == stamped

    def test_append_preserves_explicit_stamps(self, tmp_path):
        history = RunHistory(str(tmp_path))
        stamped = history.append(bench({"x": 1.0}, cpu_count=64, timestamp=5.0))
        assert stamped["cpu_count"] == 64
        assert stamped["timestamp"] == 5.0

    def test_records_in_append_order(self, tmp_path):
        history = RunHistory(str(tmp_path))
        for value in (1.0, 2.0, 3.0):
            history.append(bench({"x": value}))
        values = [r["metrics"]["x"] for r in history.records()]
        assert values == [1.0, 2.0, 3.0]

    def test_records_filters_by_kind(self, tmp_path):
        history = RunHistory(str(tmp_path))
        history.append(bench({"x": 1.0}))
        history.append({"kind": "manifest", "results": {}})
        assert len(history.records(kind="bench")) == 1
        assert len(history.records(kind="manifest")) == 1
        assert len(history.records()) == 2

    def test_missing_file_reads_empty(self, tmp_path):
        assert RunHistory(str(tmp_path / "nowhere")).records() == []

    def test_corrupt_lines_skipped_not_fatal(self, tmp_path):
        history = RunHistory(str(tmp_path))
        history.append(bench({"x": 1.0}))
        with open(history.path, "a", encoding="utf-8") as handle:
            handle.write("{not json\n")
            handle.write("\n")
            handle.write('"a bare string, not a record"\n')
        history.append(bench({"x": 2.0}))
        values = [r["metrics"]["x"] for r in history.records(kind="bench")]
        assert values == [1.0, 2.0]

    def test_series_orders_and_filters_cpu_count(self, tmp_path):
        history = RunHistory(str(tmp_path))
        history.append(bench({"m": 3.0}, cpu_count=1, timestamp=1.0))
        history.append(bench({"m": 9.0}, cpu_count=8, timestamp=2.0))
        history.append(bench({"m": 2.0}, cpu_count=1, timestamp=3.0))
        history.append(bench({"other": 1.0}, cpu_count=1, timestamp=4.0))
        assert history.series("m", cpu_count=1) == [(1.0, 3.0), (3.0, 2.0)]
        assert history.series("m", cpu_count=8) == [(2.0, 9.0)]
        assert len(history.series("m")) == 3  # no filter: everything


class TestBenchRecord:
    def test_flattens_numeric_leaves_to_dotted_keys(self):
        artifact = {
            "single_policy_ips": {"speedup": 2.9},
            "harvest": {"cache": {"speedup": 13.0}},
        }
        record = bench_record(artifact)
        assert record["kind"] == "bench"
        assert record["metrics"]["single_policy_ips.speedup"] == 2.9
        assert record["metrics"]["harvest.cache.speedup"] == 13.0

    def test_skips_bools_and_non_numeric_leaves(self):
        record = bench_record(
            {"a": {"flag": True, "name": "x", "n": 5, "ratio": 0.5}}
        )
        assert record["metrics"] == {"a.n": 5.0, "a.ratio": 0.5}

    def test_record_is_stamped(self):
        record = bench_record({})
        assert {"timestamp", "git_sha", "cpu_count"} <= set(record)


class TestManifestRecord:
    def test_summarizes_results_health_and_wall(self):
        manifest = {
            "command": "evaluate",
            "results": [
                {"policy": "uniform", "estimator": "ips", "value": 0.5},
                {"policy": "greedy", "estimator": "snips", "value": None},
            ],
            "health": {
                "overall": "WARN",
                "monitors": {"ess": {"level": "WARN", "value": 0.01}},
            },
            "spans": [{"wall_s": 1.5}, {"wall_s": 0.5}],
        }
        record = manifest_record(manifest)
        assert record["kind"] == "manifest"
        assert record["command"] == "evaluate"
        assert record["results"] == {"uniform/ips": 0.5}  # None dropped
        assert record["health"] == {
            "overall": "WARN", "levels": {"ess": "WARN"},
        }
        assert record["wall_s"] == 2.0

    def test_bare_manifest_degrades_gracefully(self):
        record = manifest_record({})
        assert record["results"] == {}
        assert record["health"] == {"overall": None, "levels": {}}
        assert record["wall_s"] is None


class TestMonotoneRegressions:
    def fill(self, tmp_path, values, metric="m", cpu_count=1):
        history = RunHistory(str(tmp_path))
        for i, value in enumerate(values):
            history.append(
                bench({metric: value}, cpu_count=cpu_count, timestamp=float(i))
            )
        return history

    def test_strictly_decreasing_tail_flagged(self, tmp_path):
        history = self.fill(tmp_path, [5.0, 3.0, 2.9, 2.8])
        (drift,) = monotone_regressions(history, ["m"], k=3, cpu_count=1)
        assert drift["metric"] == "m"
        assert drift["values"] == [3.0, 2.9, 2.8]
        assert drift["cpu_count"] == 1
        assert 0 < drift["drop"] < 1

    def test_non_monotone_tail_not_flagged(self, tmp_path):
        history = self.fill(tmp_path, [3.0, 2.8, 2.9])
        assert monotone_regressions(history, ["m"], k=3, cpu_count=1) == []

    def test_flat_values_not_flagged(self, tmp_path):
        history = self.fill(tmp_path, [3.0, 3.0, 3.0])
        assert monotone_regressions(history, ["m"], k=3, cpu_count=1) == []

    def test_too_few_points_not_flagged(self, tmp_path):
        history = self.fill(tmp_path, [3.0, 2.0])
        assert monotone_regressions(history, ["m"], k=3, cpu_count=1) == []

    def test_other_cpu_count_runs_ignored(self, tmp_path):
        # Two decreasing single-core points plus a decreasing 8-core
        # point in between: no cpu_count has three decreasing runs.
        history = RunHistory(str(tmp_path))
        history.append(bench({"m": 3.0}, cpu_count=1, timestamp=1.0))
        history.append(bench({"m": 2.5}, cpu_count=8, timestamp=2.0))
        history.append(bench({"m": 2.0}, cpu_count=1, timestamp=3.0))
        assert monotone_regressions(history, ["m"], k=3, cpu_count=1) == []

    def test_unknown_metric_ignored(self, tmp_path):
        history = self.fill(tmp_path, [3.0, 2.0, 1.0])
        assert monotone_regressions(history, ["ghost"], k=3, cpu_count=1) == []


class TestGitSha:
    def test_inside_this_repo_returns_hex_sha(self):
        sha = git_sha(cwd=os.path.dirname(os.path.abspath(__file__)))
        assert sha == "unknown" or (
            len(sha) == 40 and all(c in "0123456789abcdef" for c in sha)
        )

    def test_outside_a_checkout_returns_unknown(self, tmp_path):
        assert git_sha(cwd=str(tmp_path)) == "unknown"
