"""Instrumentation wired through the pipeline: coverage and neutrality.

Two properties matter: (1) estimates are bit-identical with tracing on
vs off — observation must not perturb the computation; (2) an
instrumented chunked + parallel-bootstrap run produces a span tree
covering validation, every chunk fold, and every bootstrap shard, with
metric totals that reconcile against the run's own counts.
"""

import math

import pytest

from repro.core.bootstrap import BOOTSTRAP_SHARD, bootstrap_interval_from_terms
from repro.core.engine import evaluate_jsonl_chunked
from repro.core.estimators.base import EstimatorResult
from repro.core.estimators.fallback import select_down_ladder
from repro.core.estimators.ips import IPSEstimator, SNIPSEstimator
from repro.core.policies import ConstantPolicy, UniformRandomPolicy
from repro.core.validation import Quarantine
from repro.obs.metrics import use_metrics
from repro.obs.tracing import use_tracer
from repro.obs.report import flatten_spans
from tests.conftest import make_uniform_dataset

BACKENDS = ("scalar", "vectorized", "chunked")


class TestObservationNeutrality:
    """Tracing on vs off changes nothing about the numbers."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("estimator_cls", [IPSEstimator, SNIPSEstimator])
    def test_estimates_bit_identical(self, backend, estimator_cls):
        dataset = make_uniform_dataset(400, seed=5)
        policy = ConstantPolicy(1)
        estimator = estimator_cls(backend=backend)
        plain = estimator.estimate(policy, dataset)
        with use_tracer(), use_metrics():
            traced = estimator.estimate(policy, dataset)
        assert traced.value == plain.value  # bit-identical, not approx
        assert traced.std_error == plain.std_error
        assert traced.n == plain.n
        assert traced.effective_n == plain.effective_n

    def test_chunked_file_run_bit_identical(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        make_uniform_dataset(300, seed=9).save_jsonl(path)
        policies = [UniformRandomPolicy(), ConstantPolicy(0)]
        kwargs = dict(chunk_size=64, workers=1)
        plain = evaluate_jsonl_chunked(
            path, policies, [IPSEstimator()], **kwargs
        )
        with use_tracer(), use_metrics():
            traced = evaluate_jsonl_chunked(
                path, policies, [IPSEstimator()], **kwargs
            )
        for row_plain, row_traced in zip(plain.results, traced.results):
            for a, b in zip(row_plain, row_traced):
                assert a.value == b.value
                assert a.std_error == b.std_error

    def test_bootstrap_interval_bit_identical(self):
        terms = make_uniform_dataset(200, seed=3).rewards()
        plain = bootstrap_interval_from_terms(terms, seed=7, n_boot=100)
        with use_tracer(), use_metrics():
            traced = bootstrap_interval_from_terms(terms, seed=7, n_boot=100)
        assert traced.low == plain.low
        assert traced.high == plain.high


class TestAcceptanceRun:
    """Chunked + parallel bootstrap with full instrumentation on."""

    @pytest.fixture(scope="class")
    def run(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("obsrun")
        path = str(tmp_path / "log.jsonl")
        dataset = make_uniform_dataset(500, seed=21)
        dataset.save_jsonl(path)
        # Append rows validation must quarantine.
        with open(path, "a", encoding="utf-8") as handle:
            for _ in range(3):
                handle.write(
                    '{"context": {"load": 0.5}, "action": 0, '
                    '"reward": 0.4, "propensity": 0.0}\n'
                )
        n_boot = 300
        with use_tracer() as tracer, use_metrics() as metrics:
            evaluation = evaluate_jsonl_chunked(
                path,
                [UniformRandomPolicy(), ConstantPolicy(1)],
                [IPSEstimator()],
                chunk_size=128,
                workers=2,
                mode="quarantine",
                collect_terms=True,
            )
            interval = bootstrap_interval_from_terms(
                evaluation.terms[("uniform-random", "ips")],
                seed=11,
                n_boot=n_boot,
                workers=2,
            )
        return evaluation, interval, tracer, metrics, n_boot

    def _span_counts(self, tracer):
        counts = {}
        for _, span in flatten_spans(tracer.span_tree()):
            counts[span["name"]] = counts.get(span["name"], 0) + 1
        return counts

    def test_span_tree_covers_the_run(self, run):
        evaluation, _interval, tracer, _metrics, n_boot = run
        counts = self._span_counts(tracer)
        assert counts["evaluate.jsonl"] == 1
        assert counts["evaluate.validation"] == 1
        assert counts["evaluate.fold"] == 1
        assert counts["evaluate.finalize"] == 1
        # Every chunk fold and every bootstrap shard landed a span even
        # though both ran across a process pool.
        assert counts["evaluate.chunk"] == evaluation.n_chunks
        expected_shards = math.ceil(n_boot / BOOTSTRAP_SHARD)
        assert counts["bootstrap.shard"] == expected_shards
        assert counts["bootstrap.replicates"] == 1

    def test_worker_spans_are_nested_under_the_fold(self, run):
        _evaluation, _interval, tracer, _metrics, _n_boot = run
        paths = [path for path, _ in flatten_spans(tracer.span_tree())]
        assert any(
            path.endswith("evaluate.fold/evaluate.chunk") for path in paths
        )
        assert any(
            path.endswith("bootstrap.replicates/bootstrap.shard")
            for path in paths
        )

    def test_metrics_reconcile_with_run_counts(self, run):
        evaluation, _interval, _tracer, metrics, n_boot = run
        assert metrics.total("validation.rejected") == (
            evaluation.quarantine.n_rejected
        )
        assert metrics.total("validation.rejected") == 3
        assert metrics.total("engine.rows_ingested") == evaluation.n
        assert metrics.total("engine.chunk_folds") == evaluation.n_chunks
        assert metrics.total("engine.chunk_fold_seconds") == (
            evaluation.n_chunks
        )
        expected_shards = math.ceil(n_boot / BOOTSTRAP_SHARD)
        assert metrics.total("bootstrap.shards") == expected_shards
        assert metrics.total("bootstrap.replicates") == n_boot
        assert metrics.total("estimator.verdicts") == len(
            evaluation.policy_names
        )


class TestMetricMirroring:
    def test_quarantine_mirrors_to_registry(self):
        with use_metrics() as metrics:
            quarantine = Quarantine()
            quarantine.add(1, "propensity", "bad")
            quarantine.add(2, "reward", "bad")
            quarantine.note_repair("reward")
        assert metrics.value(
            "validation.rejected", reason="propensity"
        ) == 1.0
        assert metrics.value("validation.rejected", reason="reward") == 1.0
        assert metrics.total("validation.repaired") == 1.0

    def test_discovery_pass_quarantine_opts_out(self):
        with use_metrics() as metrics:
            quarantine = Quarantine(record_metrics=False)
            quarantine.add(1, "propensity", "bad")
        assert metrics.total("validation.rejected") == 0.0
        assert quarantine.n_rejected == 1  # the report itself still counts

    def test_fallback_downgrade_is_counted_per_run(self):
        def _result(value, estimator):
            return EstimatorResult(
                value=value, std_error=0.1, n=10, effective_n=5,
                estimator=estimator,
            )

        results = [_result(float("nan"), "ips"), _result(0.4, "ips-clipped")]
        with use_metrics() as metrics:
            chosen = select_down_ladder(iter(results), "auto", "policy-x")
        assert chosen.details["degraded"] is True
        assert metrics.total("fallback.downgrades") == 1.0
        assert metrics.value(
            "fallback.downgrades", ladder="auto", served_by="ips-clipped"
        ) == 1.0
        assert metrics.value(
            "fallback.attempts", estimator="ips", accepted="false"
        ) == 1.0
        assert metrics.value(
            "fallback.attempts", estimator="ips-clipped", accepted="true"
        ) == 1.0

    def test_verdicts_counted_identically_across_backends(self):
        dataset = make_uniform_dataset(200, seed=17)
        policy = ConstantPolicy(0)
        totals = {}
        for backend in BACKENDS:
            with use_metrics() as metrics:
                IPSEstimator(backend=backend).estimate(policy, dataset)
            totals[backend] = metrics.total("estimator.verdicts")
        assert totals == {"scalar": 1.0, "vectorized": 1.0, "chunked": 1.0}

    def test_harvest_rows_counted_per_scenario(self):
        import numpy as np

        from repro.machinehealth.dataset import (
            build_full_feedback_dataset,
            simulate_exploration,
        )

        full = build_full_feedback_dataset(
            n_events=60, n_machines=20, seed=0
        )
        with use_metrics() as metrics, use_tracer() as tracer:
            exploration = simulate_exploration(
                full.full, np.random.default_rng(1)
            )
        assert metrics.value(
            "harvest.rows", scenario="machinehealth"
        ) == len(exploration)
        names = [span["name"] for _, span in flatten_spans(tracer.span_tree())]
        assert "harvest.machinehealth" in names
