"""Unit tests for the static HTML dashboard renderer."""

import re
from html.parser import HTMLParser

from repro.obs.dashboard import render_dashboard


class StrictParser(HTMLParser):
    """Fails the test if tags don't nest (void elements excepted)."""

    VOID = {"br", "hr", "img", "input", "link", "meta"}

    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.stack = []

    def handle_starttag(self, tag, attrs):
        if tag not in self.VOID:
            self.stack.append(tag)

    def handle_endtag(self, tag):
        assert self.stack and self.stack[-1] == tag, (
            f"misnested </{tag}>, open stack {self.stack[-5:]}"
        )
        self.stack.pop()


def parse(html):
    parser = StrictParser()
    parser.feed(html)
    parser.close()
    assert parser.stack == [], f"unclosed tags: {parser.stack}"


def manifest(**overrides):
    base = {
        "command": "evaluate",
        "created_unix": 1754600000.0,
        "environment": {"repro_version": "0.9", "python": "3.12.1"},
        "input": {"path": "log.jsonl", "rows": 1000},
        "results": [
            {
                "policy": "uniform",
                "estimator": "ips",
                "value": 0.51,
                "ci_low": 0.48,
                "ci_high": 0.54,
                "verdict": "PASS",
            }
        ],
        "health": {
            "overall": "CRITICAL",
            "monitors": {
                "ess": {"level": "CRITICAL", "value": 0.001},
                "weight_tail": {"level": "OK", "value": 2.0},
            },
            "events": [
                {
                    "monitor": "ess",
                    "level": "CRITICAL",
                    "value": 0.001,
                    "threshold": 0.005,
                    "message": "worst ESS window collapsed",
                    "rows": 4096,
                }
            ],
        },
        "spans": [
            {
                "name": "evaluate",
                "wall_s": 2.0,
                "cpu_s": 1.5,
                "children": [{"name": "bootstrap", "wall_s": 1.0}],
            }
        ],
        "profile": {
            "interval_s": 0.005,
            "samples": 10,
            "spans": {"evaluate": {"engine.py:run:10": 10}},
        },
        "metrics": {
            "rows.processed": {
                "kind": "counter",
                "series": [{"labels": {}, "value": 1000.0}],
            },
            "health.level": {
                "kind": "gauge",
                "series": [{"labels": {"monitor": "ess"}, "value": 2.0}],
            },
        },
        "quarantine": {"accepted": 990, "rejected": 10},
    }
    base.update(overrides)
    return base


def history_records():
    records = []
    for i, value in enumerate((3.0, 2.9, 2.8)):
        records.append(
            {
                "kind": "bench",
                "metrics": {"single_policy_ips.speedup": value},
                "cpu_count": 1,
                "timestamp": 1000.0 + i,
                "git_sha": f"abc{i}",
            }
        )
    records.append(
        {
            "kind": "manifest",
            "command": "evaluate",
            "results": {"uniform/ips": 0.5},
            "health": {"overall": "OK", "levels": {}},
            "wall_s": 2.0,
            "cpu_count": 1,
            "timestamp": 1003.0,
            "git_sha": "abc3",
        }
    )
    return records


class TestRendering:
    def test_valid_well_nested_html(self):
        parse(render_dashboard(manifest(), history=history_records()))

    def test_self_contained_no_scripts_no_external_assets(self):
        html = render_dashboard(manifest(), history=history_records())
        lowered = html.lower()
        assert "<script" not in lowered
        assert "http://" not in lowered
        assert "https://" not in lowered
        assert 'src="' not in lowered.replace('src="data:', "")

    def test_health_verdicts_rendered(self):
        html = render_dashboard(manifest())
        assert "CRITICAL" in html
        assert "ess" in html
        assert "worst ESS window collapsed" in html

    def test_results_spans_profile_metrics_present(self):
        html = render_dashboard(manifest())
        assert "uniform" in html and "ips" in html
        assert "bootstrap" in html
        assert "engine.py:run:10" in html
        assert "rows.processed" in html

    def test_history_renders_sparkline(self):
        html = render_dashboard(manifest(), history=history_records())
        assert "<svg" in html
        assert "single_policy_ips.speedup" in html

    def test_minimal_manifest_renders(self):
        html = render_dashboard({"command": "harvest"})
        parse(html)
        assert "harvest" in html

    def test_custom_title_used(self):
        html = render_dashboard(manifest(), title="nightly #42")
        assert "nightly #42" in html

    def test_hostile_strings_escaped(self):
        hostile = '<script>alert(1)</script>"& <img src=x>'
        m = manifest(
            command=hostile,
            results=[
                {"policy": hostile, "estimator": "ips", "value": 0.5}
            ],
        )
        m["health"]["events"][0]["message"] = hostile
        m["input"] = {"path": hostile, "rows": 1}
        html = render_dashboard(m, title=hostile)
        assert "<script" not in html.lower()
        assert "<img" not in html.lower()
        assert "&lt;script&gt;" in html
        parse(html)

    def test_no_health_section_without_monitors(self):
        m = manifest()
        del m["health"]
        html = render_dashboard(m)
        assert not re.search(r"<h2>[^<]*[Hh]ealth", html)
