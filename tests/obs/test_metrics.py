"""Metrics registry: instruments, labels, exporters, scoping, threads."""

import json
import threading

import pytest

from repro.obs.metrics import (
    NULL_METRICS,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    _escape_label_value,
    get_metrics,
    prometheus_name,
    use_metrics,
)


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("rows").inc()
        registry.counter("rows").inc(4)
        assert registry.value("rows") == 5.0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            MetricsRegistry().counter("rows").inc(-1)

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("workers")
        gauge.set(4)
        gauge.dec()
        gauge.inc(2)
        assert registry.value("workers") == 5.0

    def test_histogram_buckets_are_cumulative(self):
        histogram = Histogram(buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 2.0):
            histogram.observe(value)
        assert histogram.cumulative_counts() == [1, 3, 4]
        snap = histogram.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(3.05)
        assert snap["min"] == 0.05 and snap["max"] == 2.0

    def test_labels_create_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("rejected", reason="propensity").inc(3)
        registry.counter("rejected", reason="reward").inc(2)
        assert registry.value("rejected", reason="propensity") == 3.0
        assert registry.value("rejected", reason="reward") == 2.0
        assert registry.total("rejected") == 5.0

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        with pytest.raises(ValueError, match="is a counter"):
            registry.gauge("x")

    def test_same_series_is_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a", k="v") is registry.counter("a", k="v")


class TestExport:
    def test_snapshot_shape_and_json(self):
        registry = MetricsRegistry()
        registry.counter("folds", backend="chunked").inc(6)
        registry.histogram("latency").observe(0.02)
        snap = registry.snapshot()
        assert snap["folds"]["kind"] == "counter"
        assert snap["folds"]["series"][0] == {
            "labels": {"backend": "chunked"},
            "value": 6.0,
        }
        assert snap["latency"]["series"][0]["histogram"]["count"] == 1
        assert json.loads(registry.to_json()) == snap

    def test_prometheus_names(self):
        assert prometheus_name("validation.rejected") == (
            "repro_validation_rejected"
        )

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("validation.rejected", reason="propensity").inc(4)
        registry.gauge("engine.workers").set(2)
        registry.histogram("fold.seconds", buckets=(0.1,)).observe(0.05)
        text = registry.to_prometheus()
        assert "# TYPE repro_validation_rejected_total counter" in text
        assert (
            'repro_validation_rejected_total{reason="propensity"} 4' in text
        )
        assert "repro_engine_workers 2" in text
        assert 'repro_fold_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_fold_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_fold_seconds_sum 0.05" in text
        assert "repro_fold_seconds_count 1" in text
        assert text.endswith("\n")

    def test_empty_registry_exports_empty(self):
        registry = MetricsRegistry()
        assert registry.to_prometheus() == ""
        assert registry.snapshot() == {}


class TestLabelEscaping:
    """Prometheus exposition-format escaping of label values."""

    def test_backslash_escaped_first(self):
        assert _escape_label_value(r"C:\logs") == r"C:\\logs"

    def test_quote_escaped(self):
        assert _escape_label_value('say "hi"') == r"say \"hi\""

    def test_newline_escaped(self):
        assert _escape_label_value("a\nb") == r"a\nb"

    def test_combined_hostile_value(self):
        hostile = 'path\\to\n"file"'
        assert _escape_label_value(hostile) == r'path\\to\n\"file\"'

    def test_escaping_round_trips(self):
        # Unescaping per the exposition-format rules must recover the
        # original value exactly — the property scrapers depend on.
        def unescape(text):
            out, i = [], 0
            while i < len(text):
                if text[i] == "\\" and i + 1 < len(text):
                    out.append(
                        {"\\": "\\", '"': '"', "n": "\n"}[text[i + 1]]
                    )
                    i += 2
                else:
                    out.append(text[i])
                    i += 1
            return "".join(out)

        for value in (
            "plain",
            'quo"te',
            "back\\slash",
            "new\nline",
            '\\"mix\n\\ed"\\',
            "\\n",  # literal backslash-n must not become a newline
        ):
            assert unescape(_escape_label_value(value)) == value

    def test_hostile_labels_in_exposition_output(self):
        registry = MetricsRegistry()
        registry.counter("files", path='C:\\logs\n"x"').inc()
        text = registry.to_prometheus()
        line = next(
            ln for ln in text.splitlines() if ln.startswith("repro_files")
        )
        assert r'path="C:\\logs\n\"x\""' in line
        assert "\n" not in line  # the raw newline never leaks into a line


class TestThreadSafety:
    """Concurrent mutation must lose no updates (ISSUE 9 satellite)."""

    N_THREADS = 8
    N_OPS = 10_000

    def hammer(self, target):
        threads = [
            threading.Thread(target=target) for _ in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def test_counter_increments_are_exact(self):
        registry = MetricsRegistry()

        def work():
            for _ in range(self.N_OPS):
                registry.counter("hits").inc()

        self.hammer(work)
        assert registry.value("hits") == self.N_THREADS * self.N_OPS

    def test_gauge_inc_dec_balance_out(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")

        def work():
            for _ in range(self.N_OPS):
                gauge.inc(2.0)
                gauge.dec(1.0)

        self.hammer(work)
        assert registry.value("depth") == self.N_THREADS * self.N_OPS

    def test_histogram_counts_are_exact(self):
        registry = MetricsRegistry()

        def work():
            for i in range(self.N_OPS):
                registry.histogram("lat", buckets=(0.5,)).observe(
                    (i % 10) / 10.0
                )

        self.hammer(work)
        snap = registry.snapshot()["lat"]["series"][0]["histogram"]
        assert snap["count"] == self.N_THREADS * self.N_OPS
        # values cycle 0.0..0.9: 6 of every 10 are <= 0.5
        assert snap["buckets"]["0.5"] == self.N_THREADS * self.N_OPS * 6 // 10

    def test_concurrent_series_creation_yields_one_instrument(self):
        registry = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(self.N_THREADS)

        def work():
            barrier.wait()
            seen.append(registry.counter("race", worker="w"))

        self.hammer(work)
        assert len(set(map(id, seen))) == 1

    def test_export_during_mutation_does_not_crash(self):
        registry = MetricsRegistry()
        stop = threading.Event()

        def mutate():
            i = 0
            while not stop.is_set():
                registry.counter("spin", shard=str(i % 4)).inc()
                i += 1

        mutator = threading.Thread(target=mutate)
        mutator.start()
        try:
            for _ in range(200):
                registry.to_prometheus()
                registry.snapshot()
        finally:
            stop.set()
            mutator.join()
        assert registry.total("spin") > 0


class TestNullMetrics:
    def test_default_registry_is_null(self):
        assert get_metrics() is NULL_METRICS
        assert not get_metrics().enabled

    def test_null_instruments_are_shared_and_inert(self):
        counter = NULL_METRICS.counter("a", reason="x")
        histogram = NULL_METRICS.histogram("b")
        assert counter is histogram  # one shared no-op instrument
        counter.inc(10)
        histogram.observe(1.0)
        assert NULL_METRICS.snapshot() == {}
        assert NULL_METRICS.to_prometheus() == ""
        assert NULL_METRICS.total("a") == 0.0


class TestScoping:
    def test_use_metrics_installs_and_restores(self):
        assert isinstance(get_metrics(), NullMetrics)
        with use_metrics() as registry:
            assert get_metrics() is registry
            get_metrics().counter("scoped").inc()
        assert isinstance(get_metrics(), NullMetrics)
        assert registry.value("scoped") == 1.0

    def test_use_metrics_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with use_metrics():
                raise RuntimeError
        assert isinstance(get_metrics(), NullMetrics)
