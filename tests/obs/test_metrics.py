"""Metrics registry: instruments, labels, exporters, scoping."""

import json

import pytest

from repro.obs.metrics import (
    NULL_METRICS,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    get_metrics,
    prometheus_name,
    use_metrics,
)


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("rows").inc()
        registry.counter("rows").inc(4)
        assert registry.value("rows") == 5.0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            MetricsRegistry().counter("rows").inc(-1)

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("workers")
        gauge.set(4)
        gauge.dec()
        gauge.inc(2)
        assert registry.value("workers") == 5.0

    def test_histogram_buckets_are_cumulative(self):
        histogram = Histogram(buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 2.0):
            histogram.observe(value)
        assert histogram.cumulative_counts() == [1, 3, 4]
        snap = histogram.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(3.05)
        assert snap["min"] == 0.05 and snap["max"] == 2.0

    def test_labels_create_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("rejected", reason="propensity").inc(3)
        registry.counter("rejected", reason="reward").inc(2)
        assert registry.value("rejected", reason="propensity") == 3.0
        assert registry.value("rejected", reason="reward") == 2.0
        assert registry.total("rejected") == 5.0

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        with pytest.raises(ValueError, match="is a counter"):
            registry.gauge("x")

    def test_same_series_is_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a", k="v") is registry.counter("a", k="v")


class TestExport:
    def test_snapshot_shape_and_json(self):
        registry = MetricsRegistry()
        registry.counter("folds", backend="chunked").inc(6)
        registry.histogram("latency").observe(0.02)
        snap = registry.snapshot()
        assert snap["folds"]["kind"] == "counter"
        assert snap["folds"]["series"][0] == {
            "labels": {"backend": "chunked"},
            "value": 6.0,
        }
        assert snap["latency"]["series"][0]["histogram"]["count"] == 1
        assert json.loads(registry.to_json()) == snap

    def test_prometheus_names(self):
        assert prometheus_name("validation.rejected") == (
            "repro_validation_rejected"
        )

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("validation.rejected", reason="propensity").inc(4)
        registry.gauge("engine.workers").set(2)
        registry.histogram("fold.seconds", buckets=(0.1,)).observe(0.05)
        text = registry.to_prometheus()
        assert "# TYPE repro_validation_rejected_total counter" in text
        assert (
            'repro_validation_rejected_total{reason="propensity"} 4' in text
        )
        assert "repro_engine_workers 2" in text
        assert 'repro_fold_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_fold_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_fold_seconds_sum 0.05" in text
        assert "repro_fold_seconds_count 1" in text
        assert text.endswith("\n")

    def test_empty_registry_exports_empty(self):
        registry = MetricsRegistry()
        assert registry.to_prometheus() == ""
        assert registry.snapshot() == {}


class TestNullMetrics:
    def test_default_registry_is_null(self):
        assert get_metrics() is NULL_METRICS
        assert not get_metrics().enabled

    def test_null_instruments_are_shared_and_inert(self):
        counter = NULL_METRICS.counter("a", reason="x")
        histogram = NULL_METRICS.histogram("b")
        assert counter is histogram  # one shared no-op instrument
        counter.inc(10)
        histogram.observe(1.0)
        assert NULL_METRICS.snapshot() == {}
        assert NULL_METRICS.to_prometheus() == ""
        assert NULL_METRICS.total("a") == 0.0


class TestScoping:
    def test_use_metrics_installs_and_restores(self):
        assert isinstance(get_metrics(), NullMetrics)
        with use_metrics() as registry:
            assert get_metrics() is registry
            get_metrics().counter("scoped").inc()
        assert isinstance(get_metrics(), NullMetrics)
        assert registry.value("scoped") == 1.0

    def test_use_metrics_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with use_metrics():
                raise RuntimeError
        assert isinstance(get_metrics(), NullMetrics)
