"""Unit tests for the span-attributing sampling profiler."""

import signal
import sys

import pytest

from repro.obs.profiler import (
    DEFAULT_INTERVAL,
    NULL_PROFILER,
    UNSPANNED,
    NullProfiler,
    SpanProfiler,
    get_profiler,
    set_profiler,
    use_profiler,
)
from repro.obs.tracing import Tracer, use_tracer


def current_frame():
    return sys._getframe()


class TestManualSampling:
    """Deterministic path: explicit sample() calls, no timer."""

    def test_sample_with_explicit_span(self):
        profiler = SpanProfiler()
        profiler.sample(current_frame(), span="harvest")
        profiler.sample(current_frame(), span="harvest")
        profiler.sample(current_frame(), span="bootstrap")
        assert profiler.samples == 3
        assert set(profiler.tables) == {"harvest", "bootstrap"}
        (site, count), = profiler.tables["bootstrap"].items()
        assert count == 1
        # file:function:firstlineno — stable across runs, and points
        # at this test file.
        assert site.startswith("test_profiler.py:")

    def test_sample_without_frame_uses_manual_site(self):
        profiler = SpanProfiler()
        profiler.sample(span="x")
        assert profiler.tables["x"] == {"<manual>": 1}

    def test_sample_outside_any_span_lands_in_unspanned(self):
        profiler = SpanProfiler()
        with use_tracer(Tracer()):
            profiler.sample(current_frame())
        assert list(profiler.tables) == [UNSPANNED]

    def test_sample_attributes_to_innermost_open_span(self):
        profiler = SpanProfiler()
        with use_tracer(Tracer()) as tracer:
            with tracer.span("outer"):
                with tracer.span("inner"):
                    profiler.sample(current_frame())
                profiler.sample(current_frame())
        assert set(profiler.tables) == {"outer", "inner"}

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError, match="interval"):
            SpanProfiler(interval=0.0)


class TestMergeAndExport:
    def test_to_dict_round_trip_shape(self):
        profiler = SpanProfiler(interval=0.01)
        profiler.sample(span="a")
        payload = profiler.to_dict()
        assert payload["interval_s"] == 0.01
        assert payload["samples"] == 1
        assert payload["spans"] == {"a": {"<manual>": 1}}
        assert isinstance(payload["supported"], bool)

    def test_absorb_merges_counts(self):
        parent = SpanProfiler()
        parent.sample(span="harvest")
        worker = SpanProfiler()
        worker.sample(span="harvest")
        worker.sample(span="harvest")
        worker.sample(span="reduce")
        parent.absorb(worker.to_dict())
        assert parent.samples == 4
        assert parent.tables["harvest"] == {"<manual>": 3}
        assert parent.tables["reduce"] == {"<manual>": 1}

    def test_absorb_none_and_empty_are_noops(self):
        profiler = SpanProfiler()
        profiler.sample(span="a")
        profiler.absorb(None)
        profiler.absorb({})
        assert profiler.samples == 1

    def test_flame_table_sorted_heaviest_first(self):
        profiler = SpanProfiler(interval=0.005)
        for _ in range(3):
            profiler.sample(span="hot")
        profiler.sample(span="cold")
        rows = profiler.flame_table()
        assert [row["span"] for row in rows] == ["hot", "cold"]
        assert rows[0]["samples"] == 3
        assert rows[0]["seconds"] == pytest.approx(3 * 0.005)
        assert rows[0]["site"] == "<manual>"

    def test_flame_table_top_limits_rows(self):
        profiler = SpanProfiler()
        for span in ("a", "b", "c"):
            profiler.sample(span=span)
        assert len(profiler.flame_table(top=2)) == 2


@pytest.mark.skipif(
    not hasattr(signal, "setitimer"), reason="setitimer unavailable"
)
class TestTimerArming:
    def test_start_stop_restores_previous_handler(self):
        before = signal.getsignal(signal.SIGALRM)
        profiler = SpanProfiler(interval=0.5)
        assert profiler.start() is True
        try:
            assert signal.getsignal(signal.SIGALRM) == profiler._handler
        finally:
            profiler.stop()
        assert signal.getsignal(signal.SIGALRM) == before

    def test_double_start_is_idempotent(self):
        profiler = SpanProfiler(interval=0.5)
        try:
            assert profiler.start() is True
            assert profiler.start() is True
        finally:
            profiler.stop()
        profiler.stop()  # double stop is a no-op too

    def test_timer_actually_samples_busy_loop(self):
        profiler = SpanProfiler(interval=0.001)
        with use_tracer(Tracer()) as tracer, tracer.span("busy"):
            assert profiler.start() is True
            try:
                deadline_total = 0
                while profiler.samples == 0 and deadline_total < 5_000_000:
                    deadline_total += 1
            finally:
                profiler.stop()
        assert profiler.samples >= 1
        assert "busy" in profiler.tables


class TestInstallation:
    def test_default_is_the_null_profiler(self):
        assert get_profiler() is NULL_PROFILER
        assert isinstance(get_profiler(), NullProfiler)
        assert not get_profiler().enabled

    def test_null_profiler_accepts_everything(self):
        null = NullProfiler()
        null.sample(span="x")
        assert null.start() is False
        null.stop()
        null.absorb({"samples": 5, "spans": {"a": {"s": 5}}})
        assert null.to_dict() == {}
        assert null.flame_table() == []
        assert null.samples == 0

    def test_use_profiler_scopes_installation(self):
        assert get_profiler() is NULL_PROFILER
        with use_profiler(arm=False) as profiler:
            assert get_profiler() is profiler
            assert isinstance(profiler, SpanProfiler)
            assert profiler.interval == DEFAULT_INTERVAL
        assert get_profiler() is NULL_PROFILER

    def test_use_profiler_arms_and_disarms(self):
        if not hasattr(signal, "setitimer"):
            pytest.skip("setitimer unavailable")
        before = signal.getsignal(signal.SIGALRM)
        with use_profiler(SpanProfiler(interval=0.5)) as profiler:
            assert profiler._armed
        assert not profiler._armed
        assert signal.getsignal(signal.SIGALRM) == before

    def test_use_profiler_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_profiler(arm=False):
                raise RuntimeError("boom")
        assert get_profiler() is NULL_PROFILER

    def test_set_profiler_none_restores_null(self):
        profiler = SpanProfiler()
        set_profiler(profiler)
        try:
            assert get_profiler() is profiler
        finally:
            set_profiler(None)
        assert get_profiler() is NULL_PROFILER
