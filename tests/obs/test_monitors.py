"""Streaming health monitors: thresholds, transitions, merges, wiring."""

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.obs.monitors import (
    LEVEL_CRITICAL,
    LEVEL_OK,
    LEVEL_WARN,
    EssMonitor,
    LedgerBreakMonitor,
    MonitorSuite,
    NULL_MONITORS,
    PropensityFloorMonitor,
    QuarantineRateMonitor,
    RetryStormMonitor,
    WeightTailMonitor,
    default_monitors,
    get_monitors,
    use_monitors,
)


def evaluate(monitor, state):
    level, value, threshold, message = monitor.evaluate(state)
    return level


class TestEssMonitor:
    def test_uniform_weights_are_ok(self):
        monitor = EssMonitor(window=64)
        state = monitor.init_state()
        monitor.fold_weights(state, np.ones(256))
        assert evaluate(monitor, state) == LEVEL_OK

    def test_one_dominating_weight_goes_critical(self):
        # One weight carries ~all the mass: ESS fraction ~ 1/n.
        monitor = EssMonitor(window=1024)
        state = monitor.init_state()
        weights = np.full(1024, 1e-6)
        weights[0] = 1e6
        monitor.fold_weights(state, weights)
        assert state["windows"] == 1
        assert evaluate(monitor, state) == LEVEL_CRITICAL

    def test_partial_window_below_min_partial_is_ignored(self):
        monitor = EssMonitor(window=4096, min_partial=32)
        state = monitor.init_state()
        weights = np.full(8, 1e-6)
        weights[0] = 1e6
        monitor.fold_weights(state, weights)
        assert evaluate(monitor, state) == LEVEL_OK

    def test_weight_stats_arrive_as_closed_window(self):
        # One weight carrying all the mass over n rows gives ESS
        # fraction ~1/n; n=1000 puts it below the 0.005 critical cut.
        monitor = EssMonitor()
        state = monitor.init_state()
        weights = np.full(1000, 1e-6)
        weights[0] = 1e6
        monitor.fold_weight_stats(
            state, 1000, float(weights.sum()),
            float(np.square(weights).sum()), float(weights.max()),
        )
        assert state["windows"] == 1
        assert evaluate(monitor, state) == LEVEL_CRITICAL

    def test_merge_combines_partials_and_flushes(self):
        # An over-full merged partial closes as ONE window (boundaries
        # follow batch/shard edges, documented in the module).
        monitor = EssMonitor(window=64)
        a, b = monitor.init_state(), monitor.init_state()
        monitor.fold_weights(a, np.ones(40))
        monitor.fold_weights(b, np.ones(40))
        merged = monitor.merge(a, b)
        assert merged["windows"] == 1  # 80 rows >= one 64-row window
        assert merged["n"] == 0

    def test_worst_window_survives_merge(self):
        monitor = EssMonitor(window=256)
        a, b = monitor.init_state(), monitor.init_state()
        bad = np.full(256, 1e-6)  # 1/256 < 0.005: critical window
        bad[0] = 1e6
        monitor.fold_weights(a, bad)
        monitor.fold_weights(b, np.ones(256))
        merged = monitor.merge(b, a)
        assert evaluate(monitor, merged) == LEVEL_CRITICAL


class TestPropensityFloorMonitor:
    def test_healthy_floor(self):
        monitor = PropensityFloorMonitor()
        state = monitor.init_state()
        monitor.fold_propensities(state, np.array([0.5, 0.01, 0.9]))
        assert evaluate(monitor, state) == LEVEL_OK

    def test_below_warn_floor(self):
        monitor = PropensityFloorMonitor()
        state = monitor.init_state()
        monitor.fold_propensities(state, np.array([0.5, 1e-5]))
        assert evaluate(monitor, state) == LEVEL_WARN

    def test_nonpositive_propensity_goes_critical(self):
        monitor = PropensityFloorMonitor()
        state = monitor.init_state()
        monitor.fold_propensities(state, np.array([0.5, 0.0]))
        assert evaluate(monitor, state) == LEVEL_CRITICAL

    def test_merge_keeps_minimum(self):
        monitor = PropensityFloorMonitor()
        a, b = monitor.init_state(), monitor.init_state()
        monitor.fold_propensities(a, np.array([0.5]))
        monitor.fold_propensities(b, np.array([1e-5]))
        merged = monitor.merge(a, b)
        assert merged["min"] == pytest.approx(1e-5)
        assert evaluate(monitor, merged) == LEVEL_WARN


class TestWeightTailMonitor:
    def test_levels(self):
        monitor = WeightTailMonitor()
        state = monitor.init_state()
        monitor.fold_weights(state, np.array([1.0, 50.0]))
        assert evaluate(monitor, state) == LEVEL_OK
        monitor.fold_weights(state, np.array([500.0]))
        assert evaluate(monitor, state) == LEVEL_WARN
        monitor.fold_weights(state, np.array([1e5]))
        assert evaluate(monitor, state) == LEVEL_CRITICAL

    def test_weight_stats_feed_maximum(self):
        monitor = WeightTailMonitor()
        state = monitor.init_state()
        assert monitor.fold_weight_stats(state, 10, 20.0, 40.0, 250.0)
        assert evaluate(monitor, state) == LEVEL_WARN


class TestQuarantineRateMonitor:
    def test_too_few_rows_withholds_judgment(self):
        monitor = QuarantineRateMonitor(min_rows=10)
        state = monitor.init_state()
        monitor.fold_rejected(state, "propensity", 5)
        assert evaluate(monitor, state) == LEVEL_OK

    def test_rate_thresholds(self):
        monitor = QuarantineRateMonitor()
        state = monitor.init_state()
        monitor.fold_rows(state, 980)
        monitor.fold_rejected(state, "propensity", 20)
        assert evaluate(monitor, state) == LEVEL_WARN
        monitor.fold_rejected(state, "propensity", 60)
        assert evaluate(monitor, state) == LEVEL_CRITICAL


class TestLedgerBreakMonitor:
    def test_single_break_is_warn(self):
        monitor = LedgerBreakMonitor()
        state = monitor.init_state()
        monitor.fold_rows(state, 10_000)
        monitor.fold_rejected(state, "ledger", 1)
        assert evaluate(monitor, state) == LEVEL_WARN

    def test_systematic_breakage_is_critical(self):
        monitor = LedgerBreakMonitor()
        state = monitor.init_state()
        monitor.fold_rows(state, 100)
        monitor.fold_rejected(state, "ledger", 50)
        assert evaluate(monitor, state) == LEVEL_CRITICAL

    def test_other_reasons_ignored(self):
        monitor = LedgerBreakMonitor()
        state = monitor.init_state()
        assert not monitor.fold_rejected(state, "propensity", 50)
        assert evaluate(monitor, state) == LEVEL_OK


class TestRetryStormMonitor:
    def test_occasional_retry_is_ok(self):
        monitor = RetryStormMonitor()
        state = monitor.init_state()
        monitor.fold_shards(state, completed=20, retried=1, fallback=0)
        assert evaluate(monitor, state) == LEVEL_OK

    def test_storm_warns_then_goes_critical(self):
        monitor = RetryStormMonitor()
        state = monitor.init_state()
        monitor.fold_shards(state, completed=10, retried=4, fallback=0)
        assert evaluate(monitor, state) == LEVEL_WARN
        monitor.fold_shards(state, completed=0, retried=8, fallback=0)
        assert evaluate(monitor, state) == LEVEL_CRITICAL

    def test_any_fallback_is_critical(self):
        monitor = RetryStormMonitor()
        state = monitor.init_state()
        monitor.fold_shards(state, completed=100, retried=0, fallback=1)
        assert evaluate(monitor, state) == LEVEL_CRITICAL


class TestMonitorSuite:
    def test_default_suite_names_are_unique(self):
        names = [m.name for m in default_monitors()]
        assert len(set(names)) == len(names)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            MonitorSuite([EssMonitor(), EssMonitor()])

    def test_propensities_feed_floor_and_weight_monitors(self):
        suite = MonitorSuite()
        suite.observe_propensities(np.array([0.5, 1e-5]))
        assert suite.level("propensity_floor") == LEVEL_WARN
        assert suite.level("weight_tail") == LEVEL_CRITICAL  # 1/1e-5 = 1e5

    def test_nonpositive_propensities_never_become_weights(self):
        suite = MonitorSuite()
        suite.observe_propensities(np.array([0.5, 0.0]))
        assert suite.level("propensity_floor") == LEVEL_CRITICAL
        assert suite.level("weight_tail") == LEVEL_OK

    def test_transition_emits_event_and_metrics(self):
        registry = MetricsRegistry()
        with use_metrics(registry):
            suite = MonitorSuite()
            suite.observe_propensities(np.array([0.5, 0.0]))
        levels = [e.level for e in suite.events if e.monitor == "propensity_floor"]
        assert levels == [LEVEL_CRITICAL]
        assert registry.value(
            "health.events", monitor="propensity_floor", level="CRITICAL"
        ) == 1
        assert registry.value("health.level", monitor="propensity_floor") == 2

    def test_all_ok_run_still_exports_level_gauges(self):
        registry = MetricsRegistry()
        with use_metrics(registry):
            suite = MonitorSuite()
            suite.observe_propensities(np.array([0.5, 0.5]))
        assert suite.overall_level() == LEVEL_OK
        assert registry.value("health.level", monitor="propensity_floor") == 0
        assert registry.total("health.events") == 0

    def test_recovery_transition_reported(self):
        suite = MonitorSuite(
            [QuarantineRateMonitor(warn=0.5, critical=0.9, min_rows=2)]
        )
        suite.observe_rejected("propensity", 2)
        assert suite.level("quarantine_rate") == LEVEL_CRITICAL
        suite.observe_rows(1000)
        assert suite.level("quarantine_rate") == LEVEL_OK
        assert [e.level for e in suite.events] == [LEVEL_CRITICAL, LEVEL_OK]

    def test_states_absorb_matches_single_suite(self):
        probs_a = np.array([0.5, 0.25, 1e-5])
        probs_b = np.array([0.9, 0.0])
        single = MonitorSuite()
        single.observe_propensities(probs_a)
        single.observe_propensities(probs_b)
        worker_a, worker_b = MonitorSuite(), MonitorSuite()
        worker_a.observe_propensities(probs_a)
        worker_b.observe_propensities(probs_b)
        parent = MonitorSuite()
        parent.absorb(worker_a.states())
        parent.absorb(worker_b.states())
        for name in ("propensity_floor", "weight_tail", "ess"):
            assert parent.level(name) == single.level(name)

    def test_states_round_trip_is_jsonable(self):
        import json

        suite = MonitorSuite()
        suite.observe_propensities(np.array([0.5, 0.25]))
        suite.observe_shards(completed=2, retried=1)
        states = json.loads(json.dumps(suite.states()))
        parent = MonitorSuite()
        parent.absorb(states)
        assert parent.level("retry_storm") == LEVEL_OK

    def test_absorb_none_is_noop(self):
        suite = MonitorSuite()
        suite.absorb(None)
        suite.absorb({})
        assert suite.overall_level() == LEVEL_OK

    def test_snapshot_shape(self):
        suite = MonitorSuite()
        suite.observe_propensities(np.array([0.5, 0.0]))
        snapshot = suite.snapshot()
        assert snapshot["overall"] == LEVEL_CRITICAL
        assert snapshot["monitors"]["propensity_floor"]["level"] == (
            LEVEL_CRITICAL
        )
        assert snapshot["events"][0]["monitor"] == "propensity_floor"
        assert set(snapshot["events"][0]) == {
            "monitor", "level", "value", "threshold", "message", "rows",
        }

    def test_overall_is_worst_level(self):
        suite = MonitorSuite()
        suite.observe_propensities(np.array([0.5, 1e-5]))
        assert suite.overall_level() == LEVEL_CRITICAL  # weight tail

    def test_empty_feed_is_noop(self):
        suite = MonitorSuite()
        suite.observe_propensities(np.array([]))
        suite.observe_weights(np.array([]))
        suite.observe_rows(0)
        suite.observe_rejected("x", 0)
        assert not suite.events


class TestInstallation:
    def test_default_is_null(self):
        assert get_monitors() is NULL_MONITORS
        assert not get_monitors().enabled

    def test_null_monitors_accept_everything(self):
        NULL_MONITORS.observe_propensities(np.array([0.5]))
        NULL_MONITORS.observe_rows(5)
        NULL_MONITORS.observe_shards(completed=1)
        NULL_MONITORS.absorb({"ess": {}})
        assert NULL_MONITORS.states() == {}
        assert NULL_MONITORS.snapshot() == {}

    def test_use_monitors_scopes_installation(self):
        suite = MonitorSuite()
        with use_monitors(suite) as installed:
            assert installed is suite
            assert get_monitors() is suite
        assert get_monitors() is NULL_MONITORS
