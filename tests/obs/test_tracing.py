"""Tracer correctness: nesting, exception safety, worker-span grafting."""

import pytest

from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)


class TestSpanNesting:
    def test_with_blocks_build_a_tree(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner-a"):
                pass
            with tracer.span("inner-b"):
                with tracer.span("leaf"):
                    pass
        tree = tracer.span_tree()
        assert [root["name"] for root in tree] == ["outer"]
        children = tree[0]["children"]
        assert [c["name"] for c in children] == ["inner-a", "inner-b"]
        assert children[1]["children"][0]["name"] == "leaf"

    def test_sibling_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [r["name"] for r in tracer.span_tree()] == ["first", "second"]

    def test_timings_populate_on_exit(self):
        tracer = Tracer()
        with tracer.span("timed") as span:
            assert span.wall_s is None and span.cpu_s is None
        assert span.wall_s >= 0.0
        assert span.cpu_s >= 0.0

    def test_attributes_at_open_and_mid_span(self):
        tracer = Tracer()
        with tracer.span("s", rows=10) as span:
            span.set(chunks=3)
        node = tracer.span_tree()[0]
        assert node["attributes"] == {"rows": 10, "chunks": 3}


class TestExceptionSafety:
    def test_span_closes_and_records_error(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError, match="boom"):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        node = tracer.span_tree()[0]
        assert node["error"] == "RuntimeError: boom"
        assert node["wall_s"] is not None  # duration still recorded

    def test_unwinding_closes_nested_spans(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("deep failure")
        outer = tracer.span_tree()[0]
        inner = outer["children"][0]
        assert "ValueError" in inner["error"]
        assert "ValueError" in outer["error"]
        # The stack fully unwound: a new span is a fresh root.
        with tracer.span("after"):
            pass
        assert tracer.span_tree()[1]["name"] == "after"


class TestSerialization:
    def test_round_trip(self):
        tracer = Tracer()
        with tracer.span("root", rows=5):
            with tracer.span("child"):
                pass
        node = tracer.span_tree()[0]
        rebuilt = Span.from_dict(node)
        assert rebuilt.to_dict() == node

    def test_attach_grafts_worker_spans(self):
        worker = Tracer()
        with worker.span("bootstrap.shard", shard=0, worker=True):
            pass
        shipped = worker.span_tree()[0]  # what pool.map returns

        parent = Tracer()
        with parent.span("bootstrap.replicates"):
            parent.attach(shipped)
        tree = parent.span_tree()[0]
        assert tree["children"][0]["name"] == "bootstrap.shard"
        assert tree["children"][0]["attributes"]["worker"] is True

    def test_attach_accepts_span_sequence_and_none(self):
        tracer = Tracer()
        spans = [Span("a"), Span("b")]
        tracer.attach(spans)
        tracer.attach(None)
        assert [r["name"] for r in tracer.span_tree()] == ["a", "b"]


class TestNullTracer:
    def test_default_tracer_is_null(self):
        assert get_tracer() is NULL_TRACER
        assert not get_tracer().enabled

    def test_null_span_is_shared_and_inert(self):
        span_a = NULL_TRACER.span("x", rows=1)
        span_b = NULL_TRACER.span("y")
        assert span_a is span_b
        with span_a as s:
            s.set(anything=1)
        assert NULL_TRACER.span_tree() == []

    def test_null_tracer_does_not_swallow_exceptions(self):
        with pytest.raises(KeyError):
            with NULL_TRACER.span("z"):
                raise KeyError("propagates")


class TestScoping:
    def test_use_tracer_installs_and_restores(self):
        assert isinstance(get_tracer(), NullTracer)
        with use_tracer() as tracer:
            assert get_tracer() is tracer
            assert isinstance(tracer, Tracer)
            with get_tracer().span("inside"):
                pass
        assert isinstance(get_tracer(), NullTracer)
        assert tracer.span_tree()[0]["name"] == "inside"

    def test_use_tracer_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with use_tracer():
                raise RuntimeError
        assert isinstance(get_tracer(), NullTracer)

    def test_set_tracer_none_restores_null(self):
        tracer = Tracer()
        set_tracer(tracer)
        try:
            assert get_tracer() is tracer
        finally:
            set_tracer(None)
        assert get_tracer() is NULL_TRACER
