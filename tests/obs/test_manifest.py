"""Provenance manifests: build, save/load, digest, report rendering."""

import hashlib
import json

import pytest

from repro.core.estimators.base import EstimatorResult
from repro.core.validation import Quarantine
from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    file_digest,
    result_entry,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import (
    aggregate_spans,
    flatten_spans,
    manifest_summary_text,
    metric_totals,
    verdict_tally,
)
from repro.obs.tracing import Tracer


def _result(value=0.5, estimator="ips", degraded=False):
    details = {}
    if degraded:
        details = {"degraded": True, "fallback": [{"estimator": "ips"}]}
    return EstimatorResult(
        value=value,
        std_error=0.01,
        n=100,
        effective_n=40,
        estimator=estimator,
        details=details,
    )


def _manifest(tmp_path, **overrides):
    log = tmp_path / "log.jsonl"
    log.write_text('{"x": 1}\n')
    tracer = Tracer()
    with tracer.span("evaluate.jsonl"):
        with tracer.span("evaluate.chunk", index=0):
            pass
    registry = MetricsRegistry()
    registry.counter("engine.rows_ingested").inc(100)
    quarantine = Quarantine()
    quarantine.add(3, "propensity", "propensity 0 outside (0, 1]")
    kwargs = dict(
        command="evaluate",
        input_path=str(log),
        config={"backend": "chunked", "mode": "quarantine"},
        results=[result_entry("uniform-random", _result())],
        metrics=registry,
        tracer=tracer,
        quarantine=quarantine,
    )
    kwargs.update(overrides)
    return RunManifest.build(**kwargs)


class TestFileDigest:
    def test_digest_is_content_addressed(self, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        a.write_text("same bytes")
        b.write_text("same bytes")
        assert file_digest(str(a)) == file_digest(str(b))
        b.write_text("different")
        assert file_digest(str(a)) != file_digest(str(b))

    def test_empty_file_digest_is_sha256_of_nothing(self, tmp_path):
        # The streaming loop must handle a zero-iteration read and
        # still produce the canonical empty-input SHA-256.
        empty = tmp_path / "empty.jsonl"
        empty.write_bytes(b"")
        assert file_digest(str(empty)) == hashlib.sha256(b"").hexdigest()
        assert file_digest(str(empty)) == (
            "e3b0c44298fc1c149afbf4c8996fb924"
            "27ae41e4649b934ca495991b7852b855"
        )

    def test_streaming_matches_whole_file_hash(self, tmp_path):
        # Larger than one read() chunk, so the loop iterates.
        blob = b"x" * (1 << 20) + b"tail"
        path = tmp_path / "big.bin"
        path.write_bytes(blob)
        assert file_digest(str(path)) == hashlib.sha256(blob).hexdigest()


class TestResultEntry:
    def test_plain_entry(self):
        entry = result_entry("uniform-random", _result())
        assert entry["policy"] == "uniform-random"
        assert entry["estimator"] == "ips"
        assert entry["value"] == 0.5
        assert entry["verdict"] is None  # no diagnostics computed
        assert entry["reliable"] is True
        assert "degraded" not in entry

    def test_degraded_entry_carries_audit_trail(self):
        entry = result_entry("p", _result(estimator="snips", degraded=True))
        assert entry["degraded"] is True
        assert entry["fallback"] == [{"estimator": "ips"}]


class TestRunManifest:
    def test_build_captures_everything(self, tmp_path):
        manifest = _manifest(tmp_path)
        data = manifest.to_dict()
        assert data["schema_version"] == MANIFEST_SCHEMA_VERSION
        assert data["command"] == "evaluate"
        assert data["input"]["sha256"] == file_digest(data["input"]["path"])
        assert data["input"]["bytes"] > 0
        assert data["environment"]["repro_version"]
        assert data["config"]["backend"] == "chunked"
        assert data["quarantine"]["n_rejected"] == 1
        assert data["metrics"]["engine.rows_ingested"]["kind"] == "counter"
        assert data["spans"][0]["name"] == "evaluate.jsonl"

    def test_missing_input_is_tolerated(self, tmp_path):
        manifest = RunManifest.build(
            command="evaluate", input_path=str(tmp_path / "absent.jsonl")
        )
        assert manifest.to_dict()["input"] == {
            "path": str(tmp_path / "absent.jsonl")
        }

    def test_save_load_round_trip(self, tmp_path):
        manifest = _manifest(tmp_path)
        path = tmp_path / "run_manifest.json"
        manifest.save(str(path))
        loaded = RunManifest.load(str(path))
        assert loaded.to_dict() == manifest.to_dict()
        # The file itself is valid JSON with a trailing newline.
        raw = path.read_text()
        assert raw.endswith("\n")
        json.loads(raw)

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema_version": 999}))
        with pytest.raises(ValueError, match="schema version"):
            RunManifest.load(str(path))

    def test_load_rejects_non_object(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="must be an object"):
            RunManifest.load(str(path))


class TestWatchtowerSections:
    def test_health_section_from_monitor_suite(self, tmp_path):
        from repro.obs.monitors import MonitorSuite

        suite = MonitorSuite()
        suite.observe_propensities([0.5, 1e-7])  # CRITICAL floor graze
        data = _manifest(tmp_path, monitors=suite).to_dict()
        health = data["health"]
        assert health["overall"] == "CRITICAL"
        assert health["monitors"]["propensity_floor"]["level"] == "CRITICAL"
        assert any(
            event["monitor"] == "propensity_floor"
            for event in health["events"]
        )

    def test_profile_section_from_profiler(self, tmp_path):
        from repro.obs.profiler import SpanProfiler

        profiler = SpanProfiler(interval=0.01)
        profiler.sample(span="evaluate")
        data = _manifest(tmp_path, profiler=profiler).to_dict()
        profile = data["profile"]
        assert profile["samples"] == 1
        assert profile["spans"]["evaluate"] == {"<manual>": 1}

    def test_sections_absent_when_not_instrumented(self, tmp_path):
        data = _manifest(tmp_path).to_dict()
        assert "health" not in data
        assert "profile" not in data

    def test_sections_survive_save_load(self, tmp_path):
        from repro.obs.monitors import MonitorSuite
        from repro.obs.profiler import SpanProfiler

        suite = MonitorSuite()
        suite.observe_propensities([0.5, 0.25])
        profiler = SpanProfiler()
        profiler.sample(span="evaluate")
        manifest = _manifest(tmp_path, monitors=suite, profiler=profiler)
        path = tmp_path / "m.json"
        manifest.save(str(path))
        loaded = RunManifest.load(str(path)).to_dict()
        assert loaded["health"]["overall"] == "OK"
        assert loaded["profile"]["samples"] == 1


class TestReportHelpers:
    SPANS = [
        {
            "name": "root",
            "wall_s": 1.0,
            "cpu_s": 0.8,
            "children": [
                {"name": "chunk", "wall_s": 0.3, "cpu_s": 0.2},
                {"name": "chunk", "wall_s": 0.5, "cpu_s": 0.4,
                 "error": "ValueError: x"},
            ],
        }
    ]

    def test_flatten_spans_paths(self):
        paths = [path for path, _ in flatten_spans(self.SPANS)]
        assert paths == ["root", "root/chunk", "root/chunk"]

    def test_aggregate_spans_totals_and_order(self):
        aggregated = aggregate_spans(self.SPANS)
        assert aggregated[0]["name"] == "root"  # most wall time first
        chunk = aggregated[1]
        assert chunk["count"] == 2
        assert chunk["wall_s"] == pytest.approx(0.8)
        assert chunk["max_wall_s"] == pytest.approx(0.5)
        assert chunk["errors"] == 1

    def test_verdict_tally(self):
        results = [
            {"verdict": "OK"}, {"verdict": "OK"},
            {"verdict": "UNRELIABLE"}, {"verdict": None},
        ]
        assert verdict_tally(results) == {"OK": 2, "UNRELIABLE": 1, "-": 1}

    def test_metric_totals_sums_labels_out(self):
        registry = MetricsRegistry()
        registry.counter("rejected", reason="a").inc(2)
        registry.counter("rejected", reason="b").inc(3)
        registry.histogram("seconds").observe(0.1)
        totals = dict(
            (name, total)
            for name, _kind, total in metric_totals(registry.snapshot())
        )
        assert totals == {"rejected": 5.0, "seconds": 1.0}


class TestSummaryText:
    def test_renders_every_section(self, tmp_path):
        text = manifest_summary_text(_manifest(tmp_path))
        for fragment in (
            "command", "evaluate", "sha256", "config.backend",
            "results", "uniform-random", "verdicts",
            "top spans by wall time", "evaluate.jsonl",
            "metric totals", "engine.rows_ingested",
            "quarantine", "propensity", "total rejected",
        ):
            assert fragment in text, f"missing {fragment!r}"

    def test_sparse_manifest_renders(self):
        manifest = RunManifest.build(command="evaluate")
        text = manifest_summary_text(manifest)
        assert "command" in text
        assert "top spans" not in text  # no spans section without spans
