"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.policies import UniformRandomPolicy
from repro.core.types import ActionSpace, Dataset, Interaction, RewardRange


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic NumPy generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def three_action_space() -> ActionSpace:
    """A plain 3-action space."""
    return ActionSpace(3, labels=["a", "b", "c"])


def make_uniform_dataset(
    n: int,
    n_actions: int = 3,
    seed: int = 0,
    reward_fn=None,
) -> Dataset:
    """A dataset logged by the uniform-random policy.

    ``reward_fn(context, action, rng)`` defaults to a context- and
    action-dependent bounded reward so estimators have signal.
    """
    rng = np.random.default_rng(seed)
    policy = UniformRandomPolicy()
    actions = list(range(n_actions))
    if reward_fn is None:

        def reward_fn(context, action, rng):
            base = 0.2 + 0.15 * action + 0.3 * context["load"]
            return float(np.clip(base + rng.normal(0, 0.05), 0.0, 1.0))

    dataset = Dataset(
        action_space=ActionSpace(n_actions),
        reward_range=RewardRange(0.0, 1.0, maximize=True),
    )
    for t in range(n):
        context = {"load": float(rng.uniform()), "bias": 1.0}
        action, propensity = policy.act(context, actions, rng)
        dataset.append(
            Interaction(
                context=context,
                action=action,
                reward=reward_fn(context, action, rng),
                propensity=propensity,
                timestamp=float(t),
            )
        )
    return dataset


@pytest.fixture
def uniform_dataset() -> Dataset:
    """500 uniform-random exploration points over 3 actions."""
    return make_uniform_dataset(500)


@pytest.fixture
def full_feedback_dataset() -> Dataset:
    """A small full-feedback dataset (every action's reward known)."""
    rng = np.random.default_rng(7)
    dataset = Dataset(
        action_space=ActionSpace(4),
        reward_range=RewardRange(0.0, 1.0, maximize=True),
    )
    for t in range(200):
        context = {"x": float(rng.uniform(-1, 1)), "bias": 1.0}
        # Optimal action depends on sign of x.
        full = [
            float(np.clip(0.5 + 0.4 * context["x"] * (1 if a % 2 == 0 else -1)
                          + 0.1 * (a == 3), 0, 1))
            for a in range(4)
        ]
        dataset.append(
            Interaction(
                context=context,
                action=0,
                reward=full[0],
                propensity=1.0,
                timestamp=float(t),
                full_rewards=full,
            )
        )
    return dataset
