"""Smoke tests for the command-line entry point and quickstart."""

import subprocess
import sys

import pytest

from repro.__main__ import main, parse_policy
from tests.conftest import make_uniform_dataset


def test_python_m_repro_prints_catalog():
    result = subprocess.run(
        [sys.executable, "-m", "repro"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 0
    assert "Harvesting Randomness" in result.stdout
    assert "fig3" in result.stdout
    assert "table2" in result.stdout
    assert "pytest benchmarks/" in result.stdout


def test_quickstart_example_runs():
    result = subprocess.run(
        [sys.executable, "examples/quickstart.py"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert "harvested 5000 exploration points" in result.stdout
    assert "constant[1]" in result.stdout


def test_main_module_returns_zero():
    assert main([]) == 0


@pytest.fixture
def log_path(tmp_path):
    path = tmp_path / "exploration.jsonl"
    make_uniform_dataset(200, seed=11).save_jsonl(str(path))
    return str(path)


class TestEvaluateSubcommand:
    def _run(self, extra, capsys):
        code = main(["evaluate"] + extra)
        out = capsys.readouterr().out
        return code, out

    def test_default_backend_is_vectorized(self, log_path, capsys):
        code, out = self._run([log_path], capsys)
        assert code == 0
        assert "backend: vectorized" in out
        assert "uniform-random" in out
        assert "ips" in out

    def test_backends_print_identical_estimates(self, log_path, capsys):
        args = [
            log_path,
            "--policy", "constant:1",
            "--policy", "eps:0:0.2",
            "--estimator", "ips",
            "--estimator", "snips",
        ]
        code_v, out_v = self._run(args + ["--backend", "vectorized"], capsys)
        code_s, out_s = self._run(args + ["--backend", "scalar"], capsys)
        code_c, out_c = self._run(
            args + ["--backend", "chunked", "--chunk-size", "33"], capsys
        )
        assert code_v == code_s == code_c == 0
        # Identical tables modulo the backend banner line.
        strip = lambda out: out.splitlines()[1:]  # noqa: E731
        assert strip(out_v) == strip(out_s) == strip(out_c)

    def test_chunked_banner_reports_chunks(self, log_path, capsys):
        code, out = self._run(
            [log_path, "--backend", "chunked", "--chunk-size", "64"], capsys
        )
        assert code == 0
        assert "backend: chunked" in out
        assert "4 chunks" in out  # 200 rows / 64 per chunk

    def test_chunked_workers_match_serial(self, log_path, capsys):
        args = [
            log_path,
            "--backend", "chunked",
            "--chunk-size", "25",
            "--policy", "constant:1",
            "--estimator", "ips",
            "--estimator", "dr",
        ]
        code_1, out_1 = self._run(args + ["--workers", "1"], capsys)
        code_2, out_2 = self._run(args + ["--workers", "2"], capsys)
        assert code_1 == code_2 == 0
        assert out_1 == out_2

    def test_default_backend_restored_after_run(self, log_path, capsys):
        from repro.core.engine import get_default_backend, set_default_backend

        self._run([log_path, "--backend", "scalar"], capsys)
        # The flag is an explicit process-wide switch, documented as such.
        assert get_default_backend() == "scalar"
        set_default_backend("vectorized")

    def test_empty_log_errors(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["evaluate", str(path)]) == 1

    def test_bad_policy_spec_rejected(self):
        with pytest.raises(Exception):
            parse_policy("nonsense:1:2:3")


class TestValidationModeFlag:
    def _dirty_log(self, tmp_path):
        import json

        path = tmp_path / "dirty.jsonl"
        lines = []
        dataset = make_uniform_dataset(100, seed=19)
        for i, interaction in enumerate(dataset):
            record = {
                "context": interaction.context,
                "action": interaction.action,
                "reward": interaction.reward,
                "propensity": interaction.propensity,
                "timestamp": interaction.timestamp,
            }
            line = json.dumps(record)
            if i % 10 == 5:
                line = line[: len(line) // 2]  # truncate every 10th
            lines.append(line)
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def test_strict_default_fails_on_dirty_log(self, tmp_path, capsys):
        from repro.__main__ import main

        code = main(["evaluate", self._dirty_log(tmp_path)])
        captured = capsys.readouterr()
        assert code == 1
        assert "line" in captured.err

    def test_quarantine_mode_evaluates_and_reports(self, tmp_path, capsys):
        from repro.__main__ import main

        code = main(
            ["evaluate", self._dirty_log(tmp_path), "--mode", "quarantine"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "ips" in captured.out
        assert "rejected" in captured.err

    def test_repair_mode_accepted(self, tmp_path, capsys):
        from repro.__main__ import main

        code = main(
            ["evaluate", self._dirty_log(tmp_path), "--mode", "repair"]
        )
        assert code == 0


class TestBootstrapFlag:
    def _run(self, extra, capsys):
        code = main(["evaluate"] + extra)
        out = capsys.readouterr().out
        return code, out

    def _bootstrap_lines(self, out):
        return [l for l in out.splitlines() if l.startswith("bootstrap[")]

    def test_bootstrap_prints_interval_per_policy(self, log_path, capsys):
        code, out = self._run(
            [log_path, "--policy", "constant:1", "--policy", "uniform",
             "--bootstrap", "200"],
            capsys,
        )
        assert code == 0
        lines = self._bootstrap_lines(out)
        assert len(lines) == 2
        assert all("[" in line and "]" in line for line in lines)

    def test_seeded_bootstrap_reproduces_bit_for_bit(self, log_path, capsys):
        args = [log_path, "--policy", "constant:1",
                "--bootstrap", "300", "--seed", "9"]
        _, out_a = self._run(list(args), capsys)
        _, out_b = self._run(list(args), capsys)
        assert self._bootstrap_lines(out_a) == self._bootstrap_lines(out_b)
        assert "seed=9" in self._bootstrap_lines(out_a)[0]

    def test_seeded_bootstrap_workers_match_serial(self, log_path, capsys):
        args = [log_path, "--policy", "constant:1",
                "--bootstrap", "600", "--seed", "4"]
        _, serial = self._run(args + ["--workers", "1"], capsys)
        _, parallel = self._run(args + ["--workers", "3"], capsys)
        assert self._bootstrap_lines(serial) == self._bootstrap_lines(parallel)

    def test_bootstrap_works_on_chunked_backend(self, log_path, capsys):
        args = [log_path, "--policy", "constant:1",
                "--bootstrap", "300", "--seed", "9"]
        _, in_memory = self._run(list(args), capsys)
        _, chunked = self._run(
            args + ["--backend", "chunked", "--chunk-size", "40"], capsys
        )
        # The IPS terms feeding the bootstrap are identical, so the
        # seeded intervals agree exactly across backends.
        assert (
            self._bootstrap_lines(in_memory)
            == self._bootstrap_lines(chunked)
        )


class TestObservabilityFlags:
    def _run(self, extra, capsys):
        code = main(["evaluate"] + extra)
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_trace_prints_top_spans(self, log_path, capsys):
        code, out, err = self._run([log_path, "--trace"], capsys)
        assert code == 0
        assert "trace (top spans by wall time):" in err
        assert "estimate" in err

    def test_trace_leaves_estimates_unchanged(self, log_path, capsys):
        code_plain, out_plain, _ = self._run([log_path], capsys)
        code_traced, out_traced, _ = self._run([log_path, "--trace"], capsys)
        assert code_plain == code_traced == 0
        assert out_plain == out_traced

    def test_metrics_out_writes_prometheus_text(self, log_path, tmp_path,
                                                capsys):
        metrics_path = tmp_path / "metrics.prom"
        code, _out, _err = self._run(
            [log_path, "--metrics-out", str(metrics_path)], capsys
        )
        assert code == 0
        text = metrics_path.read_text()
        assert "# TYPE repro_estimator_verdicts_total counter" in text
        assert "repro_engine_rows_ingested_total" in text

    def test_metrics_out_dash_prints_to_stdout(self, log_path, capsys):
        code, out, _err = self._run([log_path, "--metrics-out", "-"], capsys)
        assert code == 0
        assert "repro_estimator_verdicts_total" in out

    def test_instruments_restored_after_run(self, log_path, capsys):
        from repro.obs.metrics import NullMetrics, get_metrics
        from repro.obs.tracing import NullTracer, get_tracer

        code, _out, _err = self._run(
            [log_path, "--trace", "--metrics-out", "-"], capsys
        )
        assert code == 0
        assert isinstance(get_tracer(), NullTracer)
        assert isinstance(get_metrics(), NullMetrics)

    def test_manifest_written_and_reported(self, log_path, tmp_path, capsys):
        import json

        manifest_path = tmp_path / "run_manifest.json"
        code, _out, err = self._run(
            [log_path,
             "--backend", "chunked", "--chunk-size", "64", "--workers", "2",
             "--policy", "uniform", "--policy", "constant:1",
             "--bootstrap", "300", "--seed", "3",
             "--manifest", str(manifest_path)],
            capsys,
        )
        assert code == 0
        assert str(manifest_path) in err
        data = json.loads(manifest_path.read_text())
        assert data["schema_version"] == 1
        assert data["command"] == "evaluate"
        assert data["config"]["backend"] == "chunked"
        assert len(data["results"]) == 2  # 2 policies × 1 estimator
        assert all("bootstrap" in r for r in data["results"])
        assert "sha256" in data["input"]
        span_names = {s["name"] for s in data["spans"]}
        assert "evaluate.jsonl" in span_names
        assert "bootstrap.replicates" in span_names
        assert "engine.chunk_folds" in data["metrics"]

        # The report subcommand renders the saved manifest.
        code = main(["report", str(manifest_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "top spans by wall time" in out
        assert "uniform-random" in out
        assert "metric totals" in out

    def test_report_missing_file_errors(self, tmp_path, capsys):
        code = main(["report", str(tmp_path / "absent.json")])
        assert code == 1
        assert "cannot read" in capsys.readouterr().err

    def test_report_rejects_bad_schema(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"schema_version": 99}')
        code = main(["report", str(path)])
        assert code == 1
        assert "schema version" in capsys.readouterr().err


class TestAutoEstimator:
    def test_auto_estimator_runs(self, log_path, capsys):
        from repro.__main__ import main

        code = main(
            ["evaluate", log_path, "--estimator", "auto",
             "--policy", "constant:1"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "constant[1]" in captured.out

    def test_unreliable_estimates_flagged_on_stderr(self, tmp_path, capsys):
        import json

        from repro.__main__ import main

        # Degenerate log: deterministic choice truthfully logged as
        # propensity 1 — the Table 2 trap the CLI must call out.
        path = tmp_path / "degenerate.jsonl"
        lines = [
            json.dumps(
                {
                    "context": {"load": i / 100},
                    "action": i % 2,
                    "reward": 0.5,
                    "propensity": 1.0,
                    "timestamp": float(i),
                }
            )
            for i in range(101)
        ]
        path.write_text("\n".join(lines) + "\n")
        code = main(
            ["evaluate", str(path), "--policy", "constant:1",
             "--estimator", "ips"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "!" in captured.out  # unreliable marker in the table
        assert "UNRELIABLE" in captured.err


class TestHarvestSubcommand:
    def test_machinehealth_harvest_roundtrip(self, tmp_path, capsys):
        out = str(tmp_path / "mh.jsonl")
        code = main(
            ["harvest", "machinehealth", out, "--rows", "200", "--seed", "3"]
        )
        stdout = capsys.readouterr().out
        assert code == 0
        assert "harvested 200 rows" in stdout
        assert "machinehealth" in stdout
        # The harvested log feeds straight back into evaluate.
        code = main(["evaluate", out, "--policy", "uniform"])
        assert code == 0
        assert "uniform-random" in capsys.readouterr().out

    def test_loadbalance_harvest(self, tmp_path, capsys):
        out = str(tmp_path / "lb.jsonl")
        code = main(["harvest", "loadbalance", out, "--rows", "150"])
        stdout = capsys.readouterr().out
        assert code == 0
        assert "harvested 150 rows" in stdout

    def test_cache_harvest(self, tmp_path, capsys):
        out = str(tmp_path / "cache.jsonl")
        code = main(
            ["harvest", "cache", out, "--rows", "3000", "--seed", "1"]
        )
        stdout = capsys.readouterr().out
        assert code == 0
        # Cache rows = evictions, fewer than requests but nonzero.
        assert "harvested" in stdout
        assert "cache" in stdout

    def test_batch_size_invariance_through_cli(self, tmp_path, capsys):
        small = str(tmp_path / "small.jsonl")
        large = str(tmp_path / "large.jsonl")
        base = ["harvest", "machinehealth", "--rows", "120", "--seed", "5"]
        assert main(base[:2] + [small] + base[2:] + ["--batch-size", "1"]) == 0
        assert main(base[:2] + [large] + base[2:] + ["--batch-size", "8192"]) == 0
        capsys.readouterr()
        with open(small) as f_small, open(large) as f_large:
            assert f_small.read() == f_large.read()

    def test_rejects_bad_rows(self, tmp_path, capsys):
        code = main(
            ["harvest", "machinehealth", str(tmp_path / "x.jsonl"),
             "--rows", "0"]
        )
        assert code == 1
        assert "must be positive" in capsys.readouterr().err

    def test_rejects_zero_batch_size(self, tmp_path, capsys):
        code = main(
            ["harvest", "machinehealth", str(tmp_path / "x.jsonl"),
             "--batch-size", "0"]
        )
        assert code == 1
        assert "batch-size" in capsys.readouterr().err

    def test_rejects_unknown_policy(self, tmp_path, capsys):
        code = main(
            ["harvest", "machinehealth", str(tmp_path / "x.jsonl"),
             "--rows", "50", "--policy", "nonsense:9"]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_observability_flags(self, tmp_path, capsys):
        out = str(tmp_path / "mh.jsonl")
        metrics_out = tmp_path / "metrics.prom"
        manifest_out = tmp_path / "manifest.json"
        code = main(
            ["harvest", "machinehealth", out, "--rows", "100",
             "--trace", "--metrics-out", str(metrics_out),
             "--manifest", str(manifest_out)]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "top spans by wall time" in captured.err
        exposition = metrics_out.read_text()
        assert "repro_harvest_rows_generated_total" in exposition
        assert "repro_harvest_batch_seconds" in exposition
        import json

        manifest = json.loads(manifest_out.read_text())
        assert manifest["command"] == "harvest"
        assert manifest["results"][0]["rows_generated"] == 100


class TestServeSubcommand:
    def test_burst_serves_logs_and_verifies(self, tmp_path, capsys):
        import json

        log = str(tmp_path / "serve.jsonl")
        manifest_out = str(tmp_path / "manifest.json")
        code = main(
            ["serve", "synthetic", "--burst", "500", "--pool-rows", "64",
             "--seed", "4", "--log", log, "--manifest", manifest_out,
             "--clients", "2", "--ask", "32"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "serving synthetic on 127.0.0.1" in captured.err
        assert "burst: 500 decisions" in captured.err
        manifest = json.loads(open(manifest_out).read())
        assert manifest["command"] == "serve"
        assert manifest["serving"]["served"] == 500
        assert manifest["serving"]["incumbent"]["name"] == "incumbent"
        # The serve log is a verifiable chain against its manifest…
        assert main(["verify-ledger", log, "--manifest", manifest_out]) == 0
        capsys.readouterr()
        # …and the offline evaluate toolchain ingests it unchanged.
        assert main(["evaluate", log, "--policy", "uniform"]) == 0
        assert "uniform-random" in capsys.readouterr().out

    def test_swap_policy_candidates_are_registered(self, tmp_path, capsys):
        import json

        manifest_out = str(tmp_path / "manifest.json")
        code = main(
            ["serve", "synthetic", "--burst", "100", "--pool-rows", "64",
             "--log", str(tmp_path / "s.jsonl"),
             "--swap-policy", "greedy=constant:1",
             "--swap-policy", "explore=eps:0:0.2",
             "--manifest", manifest_out]
        )
        capsys.readouterr()
        assert code == 0
        manifest = json.loads(open(manifest_out).read())
        assert manifest["config"]["swap_policies"] == [
            "greedy=constant:1", "explore=eps:0:0.2"
        ]

    def test_monitors_flag_prints_serving_health(self, tmp_path, capsys):
        code = main(
            ["serve", "synthetic", "--burst", "200", "--pool-rows", "64",
             "--monitors"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "serve.latency" in captured.err
        assert "serve.errors" in captured.err
        assert "health: OK" in captured.err

    def test_rejects_bad_swap_spec(self, capsys):
        code = main(
            ["serve", "synthetic", "--burst", "10",
             "--swap-policy", "no-equals-sign"]
        )
        assert code == 1
        assert "--swap-policy" in capsys.readouterr().err

    def test_rejects_bad_pool_rows(self, capsys):
        code = main(["serve", "synthetic", "--burst", "10",
                     "--pool-rows", "0"])
        assert code == 1
        assert "--pool-rows" in capsys.readouterr().err
