"""Smoke tests for the command-line entry point and quickstart."""

import subprocess
import sys


def test_python_m_repro_prints_catalog():
    result = subprocess.run(
        [sys.executable, "-m", "repro"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 0
    assert "Harvesting Randomness" in result.stdout
    assert "fig3" in result.stdout
    assert "table2" in result.stdout
    assert "pytest benchmarks/" in result.stdout


def test_quickstart_example_runs():
    result = subprocess.run(
        [sys.executable, "examples/quickstart.py"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert "harvested 5000 exploration points" in result.stdout
    assert "constant[1]" in result.stdout


def test_main_module_returns_zero():
    from repro.__main__ import main

    assert main([]) == 0
