"""Unit tests for the key-value store."""

import pytest

from repro.cache.store import CacheItem, KeyValueStore


class TestCacheItem:
    def test_idle_and_age(self):
        item = CacheItem("k", size=4, insert_time=10.0, last_access=12.0)
        assert item.idle_time(now=15.0) == 3.0
        assert item.age(now=15.0) == 5.0

    def test_frequency(self):
        item = CacheItem("k", 1, insert_time=0.0, last_access=8.0,
                         access_count=4)
        assert item.frequency(now=8.0) == pytest.approx(0.5)

    def test_frequency_at_zero_age_is_finite(self):
        item = CacheItem("k", 1, insert_time=5.0, last_access=5.0)
        assert item.frequency(now=5.0) > 0


class TestKeyValueStore:
    def test_insert_and_access(self):
        store = KeyValueStore(10)
        store.insert("a", size=3, now=0.0)
        assert "a" in store
        assert store.used_memory == 3
        assert store.access("a", now=1.0) is True
        assert store.item("a").access_count == 2
        assert store.item("a").last_access == 1.0

    def test_miss_returns_false(self):
        store = KeyValueStore(10)
        assert store.access("ghost", now=0.0) is False

    def test_needs_eviction(self):
        store = KeyValueStore(10)
        store.insert("a", 8, now=0.0)
        assert store.needs_eviction(3) is True
        assert store.needs_eviction(2) is False

    def test_insert_over_budget_raises(self):
        store = KeyValueStore(10)
        store.insert("a", 8, now=0.0)
        with pytest.raises(RuntimeError):
            store.insert("b", 5, now=0.0)

    def test_item_larger_than_cache_rejected(self):
        with pytest.raises(ValueError):
            KeyValueStore(10).insert("huge", 11, now=0.0)

    def test_duplicate_insert_rejected(self):
        store = KeyValueStore(10)
        store.insert("a", 1, now=0.0)
        with pytest.raises(KeyError):
            store.insert("a", 1, now=1.0)

    def test_evict_releases_memory(self):
        store = KeyValueStore(10)
        store.insert("a", 4, now=0.0)
        item = store.evict("a")
        assert item.key == "a"
        assert store.used_memory == 0
        assert "a" not in store

    def test_evict_missing_raises(self):
        with pytest.raises(KeyError):
            KeyValueStore(10).evict("nope")

    def test_memory_utilization(self):
        store = KeyValueStore(10)
        store.insert("a", 5, now=0.0)
        assert store.memory_utilization() == 0.5

    def test_keys_in_insertion_order(self):
        store = KeyValueStore(10)
        for key in ("x", "y", "z"):
            store.insert(key, 1, now=0.0)
        assert store.keys == ["x", "y", "z"]

    def test_len(self):
        store = KeyValueStore(10)
        store.insert("a", 1, now=0.0)
        store.insert("b", 1, now=0.0)
        assert len(store) == 2

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            KeyValueStore(0)
        with pytest.raises(ValueError):
            KeyValueStore(10).insert("a", 0, now=0.0)
