"""Unit tests for trace-driven workloads."""

import io

import pytest

from repro.cache import (
    CacheSim,
    lru_policy,
    random_eviction_policy,
    read_trace,
    working_set_bytes,
    write_trace,
)
from repro.cache.trace import parse_trace_line
from repro.cache.workload import BigSmallWorkload, CacheRequest
from repro.simsys.random_source import RandomSource


class TestParseTraceLine:
    def test_valid_line(self):
        request = parse_trace_line("1.5 user:42 256")
        assert request == CacheRequest(time=1.5, key="user:42", size=256)

    def test_comment_and_blank(self):
        assert parse_trace_line("# a comment") is None
        assert parse_trace_line("") is None
        assert parse_trace_line("   ") is None

    def test_malformed(self):
        assert parse_trace_line("just-two fields") is None
        assert parse_trace_line("a b c d") is None
        assert parse_trace_line("notatime key 3") is None
        assert parse_trace_line("1.0 key notasize") is None
        assert parse_trace_line("1.0 key 0") is None
        assert parse_trace_line("-1.0 key 3") is None


class TestReadWriteTrace:
    def _requests(self):
        return [
            CacheRequest(0.0, "a", 1),
            CacheRequest(1.0, "b", 4),
            CacheRequest(2.0, "a", 1),
        ]

    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "t.trace")
        assert write_trace(self._requests(), path) == 3
        requests, stats = read_trace(path)
        assert requests == self._requests()
        assert stats.n_requests == 3
        assert stats.n_keys == 2
        assert stats.n_dropped == 0
        assert stats.total_bytes_requested == 6
        assert stats.max_item_size == 4

    def test_garbage_counted(self):
        text = "# header\n0.0 a 1\nbroken\n1.0 b 2\n"
        requests, stats = read_trace(io.StringIO(text))
        assert len(requests) == 2
        assert stats.n_dropped == 1

    def test_out_of_order_times_sorted(self):
        text = "5.0 late 1\n1.0 early 1\n"
        requests, _ = read_trace(io.StringIO(text))
        assert [r.key for r in requests] == ["early", "late"]

    def test_empty_trace_raises(self):
        with pytest.raises(ValueError):
            read_trace(io.StringIO("# nothing here\n"))

    def test_working_set_bytes(self):
        assert working_set_bytes(self._requests()) == 5  # a=1 + b=4


class TestTraceDrivesTheSim:
    def test_synthetic_workload_through_trace_file(self, tmp_path):
        """BigSmall workload → trace file → sim gives the same hit rate
        as driving the sim directly."""
        workload = BigSmallWorkload(
            n_big=20, n_small=200, randomness=RandomSource(3, _name="wl")
        )
        requests = list(workload.requests(6000))
        path = str(tmp_path / "synthetic.trace")
        write_trace(requests, path)
        replayed, stats = read_trace(path)
        assert stats.n_requests == 6000

        direct = CacheSim(150, random_eviction_policy(), seed=3).run(
            requests, keep_log=False
        )
        via_trace = CacheSim(150, random_eviction_policy(), seed=3).run(
            replayed, keep_log=False
        )
        assert via_trace.hit_rate == pytest.approx(direct.hit_rate)

    def test_capacity_planning_flow(self):
        """working_set_bytes sizes a cache that never evicts."""
        requests = [
            CacheRequest(float(t), f"k{t % 7}", 2) for t in range(100)
        ]
        capacity = working_set_bytes(requests)
        result = CacheSim(capacity, lru_policy(), seed=0).run(
            requests, warmup_fraction=0.0, keep_log=False
        )
        assert result.evictions == 0
