"""Unit tests for sampled eviction and eviction policies."""

import numpy as np
import pytest

from repro.cache.eviction import (
    SampledEvictionEngine,
    ScoredEvictionPolicy,
    candidate_features,
    candidate_slot_context,
    freq_size_policy,
    lfu_policy,
    lru_policy,
    naive_freq_size_policy,
    random_eviction_policy,
    ttl_policy,
)
from repro.cache.store import CacheItem, KeyValueStore
from repro.simsys.random_source import RandomSource


def make_items(now=100.0):
    """Three crafted items: a hot small, a cold small, a big."""
    hot = CacheItem("hot", size=1, insert_time=0.0, last_access=99.0,
                    access_count=50)
    cold = CacheItem("cold", size=1, insert_time=0.0, last_access=10.0,
                     access_count=2)
    big = CacheItem("big", size=8, insert_time=0.0, last_access=95.0,
                    access_count=25)
    return [hot, cold, big]


class TestSlotContext:
    def test_features_per_slot(self):
        context = candidate_slot_context(make_items(), now=100.0)
        assert context["cand0_idle"] == pytest.approx(1.0)
        assert context["cand1_idle"] == pytest.approx(90.0)
        assert context["cand2_size"] == 8.0
        assert context["cand0_freq"] == pytest.approx(0.5)

    def test_candidate_features_extracts_block(self):
        context = candidate_slot_context(make_items(), now=100.0)
        block = candidate_features(context, 2)
        assert set(block) == {"idle", "freq", "size", "age", "ttl"}
        assert block["size"] == 8.0


class TestPolicies:
    CONTEXT = candidate_slot_context(make_items(), now=100.0)
    ACTIONS = [0, 1, 2]

    def test_lru_evicts_max_idle(self):
        assert lru_policy().action(self.CONTEXT, self.ACTIONS) == 1  # cold

    def test_lfu_evicts_min_frequency(self):
        assert lfu_policy().action(self.CONTEXT, self.ACTIONS) == 1  # cold

    def test_ttl_evicts_oldest(self):
        items = make_items()
        items[2] = CacheItem("older", 1, insert_time=-50.0, last_access=99.0,
                             access_count=10)
        context = candidate_slot_context(items, now=100.0)
        assert ttl_policy().action(context, self.ACTIONS) == 2

    def test_freq_size_evicts_worst_value_per_byte(self):
        # hot: ~0.5/1; cold: ~0.02/1; big: ~0.25/8 ~ 0.031.
        # cold has the worst ratio here.
        assert freq_size_policy().action(self.CONTEXT, self.ACTIONS) == 1

    def test_freq_size_prefers_evicting_big_over_equally_hot_small(self):
        small = CacheItem("s", size=1, insert_time=0.0, last_access=99.0,
                          access_count=20)
        big = CacheItem("b", size=8, insert_time=0.0, last_access=99.0,
                        access_count=20)
        context = candidate_slot_context([small, big], now=100.0)
        assert freq_size_policy().action(context, [0, 1]) == 1

    def test_freq_size_not_fooled_by_fresh_items(self):
        """A just-inserted item (count 1, tiny age) must not look
        infinitely hot — the smoothing regression test."""
        fresh_big = CacheItem("fb", size=8, insert_time=99.9,
                              last_access=99.9, access_count=1)
        proven_small = CacheItem("ps", size=1, insert_time=0.0,
                                 last_access=99.0, access_count=30)
        context = candidate_slot_context([fresh_big, proven_small], now=100.0)
        assert freq_size_policy().action(context, [0, 1]) == 0
        # The naive variant IS fooled: it protects the fresh big.
        assert naive_freq_size_policy().action(context, [0, 1]) == 1

    def test_random_eviction_uniform(self, rng):
        draws = [
            random_eviction_policy().act(self.CONTEXT, self.ACTIONS, rng)[0]
            for _ in range(300)
        ]
        assert set(draws) == {0, 1, 2}

    def test_scored_policy_distribution_is_argmax_point_mass(self):
        policy = ScoredEvictionPolicy(lambda ctx, a: float(a), name="t")
        probs = policy.distribution(self.CONTEXT, self.ACTIONS)
        assert probs.tolist() == [0.0, 0.0, 1.0]

    def test_freq_size_validation(self):
        with pytest.raises(ValueError):
            freq_size_policy(prior_weight=-1.0)
        with pytest.raises(ValueError):
            freq_size_policy(prior_horizon=0.0)


def fill_store(n=50, size=1, now=0.0):
    store = KeyValueStore(max_memory=n * size)
    for i in range(n):
        store.insert(f"k{i}", size, now=now)
    return store


class TestSampledEvictionEngine:
    def test_evicts_exactly_one(self):
        store = fill_store(20)
        engine = SampledEvictionEngine(
            random_eviction_policy(), sample_size=5,
            randomness=RandomSource(0),
        )
        event = engine.evict_one(store, now=1.0)
        assert len(store) == 19
        assert event.victim_key not in store
        assert event.victim_key in event.candidate_keys
        assert len(event.candidate_keys) == 5

    def test_propensity_is_one_over_sample(self):
        store = fill_store(20)
        engine = SampledEvictionEngine(
            random_eviction_policy(), sample_size=5,
            randomness=RandomSource(0),
        )
        event = engine.evict_one(store, now=1.0)
        assert event.propensity == pytest.approx(1 / 5)

    def test_sample_smaller_when_store_small(self):
        store = fill_store(3)
        engine = SampledEvictionEngine(
            random_eviction_policy(), sample_size=10,
            randomness=RandomSource(0),
        )
        event = engine.evict_one(store, now=1.0)
        assert len(event.candidate_keys) == 3

    def test_make_room_frees_enough(self):
        store = fill_store(10, size=1)
        engine = SampledEvictionEngine(
            random_eviction_policy(), randomness=RandomSource(0)
        )
        events = engine.make_room(store, incoming_size=3, now=1.0)
        assert len(events) == 3
        assert not store.needs_eviction(3)

    def test_empty_store_raises(self):
        engine = SampledEvictionEngine(
            random_eviction_policy(), randomness=RandomSource(0)
        )
        with pytest.raises(RuntimeError):
            engine.evict_one(KeyValueStore(10), now=0.0)

    def test_pool_requires_scored_policy(self):
        with pytest.raises(ValueError):
            SampledEvictionEngine(
                random_eviction_policy(), pool_size=16,
                randomness=RandomSource(0),
            )

    def test_pool_retains_good_victims_across_samples(self):
        """Seed the store with one obviously-stale key; once sampled it
        should stay in the pool until evicted, even if later samples
        miss it."""
        store = KeyValueStore(100)
        for i in range(99):
            store.insert(f"k{i}", 1, now=float(i))
            store.access(f"k{i}", now=100.0)  # all recently touched
        store.insert("stale", 1, now=0.0)  # never re-touched
        engine = SampledEvictionEngine(
            lru_policy(), sample_size=5, pool_size=16,
            randomness=RandomSource(1),
        )
        evicted = []
        for step in range(80):
            evicted.append(engine.evict_one(store, now=101.0 + step).victim_key)
        assert "stale" in evicted

    def test_pool_mode_propensity_is_deterministic(self):
        store = fill_store(30)
        engine = SampledEvictionEngine(
            lru_policy(), sample_size=5, pool_size=8,
            randomness=RandomSource(2),
        )
        event = engine.evict_one(store, now=1.0)
        assert event.propensity == 1.0

    def test_pool_entries_pruned_when_evicted_elsewhere(self):
        """Keys that leave the store must not resurface via the pool."""
        store = fill_store(20)
        engine = SampledEvictionEngine(
            lru_policy(), sample_size=5, pool_size=8,
            randomness=RandomSource(3),
        )
        engine.evict_one(store, now=1.0)
        # Evict a pooled key directly from the store behind the engine's back.
        pooled = [k for k in engine._pool if k in store]
        assert pooled, "pool should retain candidates after an eviction"
        store.evict(pooled[0])
        event = engine.evict_one(store, now=2.0)
        assert event.victim_key != pooled[0]
        # 20 keys - engine eviction - manual eviction - second engine eviction
        assert len(store) == 17

    def test_validation(self):
        with pytest.raises(ValueError):
            SampledEvictionEngine(random_eviction_policy(), sample_size=0)
        with pytest.raises(ValueError):
            SampledEvictionEngine(lru_policy(), pool_size=-1)
