"""Unit tests for the cache simulator."""

import pytest

from repro.cache.eviction import lru_policy, random_eviction_policy
from repro.cache.keyspace_log import parse_keyspace_line
from repro.cache.sim import CacheSim
from repro.cache.workload import BigSmallWorkload, CacheRequest
from repro.simsys.random_source import RandomSource


def run_sim(policy=None, cap=150, n=5000, seed=0, pool_size=0, keep_log=True):
    workload = BigSmallWorkload(
        n_big=20, n_small=200, randomness=RandomSource(seed, _name="wl")
    )
    sim = CacheSim(
        cap, policy or random_eviction_policy(), seed=seed, pool_size=pool_size
    )
    return sim.run(workload.requests(n), keep_log=keep_log)


class TestCacheSim:
    def test_hit_rate_in_unit_interval(self):
        result = run_sim()
        assert 0.0 < result.hit_rate < 1.0
        assert result.hits + result.misses > 0

    def test_bigger_cache_higher_hit_rate(self):
        small = run_sim(cap=80)
        large = run_sim(cap=200)
        assert large.hit_rate > small.hit_rate

    def test_cache_that_fits_everything_never_evicts(self):
        workload = BigSmallWorkload(
            n_big=5, n_small=20, randomness=RandomSource(1, _name="wl")
        )
        sim = CacheSim(workload.total_bytes, random_eviction_policy(), seed=1)
        result = sim.run(workload.requests(2000))
        assert result.evictions == 0
        # After everything is resident, requests always hit.
        assert result.hit_rate > 0.9

    def test_deterministic_given_seed(self):
        a = run_sim(seed=5)
        b = run_sim(seed=5)
        assert a.hit_rate == b.hit_rate
        assert a.evictions == b.evictions

    def test_warmup_excluded(self):
        result = run_sim(n=1000)
        assert result.hits + result.misses == 900  # 10% warmup dropped

    def test_log_contains_gets_and_evicts(self):
        result = run_sim(n=2000)
        kinds = set()
        for line in result.log_lines:
            event = parse_keyspace_line(line)
            assert event is not None, f"unparseable log line: {line}"
            kinds.add(event.kind)
        assert kinds == {"GET", "EVICT"}

    def test_log_disabled(self):
        result = run_sim(keep_log=False)
        assert result.log_lines == []
        assert result.evictions > 0

    def test_eviction_events_match_log(self):
        result = run_sim(n=2000)
        evict_lines = [
            line for line in result.log_lines if " EVICT " in line
        ]
        assert len(evict_lines) == result.evictions
        assert len(result.eviction_events) == result.evictions

    def test_memory_never_exceeded(self):
        """Replay the request stream manually and check accounting."""
        workload = BigSmallWorkload(
            n_big=10, n_small=50, randomness=RandomSource(2, _name="wl")
        )
        from repro.cache.eviction import SampledEvictionEngine
        from repro.cache.store import KeyValueStore

        store = KeyValueStore(80)
        engine = SampledEvictionEngine(
            random_eviction_policy(), randomness=RandomSource(2)
        )
        for request in workload.requests(2000):
            if not store.access(request.key, request.time):
                engine.make_room(store, request.size, request.time)
                store.insert(request.key, request.size, request.time)
            assert store.used_memory <= 80

    def test_pool_mode_runs(self):
        result = run_sim(policy=lru_policy(), pool_size=8)
        assert result.evictions > 0

    def test_invalid_warmup(self):
        workload = BigSmallWorkload(randomness=RandomSource(0, _name="wl"))
        sim = CacheSim(100, random_eviction_policy())
        with pytest.raises(ValueError):
            sim.run(workload.requests(100), warmup_fraction=1.0)
