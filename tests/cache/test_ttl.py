"""Unit tests for TTL (volatile key) support."""

import pytest

from repro.cache.eviction import (
    TTL_FEATURE_CAP,
    SampledEvictionEngine,
    candidate_slot_context,
    volatile_ttl_policy,
)
from repro.cache.store import CacheItem, KeyValueStore
from repro.cache.sim import CacheSim
from repro.cache.workload import CacheRequest
from repro.cache.eviction import random_eviction_policy
from repro.simsys.random_source import RandomSource


class TestCacheItemTTL:
    def test_remaining_ttl(self):
        item = CacheItem("k", 1, insert_time=0.0, last_access=0.0,
                         expires_at=10.0)
        assert item.remaining_ttl(now=4.0) == pytest.approx(6.0)
        assert item.remaining_ttl(now=15.0) == 0.0

    def test_non_volatile_has_infinite_ttl(self):
        item = CacheItem("k", 1, 0.0, 0.0)
        assert item.remaining_ttl(5.0) == float("inf")
        assert not item.is_expired(1e12)

    def test_is_expired(self):
        item = CacheItem("k", 1, 0.0, 0.0, expires_at=10.0)
        assert not item.is_expired(9.999)
        assert item.is_expired(10.0)


class TestStoreTTL:
    def test_lazy_expiration_on_access(self):
        store = KeyValueStore(10)
        store.insert("k", 2, now=0.0, ttl=5.0)
        assert store.access("k", now=4.0) is True
        assert store.access("k", now=6.0) is False  # expired
        assert "k" not in store
        assert store.used_memory == 0
        assert store.expired_count == 1

    def test_expired_key_reinsertable(self):
        store = KeyValueStore(10)
        store.insert("k", 2, now=0.0, ttl=1.0)
        store.access("k", now=2.0)  # expires
        store.insert("k", 2, now=3.0)  # fresh insert allowed
        assert store.access("k", now=3.5) is True

    def test_invalid_ttl(self):
        store = KeyValueStore(10)
        with pytest.raises(ValueError):
            store.insert("k", 1, now=0.0, ttl=0.0)

    def test_non_volatile_never_expires(self):
        store = KeyValueStore(10)
        store.insert("k", 1, now=0.0)
        assert store.access("k", now=1e9) is True


class TestTTLFeatures:
    def test_slot_context_includes_capped_ttl(self):
        volatile = CacheItem("v", 1, 0.0, 0.0, expires_at=50.0)
        durable = CacheItem("d", 1, 0.0, 0.0)
        context = candidate_slot_context([volatile, durable], now=10.0)
        assert context["cand0_ttl"] == pytest.approx(40.0)
        assert context["cand1_ttl"] == TTL_FEATURE_CAP


class TestVolatileTTLPolicy:
    def test_evicts_soonest_to_expire(self):
        items = [
            CacheItem("a", 1, 0.0, 0.0, expires_at=100.0),
            CacheItem("b", 1, 0.0, 0.0, expires_at=20.0),
            CacheItem("c", 1, 0.0, 0.0),
        ]
        context = candidate_slot_context(items, now=10.0)
        assert volatile_ttl_policy().action(context, [0, 1, 2]) == 1

    def test_falls_back_to_lru_among_durable(self):
        items = [
            CacheItem("a", 1, 0.0, last_access=9.0),
            CacheItem("b", 1, 0.0, last_access=1.0),  # idle longer
        ]
        context = candidate_slot_context(items, now=10.0)
        assert volatile_ttl_policy().action(context, [0, 1]) == 1

    def test_works_in_the_engine(self):
        store = KeyValueStore(10)
        for i in range(8):
            store.insert(f"d{i}", 1, now=0.0)
        store.insert("volatile", 1, now=0.0, ttl=30.0)
        store.insert("volatile2", 1, now=0.0, ttl=5.0)
        engine = SampledEvictionEngine(
            volatile_ttl_policy(), sample_size=10,
            randomness=RandomSource(0),
        )
        event = engine.evict_one(store, now=1.0)
        assert event.victim_key == "volatile2"


class TestSimTTLFlow:
    def test_requests_with_ttl_expire_in_sim(self):
        # Every item lives 5 time units; re-requesting at stride 10
        # always misses even though the cache never fills.
        requests = [
            CacheRequest(time=float(t), key=f"k{t % 3}", size=1, ttl=5.0)
            for t in range(0, 300, 10)
        ]
        sim = CacheSim(100, random_eviction_policy(), seed=0)
        result = sim.run(requests, warmup_fraction=0.0)
        assert result.hit_rate == 0.0

    def test_requests_with_long_ttl_hit(self):
        requests = [
            CacheRequest(time=float(t), key="hot", size=1, ttl=10**6)
            for t in range(50)
        ]
        sim = CacheSim(100, random_eviction_policy(), seed=0)
        result = sim.run(requests, warmup_fraction=0.0)
        assert result.hits == 49
