"""Unit tests for replay-based counterfactual cache evaluation."""

import pytest

from repro.cache import (
    BigSmallWorkload,
    CacheSim,
    freq_size_policy,
    lru_policy,
    random_eviction_policy,
    replay_evaluate,
    replay_rank,
    requests_from_log,
)
from repro.cache.keyspace_log import format_get_line
from repro.simsys.random_source import RandomSource


def collect_log(n=12000, cap=350, seed=11):
    workload = BigSmallWorkload(
        n_big=50, n_small=500, randomness=RandomSource(seed, _name="wl")
    )
    sim = CacheSim(cap, random_eviction_policy(), sample_size=10, seed=seed)
    return sim.run(workload.requests(n)).log_lines


class TestRequestsFromLog:
    def test_reconstructs_every_get(self):
        lines = collect_log(2000)
        requests = requests_from_log(lines)
        gets = [line for line in lines if " GET " in line]
        assert len(requests) == len(gets) == 2000

    def test_sizes_and_keys_preserved(self):
        lines = [
            format_get_line(0.0, "big-1", False, 4),
            format_get_line(1.0, "small-2", True, 1),
        ]
        requests = requests_from_log(lines)
        assert requests[0].key == "big-1" and requests[0].size == 4
        assert requests[1].key == "small-2" and requests[1].size == 1

    def test_evict_lines_ignored(self):
        lines = collect_log(2000)
        requests = requests_from_log(lines)
        assert all(not r.key.startswith("EVICT") for r in requests)

    def test_empty_log_raises(self):
        with pytest.raises(ValueError):
            requests_from_log(["not a log line"])


class TestReplayEvaluate:
    def test_replaying_logging_policy_reproduces_hit_rate(self):
        """Replaying the random policy on its own log gives (nearly)
        the logged hit rate — the model self-check."""
        workload = BigSmallWorkload(
            n_big=50, n_small=500, randomness=RandomSource(11, _name="wl")
        )
        sim = CacheSim(350, random_eviction_policy(), sample_size=10, seed=11)
        original = sim.run(workload.requests(12000))
        replayed = replay_evaluate(
            original.log_lines, random_eviction_policy(), 350,
            sample_size=10, seed=11,
        )
        assert replayed.hit_rate == pytest.approx(original.hit_rate, abs=1e-9)

    def test_counterfactual_prediction_matches_deployment(self):
        """Replay-predicted hit rate for a *different* policy tracks
        that policy's actual deployment on the same workload."""
        lines = collect_log()
        predicted = replay_evaluate(
            lines, lru_policy(), 350, sample_size=10, pool_size=16, seed=11
        ).hit_rate
        workload = BigSmallWorkload(
            n_big=50, n_small=500, randomness=RandomSource(11, _name="wl")
        )
        deployed = CacheSim(
            350, lru_policy(), sample_size=10, seed=11, pool_size=16
        ).run(workload.requests(12000), keep_log=False).hit_rate
        assert predicted == pytest.approx(deployed, abs=1e-9)

    def test_replay_escapes_the_greedy_trap(self):
        """Replay evaluation sees long-term effects: it ranks freq/size
        above random from logs alone — which the greedy per-eviction
        reward cannot do (Table 3)."""
        lines = collect_log()
        ranked = replay_rank(
            lines,
            [random_eviction_policy(), lru_policy(), freq_size_policy()],
            350,
            sample_size=10,
            pool_size=16,
            seed=11,
        )
        assert ranked[0][0].name == "freq/size"

    def test_rank_sorted_descending(self):
        lines = collect_log(4000)
        ranked = replay_rank(
            lines, [random_eviction_policy(), lru_policy()], 350, seed=1
        )
        assert ranked[0][1] >= ranked[1][1]
