"""Unit tests for the keyspace event log."""

import pytest

from repro.cache.eviction import EvictionEvent
from repro.cache.keyspace_log import (
    KeyspaceEvent,
    format_evict_line,
    format_get_line,
    format_keyspace_line,
    parse_keyspace_line,
    read_keyspace_log,
    write_keyspace_log,
)


def make_evict_event():
    context = {
        "cand0_idle": 5.0, "cand0_freq": 0.1, "cand0_size": 1.0,
        "cand0_age": 50.0,
        "cand1_idle": 90.0, "cand1_freq": 0.01, "cand1_size": 4.0,
        "cand1_age": 200.0,
    }
    return EvictionEvent(
        time=123.0,
        victim_key="small-7",
        victim_slot=0,
        propensity=0.5,
        candidate_keys=("small-7", "big-2"),
        context=context,
    )


class TestGetLines:
    def test_roundtrip_hit(self):
        line = format_get_line(12.5, "big-3", hit=True, size=4)
        event = parse_keyspace_line(line)
        assert event.kind == "GET"
        assert event.key == "big-3"
        assert event.hit is True
        assert event.size == 4
        assert event.time == pytest.approx(12.5)

    def test_roundtrip_miss(self):
        event = parse_keyspace_line(format_get_line(1.0, "x", False, 2))
        assert event.hit is False


class TestEvictLines:
    def test_roundtrip(self):
        line = format_evict_line(make_evict_event())
        event = parse_keyspace_line(line)
        assert event.kind == "EVICT"
        assert event.victim_slot == 0
        assert event.key == "small-7"  # victim key recovered from slot
        assert len(event.candidates) == 2
        key, idle, freq, size, age = event.candidates[1]
        assert key == "big-2"
        assert idle == pytest.approx(90.0)
        assert size == pytest.approx(4.0)

    def test_reserialization_roundtrip(self):
        line = format_evict_line(make_evict_event())
        event = parse_keyspace_line(line)
        again = parse_keyspace_line(format_keyspace_line(event))
        assert again.candidates == event.candidates
        assert again.victim_slot == event.victim_slot

    def test_get_reserialization(self):
        event = parse_keyspace_line(format_get_line(9.0, "k", True, 3))
        assert parse_keyspace_line(format_keyspace_line(event)) == event


class TestMalformed:
    def test_garbage_returns_none(self):
        assert parse_keyspace_line("") is None
        assert parse_keyspace_line("hello world") is None

    def test_bad_candidate_blob_returns_none(self):
        assert parse_keyspace_line("1.0 EVICT victim=0 cands=a@b") is None

    def test_victim_slot_out_of_range_returns_none(self):
        line = "1.0 EVICT victim=5 cands=k@1@1@1@1"
        assert parse_keyspace_line(line) is None


class TestFileIO:
    def test_write_read(self, tmp_path):
        lines = [
            format_get_line(1.0, "a", True, 1),
            "corrupted line",
            format_evict_line(make_evict_event()),
        ]
        path = str(tmp_path / "keyspace.log")
        write_keyspace_log(lines, path)
        events = read_keyspace_log(path)
        assert len(events) == 2
        assert events[0].kind == "GET"
        assert events[1].kind == "EVICT"
