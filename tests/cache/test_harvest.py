"""Unit tests for keyspace-log harvesting and reward reconstruction."""

import pytest

from repro.cache.harvest import (
    eviction_dataset_from_log,
    reconstruct_rewards,
    train_cb_eviction,
)
from repro.cache.keyspace_log import (
    KeyspaceEvent,
    format_evict_line,
    format_get_line,
    parse_keyspace_line,
)
from repro.cache.eviction import EvictionEvent, random_eviction_policy
from repro.cache.sim import CacheSim
from repro.cache.workload import BigSmallWorkload
from repro.simsys.random_source import RandomSource


def get_event(time, key):
    return KeyspaceEvent(time=time, kind="GET", key=key, hit=False, size=1)


def evict_event(time, victim, slot=0, keys=None):
    keys = keys or (victim, "other")
    candidates = tuple(
        (k, 1.0, 0.1, 1.0, 10.0) for k in keys
    )
    return KeyspaceEvent(
        time=time, kind="EVICT", key=victim, victim_slot=slot,
        candidates=candidates,
    )


class TestRewardReconstruction:
    def test_lookahead_finds_next_access(self):
        events = [
            get_event(1.0, "a"),
            evict_event(5.0, "a"),
            get_event(12.0, "a"),
        ]
        [(event, reward)] = reconstruct_rewards(events)
        assert reward == pytest.approx(7.0)

    def test_never_accessed_again_gets_cap(self):
        events = [get_event(1.0, "a"), evict_event(5.0, "a")]
        [(_, reward)] = reconstruct_rewards(events, reward_cap=500.0)
        assert reward == 500.0

    def test_access_before_eviction_ignored(self):
        events = [
            get_event(1.0, "a"),
            get_event(4.0, "a"),
            evict_event(5.0, "a"),
        ]
        [(_, reward)] = reconstruct_rewards(events, reward_cap=100.0)
        assert reward == 100.0  # no access AFTER eviction

    def test_reward_clipped_at_cap(self):
        events = [evict_event(0.0, "a"), get_event(9999.0, "a")]
        [(_, reward)] = reconstruct_rewards(events, reward_cap=50.0)
        assert reward == 50.0

    def test_multiple_evictions_of_same_key(self):
        events = [
            evict_event(0.0, "a"),
            get_event(3.0, "a"),
            evict_event(4.0, "a"),
            get_event(10.0, "a"),
        ]
        rewards = [r for _, r in reconstruct_rewards(events)]
        assert rewards == [pytest.approx(3.0), pytest.approx(6.0)]

    def test_no_evictions_yields_empty(self):
        assert reconstruct_rewards([get_event(0.0, "a")]) == []


class TestEvictionDataset:
    def collect(self, n=8000):
        workload = BigSmallWorkload(
            n_big=20, n_small=200, randomness=RandomSource(3, _name="wl")
        )
        sim = CacheSim(150, random_eviction_policy(), sample_size=5, seed=3)
        return sim.run(workload.requests(n))

    def test_from_log_lines(self):
        result = self.collect()
        dataset = eviction_dataset_from_log(result.log_lines)
        assert len(dataset) == result.evictions
        assert dataset.min_propensity() == pytest.approx(0.2)
        assert dataset.reward_range.maximize is True

    def test_from_parsed_events(self):
        result = self.collect()
        events = [parse_keyspace_line(line) for line in result.log_lines]
        dataset = eviction_dataset_from_log([e for e in events if e])
        assert len(dataset) == result.evictions

    def test_context_has_candidate_blocks(self):
        result = self.collect()
        dataset = eviction_dataset_from_log(result.log_lines)
        context = dataset[0].context
        assert "cand0_idle" in context
        assert "cand0_size" in context

    def test_rewards_bounded_by_cap(self):
        result = self.collect()
        dataset = eviction_dataset_from_log(result.log_lines, reward_cap=100.0)
        assert float(dataset.rewards().max()) <= 100.0
        assert float(dataset.rewards().min()) >= 0.0

    def test_empty_log_raises(self):
        with pytest.raises(ValueError):
            eviction_dataset_from_log(["garbage"])


class TestEligibilityAwareActionSpace:
    def test_eligible_slots_follow_candidate_count(self):
        from repro.cache.harvest import eviction_action_space

        space = eviction_action_space(5)
        two_candidates = {
            "cand0_size": 1.0, "cand1_size": 4.0,
            "cand0_idle": 2.0, "cand1_idle": 9.0,
        }
        assert space.actions(two_candidates) == [0, 1]
        five = {f"cand{i}_size": 1.0 for i in range(5)}
        assert space.actions(five) == [0, 1, 2, 3, 4]

    def test_tiny_store_evictions_harvest_correctly(self):
        """When the store is smaller than maxmemory-samples, the
        logged propensities and the dataset's eligible actions agree."""
        from repro.cache.eviction import SampledEvictionEngine
        from repro.cache.keyspace_log import format_evict_line, format_get_line
        from repro.cache.store import KeyValueStore

        store = KeyValueStore(3)
        lines = []
        for i, key in enumerate(("a", "b", "c")):
            store.insert(key, 1, now=float(i))
            lines.append(format_get_line(float(i), key, False, 1))
        engine = SampledEvictionEngine(
            random_eviction_policy(), sample_size=10,
            randomness=RandomSource(0),
        )
        event = engine.evict_one(store, now=3.0)
        lines.append(format_evict_line(event))
        dataset = eviction_dataset_from_log(lines, sample_size=10)
        assert len(dataset) == 1
        interaction = dataset[0]
        assert interaction.propensity == pytest.approx(1 / 3)
        eligible = dataset.action_space.actions(interaction.context)
        assert eligible == [0, 1, 2]

    def test_estimation_respects_eligibility(self):
        """Evaluating LRU on a variable-sample log never asks it to
        score absent slots."""
        from repro.core import IPSEstimator
        from repro.cache.eviction import lru_policy

        result = None
        workload = BigSmallWorkload(
            n_big=5, n_small=20, randomness=RandomSource(8, _name="wl")
        )
        sim = CacheSim(12, random_eviction_policy(), sample_size=10, seed=8)
        run = sim.run(workload.requests(2000))
        dataset = eviction_dataset_from_log(run.log_lines, sample_size=10)
        result = IPSEstimator().estimate(lru_policy(), dataset)
        assert result.n == len(dataset)


class TestCBTraining:
    def test_learned_policy_predicts_idle_items_stay_cold(self):
        """The learner should discover that long-idle candidates have a
        longer time-to-next-access (the LRU-like signal)."""
        workload = BigSmallWorkload(
            n_big=20, n_small=200, randomness=RandomSource(4, _name="wl")
        )
        sim = CacheSim(150, random_eviction_policy(), sample_size=5, seed=4)
        result = sim.run(workload.requests(12000))
        dataset = eviction_dataset_from_log(result.log_lines)
        policy = train_cb_eviction(dataset)
        # Craft: candidate 0 hot (frequent, recently used), 1 cold.
        context = {
            "cand0_idle": 1.0, "cand0_freq": 0.5, "cand0_size": 1.0,
            "cand0_age": 100.0,
            "cand1_idle": 200.0, "cand1_freq": 0.005, "cand1_size": 1.0,
            "cand1_age": 400.0,
        }
        assert policy.action(context, [0, 1]) == 1

    def test_invalid_passes(self):
        with pytest.raises(ValueError):
            train_cb_eviction(None, passes=0)
