"""Unit tests for cache workloads."""

import numpy as np
import pytest

from repro.cache.workload import BigSmallWorkload, ZipfWorkload
from repro.simsys.random_source import RandomSource


class TestBigSmallWorkload:
    def test_paper_ratios(self):
        """'Queried twice as frequently but four times as big.'"""
        wl = BigSmallWorkload(randomness=RandomSource(0))
        assert wl.big_size == 4 * wl.small_size
        requests = list(wl.requests(60000))
        big = [r for r in requests if r.key.startswith("big-")]
        small = [r for r in requests if r.key.startswith("small-")]
        per_big = len(big) / wl.n_big
        per_small = len(small) / wl.n_small
        assert per_big / per_small == pytest.approx(2.0, rel=0.1)

    def test_sizes_match_keys(self):
        wl = BigSmallWorkload(randomness=RandomSource(1))
        for request in wl.requests(200):
            assert request.size == wl.size_of(request.key)

    def test_total_bytes(self):
        wl = BigSmallWorkload(n_big=10, n_small=100, small_size=2,
                              size_ratio=4)
        assert wl.total_bytes == 10 * 8 + 100 * 2

    def test_size_of_unknown_key(self):
        with pytest.raises(ValueError):
            BigSmallWorkload().size_of("weird-key")

    def test_unit_time_steps(self):
        wl = BigSmallWorkload(randomness=RandomSource(2))
        times = [r.time for r in wl.requests(10)]
        assert times == [float(t) for t in range(10)]

    def test_deterministic(self):
        a = [r.key for r in
             BigSmallWorkload(randomness=RandomSource(3)).requests(100)]
        b = [r.key for r in
             BigSmallWorkload(randomness=RandomSource(3)).requests(100)]
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            BigSmallWorkload(n_big=0)
        with pytest.raises(ValueError):
            BigSmallWorkload(small_size=0)
        with pytest.raises(ValueError):
            BigSmallWorkload(frequency_ratio=0.0)
        with pytest.raises(ValueError):
            list(BigSmallWorkload().requests(0))


class TestZipfWorkload:
    def test_popularity_skew(self):
        wl = ZipfWorkload(n_items=200, alpha=1.0,
                          randomness=RandomSource(4))
        keys = [r.key for r in wl.requests(10000)]
        top = keys.count("item-0")
        mid = keys.count("item-100")
        assert top > 5 * max(mid, 1)

    def test_sizes_stable_per_key(self):
        wl = ZipfWorkload(randomness=RandomSource(5))
        sizes = {}
        for request in wl.requests(2000):
            if request.key in sizes:
                assert sizes[request.key] == request.size
            sizes[request.key] = request.size

    def test_size_bounds(self):
        wl = ZipfWorkload(min_size=2, max_size=5, randomness=RandomSource(6))
        for request in wl.requests(500):
            assert 2 <= request.size <= 5

    def test_size_of_matches_requests(self):
        wl = ZipfWorkload(randomness=RandomSource(7))
        for request in wl.requests(100):
            assert wl.size_of(request.key) == request.size

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfWorkload(n_items=0)
        with pytest.raises(ValueError):
            ZipfWorkload(alpha=0.0)
        with pytest.raises(ValueError):
            ZipfWorkload(min_size=5, max_size=2)
        with pytest.raises(ValueError):
            list(ZipfWorkload().requests(0))
