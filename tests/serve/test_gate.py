"""Tests for the OPE promotion gate and its subprocess runner.

The gate is the safety property of the serving loop: no candidate is
promoted without a reliable offline win over the incumbent, and an
evaluation that crashes — or is SIGKILLed — resolves to a refusal, not
a hang.
"""

import os
import signal

import pytest

from repro.core.policies import ConstantPolicy, UniformRandomPolicy
from repro.serve import DecisionService, GateConfig, GateRunner, evaluate_candidate
from repro.serve.gate import GateDecision


#: On the 8-row synthetic pool, action 2 averages 0.600 reward while
#: the uniform incumbent averages ~0.512 — a gap DR resolves easily
#: from a few hundred logged rows.
GOOD_ACTION = 2


def serve_log(tmp_path, rows=512, name="serve.jsonl"):
    """Serve ``rows`` uniform decisions on synthetic; return the log path."""
    service = DecisionService(
        "synthetic",
        UniformRandomPolicy(),
        pool_rows=8,
        seed=3,
        shard_size=128,
        log_path=str(tmp_path / name),
        config={"n_actions": 4},
    )
    service.decide(rows)
    service.flush()
    service.close()
    return service.log_path


class TestEvaluateCandidate:
    def test_better_candidate_promotes(self, tmp_path):
        log = serve_log(tmp_path)
        decision = evaluate_candidate(
            log, "greedy", ConstantPolicy(GOOD_ACTION), UniformRandomPolicy()
        )
        assert decision.promote
        assert decision.reasons == ()
        assert decision.n == 512
        assert decision.candidate_value > decision.incumbent_value
        assert decision.verdict is not None
        assert decision.details["estimator"] == "doubly-robust"

    def test_thin_log_is_refused(self, tmp_path):
        log = serve_log(tmp_path, rows=64)
        decision = evaluate_candidate(
            log, "greedy", ConstantPolicy(GOOD_ACTION), UniformRandomPolicy(),
            GateConfig(min_rows=256),
        )
        assert not decision.promote
        assert any("64 rows" in reason for reason in decision.reasons)

    def test_margin_blocks_marginal_wins(self, tmp_path):
        log = serve_log(tmp_path)
        decision = evaluate_candidate(
            log, "greedy", ConstantPolicy(GOOD_ACTION), UniformRandomPolicy(),
            GateConfig(margin=10.0),
        )
        assert not decision.promote
        assert any("margin" in reason for reason in decision.reasons)

    def test_missing_log_becomes_refusal_not_exception(self, tmp_path):
        decision = evaluate_candidate(
            str(tmp_path / "absent.jsonl"), "greedy",
            ConstantPolicy(GOOD_ACTION), UniformRandomPolicy(),
        )
        assert not decision.promote
        assert any(
            reason.startswith("evaluation failed")
            for reason in decision.reasons
        )

    def test_decision_round_trips_through_dict(self):
        decision = GateDecision(
            candidate="x", promote=False, reasons=("a", "b"),
            candidate_value=0.5, incumbent_value=0.6, verdict="OK",
            n=10, details={"estimator": "dr"},
        )
        assert GateDecision.from_dict(decision.to_dict()) == decision


class TestGateRunner:
    def test_subprocess_gate_reports_a_decision(self, tmp_path):
        log = serve_log(tmp_path)
        runner = GateRunner(
            log, "greedy", ConstantPolicy(GOOD_ACTION), UniformRandomPolicy()
        )
        decision = runner.wait(timeout=60)
        assert decision is not None
        assert decision.promote
        # Polling after the decision keeps returning the same object.
        assert runner.poll() is decision
        assert runner.wait() is decision

    def test_sigkilled_subprocess_yields_refusal(self, tmp_path):
        log = serve_log(tmp_path)
        runner = GateRunner(
            log, "greedy", ConstantPolicy(GOOD_ACTION), UniformRandomPolicy()
        )
        os.kill(runner.pid, signal.SIGKILL)
        decision = runner.wait(timeout=60)
        assert decision is not None
        assert not decision.promote
        assert any(
            "died without reporting" in reason and "-9" in reason
            for reason in decision.reasons
        )

    def test_terminate_abandons_cleanly(self, tmp_path):
        log = serve_log(tmp_path)
        runner = GateRunner(
            log, "greedy", ConstantPolicy(GOOD_ACTION), UniformRandomPolicy()
        )
        runner.terminate()
        assert not runner.process.is_alive()


class TestServiceGateLifecycle:
    def make_service(self, tmp_path):
        service = DecisionService(
            "synthetic",
            UniformRandomPolicy(),
            pool_rows=8,
            seed=3,
            shard_size=128,
            log_path=str(tmp_path / "serve.jsonl"),
            config={"n_actions": 4},
        )
        service.register_candidate("greedy", ConstantPolicy(GOOD_ACTION))
        return service

    def test_gate_promotes_through_the_service(self, tmp_path):
        service = self.make_service(tmp_path)
        service.decide(512)
        service.start_gate("greedy")
        decision = service.gate.wait(timeout=60)
        assert decision is not None
        polled = service.poll_gate()
        assert polled.promote
        assert service.gate is None
        assert service.policies.incumbent.name == "greedy"
        assert service.gate_decisions == [polled]
        service.close()

    def test_gate_requires_a_log(self):
        service = DecisionService(
            "synthetic", UniformRandomPolicy(), pool_rows=64,
            config={"n_actions": 4},
        )
        service.register_candidate("greedy", ConstantPolicy(GOOD_ACTION))
        with pytest.raises(RuntimeError, match="log_path"):
            service.start_gate("greedy")

    def test_second_gate_rejected_while_running(self, tmp_path):
        service = self.make_service(tmp_path)
        service.register_candidate("other", ConstantPolicy(0))
        service.decide(512)
        service.start_gate("greedy")
        try:
            with pytest.raises(RuntimeError, match="already running"):
                service.start_gate("other")
        finally:
            service.close()

    def test_failed_gate_leaves_incumbent_alone(self, tmp_path):
        service = self.make_service(tmp_path)
        service.decide(64)
        service.start_gate("greedy", GateConfig(min_rows=256))
        service.gate.wait(timeout=60)
        decision = service.poll_gate()
        assert not decision.promote
        assert service.policies.incumbent.name == "incumbent"
        # The refused candidate stays registered for another round.
        assert "greedy" in service.policies.candidates()
        service.close()
