"""Tests for the online policy server: registry, gate, service, batcher."""
