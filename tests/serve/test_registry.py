"""Unit tests for the versioned policy registry."""

import pytest

from repro.core.policies import ConstantPolicy, UniformRandomPolicy
from repro.serve.registry import PolicyRegistry


class TestBoot:
    def test_boot_incumbent_is_version_one(self):
        registry = PolicyRegistry(UniformRandomPolicy())
        assert registry.incumbent.version == 1
        assert registry.incumbent.name == "incumbent"
        assert registry.history == [
            {"version": 1, "name": "incumbent", "reason": "boot"}
        ]

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError, match="stream-key segment"):
            PolicyRegistry(UniformRandomPolicy(), name="has space")
        with pytest.raises(ValueError, match="stream-key segment"):
            PolicyRegistry(UniformRandomPolicy(), name="")


class TestCandidates:
    def test_register_and_lookup(self):
        registry = PolicyRegistry(UniformRandomPolicy())
        version = registry.register("greedy", ConstantPolicy(1))
        assert version.version == 2
        assert registry.candidate("greedy") is version
        assert list(registry.candidates()) == ["greedy"]

    def test_register_does_not_change_incumbent(self):
        registry = PolicyRegistry(UniformRandomPolicy())
        registry.register("greedy", ConstantPolicy(1))
        assert registry.incumbent.version == 1

    def test_unknown_candidate_names_the_registered_set(self):
        registry = PolicyRegistry(UniformRandomPolicy())
        registry.register("a", ConstantPolicy(0))
        with pytest.raises(KeyError, match=r"registered: \['a'\]"):
            registry.candidate("b")

    def test_incumbent_name_collision_rejected(self):
        registry = PolicyRegistry(UniformRandomPolicy(), name="live")
        with pytest.raises(ValueError, match="collides"):
            registry.register("live", ConstantPolicy(0))

    def test_unregister_is_idempotent(self):
        registry = PolicyRegistry(UniformRandomPolicy())
        registry.register("greedy", ConstantPolicy(1))
        registry.unregister("greedy")
        registry.unregister("greedy")
        assert registry.candidates() == {}


class TestPromotion:
    def test_promote_swaps_incumbent_and_mints_fresh_version(self):
        registry = PolicyRegistry(UniformRandomPolicy())
        registered = registry.register("greedy", ConstantPolicy(1))
        promoted = registry.promote("greedy")
        assert registry.incumbent is promoted
        assert promoted.version > registered.version
        assert promoted.policy is registered.policy
        assert "greedy" not in registry.candidates()

    def test_promotion_recorded_in_history(self):
        registry = PolicyRegistry(UniformRandomPolicy())
        registry.register("greedy", ConstantPolicy(1))
        registry.promote("greedy", reason="gate")
        assert registry.history[-1] == {
            "version": 3,
            "name": "greedy",
            "reason": "gate",
        }

    def test_versions_never_reused_across_repromotions(self):
        registry = PolicyRegistry(UniformRandomPolicy())
        seen = {registry.incumbent.version}
        for round_ in range(3):
            registry.register("challenger", ConstantPolicy(round_ % 2))
            promoted = registry.promote("challenger")
            assert promoted.version not in seen
            seen.add(promoted.version)
            registry.install("incumbent", UniformRandomPolicy())
            seen.add(registry.incumbent.version)

    def test_install_swaps_directly(self):
        registry = PolicyRegistry(UniformRandomPolicy())
        installed = registry.install(
            "canary-x", ConstantPolicy(0), reason="canary"
        )
        assert registry.incumbent is installed
        assert registry.history[-1]["reason"] == "canary"
