"""Tests for the synchronous decision core.

The load-bearing claims: a service log is bit-identical to what
``Dataset.save_jsonl`` would write (so the whole offline toolchain
ingests it unchanged), decisions replay deterministically from the
master seed, shadow mode never perturbs the serving stream, and the
canary's mixture propensities are the true marginals.
"""

import numpy as np
import pytest

from repro.audit.ledger import verify_jsonl
from repro.core.policies import ConstantPolicy, EpsilonGreedyPolicy, UniformRandomPolicy
from repro.core.types import Dataset
from repro.obs.monitors import MonitorSuite, serving_monitors, use_monitors
from repro.serve import DecisionService


def make_service(tmp_path=None, **kwargs):
    defaults = dict(
        pool_rows=256,
        seed=11,
        shard_size=128,
        config={"n_actions": 4},
    )
    defaults.update(kwargs)
    if tmp_path is not None:
        defaults.setdefault("log_path", str(tmp_path / "serve.jsonl"))
    return DecisionService("synthetic", UniformRandomPolicy(), **defaults)


class TestDecide:
    def test_slice_is_aligned_and_contiguous(self):
        service = make_service()
        first = service.decide(10)
        second = service.decide(5)
        assert list(first.ordinals) == list(range(10))
        assert list(second.ordinals) == list(range(10, 15))
        assert first.n == 10 and second.n == 5
        assert service.served == 15

    def test_pool_wraps_by_ordinal(self):
        service = make_service(pool_rows=32)
        decisions = service.decide(80)
        assert list(decisions.rows) == [o % 32 for o in range(80)]

    def test_rewards_follow_the_scenario_law(self):
        service = make_service()
        decisions = service.decide(64)
        expected = ((decisions.rows * 31 + decisions.actions * 17) % 97) / 96.0
        assert np.array_equal(decisions.rewards, expected)

    def test_nonpositive_count_rejected(self):
        service = make_service()
        with pytest.raises(ValueError, match="positive"):
            service.decide(0)

    def test_deterministic_replay_across_batchings(self):
        one = make_service()
        parts = [one.decide(k) for k in (7, 100, 150, 43)]
        two = make_service()
        whole = two.decide(300)
        assert np.array_equal(
            np.concatenate([p.actions for p in parts]), whole.actions
        )
        assert np.array_equal(
            np.concatenate([p.propensities for p in parts]),
            whole.propensities,
        )
        assert one.ledger.head == two.ledger.head

    def test_view_carves_without_copying(self):
        service = make_service()
        decisions = service.decide(20)
        view = decisions.view(5, 9)
        assert view.n == 4
        assert list(view.ordinals) == [5, 6, 7, 8]
        assert view.version == decisions.version
        assert np.shares_memory(view.actions, decisions.actions)

    def test_to_dicts_carries_version_attribution(self):
        service = make_service()
        records = service.decide(3).to_dicts()
        assert [r["ordinal"] for r in records] == [0, 1, 2]
        assert all(r["policy_version"] == 1 for r in records)
        assert all(r["policy_name"] == "incumbent" for r in records)


class TestLogRoundTrip:
    def test_flush_produces_verifiable_chain(self, tmp_path):
        service = make_service(tmp_path)
        service.decide(100)
        service.decide(60)
        out = service.flush()
        assert out["written"] == 160
        report = verify_jsonl(
            service.log_path,
            expected_head=service.ledger.head,
            expected_n=160,
        )
        assert report.ok
        service.close()

    def test_log_round_trips_bit_identically(self, tmp_path):
        service = make_service(tmp_path)
        service.decide(300)
        service.flush()
        service.close()
        dataset = Dataset.load_jsonl(service.log_path, verify_ledger="require")
        resaved = tmp_path / "resaved.jsonl"
        dataset.save_jsonl(str(resaved))
        original = open(service.log_path, "rb").read()
        assert original == resaved.read_bytes()

    def test_incremental_flushes_extend_one_chain(self, tmp_path):
        service = make_service(tmp_path)
        heads = []
        for _ in range(3):
            service.decide(50)
            heads.append(service.flush()["head"])
        assert len(set(heads)) == 3
        report = verify_jsonl(
            service.log_path, expected_head=heads[-1], expected_n=150
        )
        assert report.ok
        service.close()

    def test_flush_without_log_path_rejected(self):
        service = make_service()
        service.decide(10)
        with pytest.raises(RuntimeError, match="log_path"):
            service.flush()


class TestShadow:
    def test_shadow_requires_registered_candidate(self):
        service = make_service()
        with pytest.raises(KeyError):
            service.start_shadow("ghost")

    def test_shadow_never_perturbs_the_serving_stream(self):
        plain = make_service()
        baseline = plain.decide(200)
        shadowed = make_service()
        shadowed.register_candidate("greedy", ConstantPolicy(1))
        shadowed.start_shadow("greedy")
        observed = shadowed.decide(200)
        assert np.array_equal(baseline.actions, observed.actions)
        assert np.array_equal(baseline.propensities, observed.propensities)
        assert plain.ledger.head == shadowed.ledger.head

    def test_shadow_stats_accumulate(self):
        service = make_service()
        service.register_candidate("greedy", ConstantPolicy(1))
        report = service.start_shadow("greedy")
        decisions = service.decide(120)
        summary = report.summary()
        assert summary["n"] == 120
        expected_agreement = float(np.mean(decisions.actions == 1))
        assert summary["agreement_rate"] == pytest.approx(expected_agreement)
        assert summary["mean_propensity"] == pytest.approx(1.0)
        assert summary["start_ordinal"] == 0

    def test_stop_shadow_returns_final_summary(self):
        service = make_service()
        service.register_candidate("greedy", ConstantPolicy(1))
        service.start_shadow("greedy")
        service.decide(30)
        summary = service.stop_shadow("greedy")
        assert summary["n"] == 30
        assert service.shadow_summaries() == []
        with pytest.raises(KeyError):
            service.stop_shadow("greedy")

    def test_double_shadow_rejected(self):
        service = make_service()
        service.register_candidate("greedy", ConstantPolicy(1))
        service.start_shadow("greedy")
        with pytest.raises(ValueError, match="already shadowed"):
            service.start_shadow("greedy")


class TestCanary:
    def test_canary_propensities_are_true_marginals(self):
        service = make_service()
        service.register_candidate(
            "explore", EpsilonGreedyPolicy(ConstantPolicy(1), 0.5)
        )
        service.start_canary("explore", 0.2)
        decisions = service.decide(64)
        assert decisions.policy_name == "canary-explore"
        # Marginal over {uniform 0.8, eps-greedy 0.2}: action 1 gets
        # 0.8·0.25 + 0.2·(0.5 + 0.5/4); the rest get 0.8·0.25 + 0.2·0.125.
        expected = np.where(
            decisions.actions == 1,
            0.8 * 0.25 + 0.2 * 0.625,
            0.8 * 0.25 + 0.2 * 0.125,
        )
        assert np.allclose(decisions.propensities, expected)

    def test_stop_canary_reinstates_base_policy(self):
        service = make_service()
        service.register_candidate("greedy", ConstantPolicy(1))
        service.start_canary("greedy", 0.1)
        service.decide(16)
        summary = service.stop_canary()
        assert summary["name"] == "greedy"
        assert summary["ordinals"] == [0, 16]
        assert service.policies.incumbent.name == "incumbent"
        after = service.decide(8)
        assert np.allclose(after.propensities, 0.25)

    def test_second_canary_rejected_while_running(self):
        service = make_service()
        service.register_candidate("a", ConstantPolicy(0))
        service.register_candidate("b", ConstantPolicy(1))
        service.start_canary("a", 0.1)
        with pytest.raises(RuntimeError, match="already running"):
            service.start_canary("b", 0.1)

    def test_bad_fraction_rejected(self):
        service = make_service()
        service.register_candidate("a", ConstantPolicy(0))
        for fraction in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError, match="fraction"):
                service.start_canary("a", fraction)


class TestMonitorsAndStats:
    def test_serve_monitors_fold_decides(self):
        suite = MonitorSuite(serving_monitors())
        with use_monitors(suite):
            service = make_service()
            service.decide(100)
        states = suite.states()
        assert states["serve.latency"]["served"] == 100
        assert states["serve.errors"]["served"] == 100
        assert suite.overall_level() == "OK"

    def test_stats_snapshot_is_json_able(self):
        import json

        service = make_service()
        service.register_candidate("greedy", ConstantPolicy(1))
        service.start_shadow("greedy")
        service.decide(40)
        stats = service.stats()
        json.dumps(stats)
        assert stats["served"] == 40
        assert stats["incumbent"] == {"version": 1, "name": "incumbent"}
        assert stats["candidates"] == ["greedy"]
        assert stats["ledger"]["n"] == 40

    def test_manifest_serving_section(self):
        import json

        service = make_service()
        section = service.manifest_serving_section()
        json.dumps(section)
        assert section["scenario"] == "synthetic"
        assert section["history"][0]["reason"] == "boot"


class TestScenarioPools:
    @pytest.mark.parametrize(
        "scenario,pool_rows,config",
        [
            ("machinehealth", 96, {}),
            ("loadbalance", 96, {}),
            # Cache pools one context per EVICT event, so the request
            # count must overrun a small capacity to produce a pool.
            ("cache", 400, {"capacity": 30, "n_big": 5, "n_small": 40}),
        ],
    )
    def test_real_scenarios_serve_and_verify(
        self, scenario, pool_rows, config, tmp_path
    ):
        log = tmp_path / f"{scenario}.jsonl"
        service = DecisionService(
            scenario,
            UniformRandomPolicy(),
            pool_rows=pool_rows,
            seed=5,
            shard_size=64,
            log_path=str(log),
            config=config,
        )
        decisions = service.decide(2 * service.inputs.n + 7)
        assert decisions.n == 2 * service.inputs.n + 7
        assert np.all(decisions.propensities > 0)
        service.flush()
        report = verify_jsonl(str(log), expected_head=service.ledger.head)
        assert report.ok
        dataset = Dataset.load_jsonl(str(log), verify_ledger="require")
        assert len(dataset) == decisions.n
        service.close()
