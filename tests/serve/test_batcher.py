"""Tests for the request batcher: coalescing, carving, zero drops."""

import asyncio

import numpy as np
import pytest

from repro.core.policies import UniformRandomPolicy
from repro.serve import DecisionService, RequestBatcher


def make_service(**kwargs):
    defaults = dict(
        pool_rows=256, seed=11, shard_size=128, config={"n_actions": 4}
    )
    defaults.update(kwargs)
    return DecisionService("synthetic", UniformRandomPolicy(), **defaults)


def run(coro):
    return asyncio.run(coro)


class TestAsk:
    def test_single_ask_round_trips(self):
        async def scenario():
            service = make_service()
            batcher = RequestBatcher(service)
            await batcher.start()
            decisions = await batcher.ask(8)
            await batcher.stop()
            return decisions, batcher

        decisions, batcher = run(scenario())
        assert decisions.n == 8
        assert list(decisions.ordinals) == list(range(8))
        assert batcher.answered == 1

    def test_concurrent_asks_coalesce_into_one_decide(self):
        async def scenario():
            service = make_service()
            batcher = RequestBatcher(service)
            await batcher.start()
            results = await asyncio.gather(
                *(batcher.ask(4) for _ in range(25))
            )
            await batcher.stop()
            return service, results

        service, results = run(scenario())
        assert service.served == 100
        # FIFO carving: ordinals are contiguous and non-overlapping.
        ordinals = np.concatenate([r.ordinals for r in results])
        assert sorted(ordinals.tolist()) == list(range(100))
        assert all(r.n == 4 for r in results)

    def test_coalesced_asks_match_direct_decide(self):
        async def scenario():
            service = make_service()
            batcher = RequestBatcher(service)
            await batcher.start()
            results = await asyncio.gather(
                *(batcher.ask(k) for k in (3, 17, 1, 29))
            )
            await batcher.stop()
            return results

        results = run(scenario())
        batched = np.concatenate([r.actions for r in results])
        direct = make_service().decide(50).actions
        assert np.array_equal(batched, direct)

    def test_ask_validates_and_requires_start(self):
        async def unstarted():
            batcher = RequestBatcher(make_service())
            await batcher.ask(1)

        async def bad_count():
            batcher = RequestBatcher(make_service())
            await batcher.start()
            try:
                await batcher.ask(0)
            finally:
                await batcher.stop()

        with pytest.raises(RuntimeError, match="not started"):
            run(unstarted())
        with pytest.raises(ValueError, match="positive"):
            run(bad_count())

    def test_max_batch_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            RequestBatcher(make_service(), max_batch=0)


class TestBatchShaping:
    def test_max_batch_splits_but_serves_everything(self):
        async def scenario():
            service = make_service()
            batcher = RequestBatcher(service, max_batch=16)
            await batcher.start()
            results = await asyncio.gather(
                *(batcher.ask(10) for _ in range(8))
            )
            await batcher.stop()
            return service, results

        service, results = run(scenario())
        assert service.served == 80
        assert sum(r.n for r in results) == 80

    def test_oversized_ask_served_whole(self):
        async def scenario():
            service = make_service()
            batcher = RequestBatcher(service, max_batch=4)
            await batcher.start()
            decisions = await batcher.ask(64)
            await batcher.stop()
            return decisions

        decisions = run(scenario())
        assert decisions.n == 64
        assert list(decisions.ordinals) == list(range(64))


class TestFailure:
    def test_decide_error_fails_the_asks_not_the_loop(self):
        async def scenario():
            service = make_service()
            batcher = RequestBatcher(service)
            await batcher.start()

            def explode(k):
                raise RuntimeError("reward backend down")

            original, service.decide = service.decide, explode
            with pytest.raises(RuntimeError, match="backend down"):
                await batcher.ask(8)
            service.decide = original
            # The flusher survives and serves the next ask.
            decisions = await batcher.ask(8)
            await batcher.stop()
            return service, batcher, decisions

        service, batcher, decisions = run(scenario())
        assert decisions.n == 8
        assert batcher.errored == 1
        assert batcher.answered == 1
        assert service.errors == 1

    def test_stop_drains_queued_asks(self):
        async def scenario():
            service = make_service()
            batcher = RequestBatcher(service)
            await batcher.start()
            asks = [
                asyncio.get_running_loop().create_task(batcher.ask(5))
                for _ in range(10)
            ]
            await asyncio.sleep(0)  # let every ask reach the queue
            await batcher.stop()
            return service, await asyncio.gather(*asks)

        service, results = run(scenario())
        assert service.served == 50
        assert sum(r.n for r in results) == 50
