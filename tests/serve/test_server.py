"""Protocol tests for the TCP policy server.

Each test boots a real :class:`PolicyServer` on an ephemeral loopback
port, drives it with newline-delimited JSON over
``asyncio.open_connection``, and checks the response contract — ok
flags, op echoes, and the error envelope that keeps a malformed
request from taking the connection down.
"""

import asyncio
import json

from repro.core.policies import ConstantPolicy, UniformRandomPolicy
from repro.serve import DecisionService, GateConfig, PolicyServer

#: The dominant action on the 8-row synthetic pool (see test_gate).
GOOD_ACTION = 2


def make_server(tmp_path=None, **kwargs):
    service_kwargs = dict(
        pool_rows=8, seed=3, shard_size=128, config={"n_actions": 4}
    )
    if tmp_path is not None:
        service_kwargs["log_path"] = str(tmp_path / "serve.jsonl")
    service = DecisionService(
        "synthetic", UniformRandomPolicy(), **service_kwargs
    )
    return PolicyServer(service, **kwargs)


class Client:
    """One JSON-lines connection to the server under test."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def connect(cls, server):
        reader, writer = await asyncio.open_connection(
            server.host, server.port
        )
        return cls(reader, writer)

    async def call(self, **request):
        self.writer.write(json.dumps(request).encode() + b"\n")
        await self.writer.drain()
        line = await self.reader.readline()
        return json.loads(line)

    async def close(self):
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def run_with_server(scenario, tmp_path=None, **server_kwargs):
    """Boot a server, run ``scenario(server, client)``, tear down."""

    async def main():
        server = make_server(tmp_path, **server_kwargs)
        await server.start()
        client = await Client.connect(server)
        try:
            return await scenario(server, client)
        finally:
            await client.close()
            await server.stop()

    return asyncio.run(main())


class TestBasicOps:
    def test_ping_and_act(self):
        async def scenario(server, client):
            ping = await client.call(op="ping")
            act = await client.call(op="act", n=5)
            return ping, act

        ping, act = run_with_server(scenario)
        assert ping == {"ok": True, "op": "ping", "served": 0}
        assert act["ok"] and act["op"] == "act"
        assert len(act["decisions"]) == 5
        assert act["policy_version"] == 1
        assert act["policy_name"] == "incumbent"
        assert [d["ordinal"] for d in act["decisions"]] == list(range(5))

    def test_act_default_n_is_one(self):
        async def scenario(server, client):
            return await client.call(op="act")

        response = run_with_server(scenario)
        assert len(response["decisions"]) == 1

    def test_stats_reflects_traffic(self):
        async def scenario(server, client):
            await client.call(op="act", n=7)
            return await client.call(op="stats")

        response = run_with_server(scenario)
        assert response["stats"]["served"] == 7
        assert response["stats"]["ledger"]["n"] == 7

    def test_flush_and_shutdown(self, tmp_path):
        async def scenario(server, client):
            await client.call(op="act", n=9)
            flush = await client.call(op="flush")
            down = await client.call(op="shutdown")
            await server.wait_closed()
            return flush, down

        flush, down = run_with_server(scenario, tmp_path)
        assert flush["flush"]["written"] == 9
        assert down == {"ok": True, "op": "shutdown", "served": 9}


class TestErrorEnvelope:
    def test_unknown_op_keeps_the_connection(self):
        async def scenario(server, client):
            bad = await client.call(op="frobnicate")
            good = await client.call(op="ping")
            return bad, good, server.service.errors

        bad, good, errors = run_with_server(scenario)
        assert bad == {
            "ok": False, "op": "frobnicate",
            "error": "unknown op 'frobnicate'",
        }
        assert good["ok"]
        assert errors == 1

    def test_malformed_json_keeps_the_connection(self):
        async def scenario(server, client):
            client.writer.write(b"this is not json\n")
            await client.writer.drain()
            bad = json.loads(await client.reader.readline())
            good = await client.call(op="ping")
            return bad, good

        bad, good = run_with_server(scenario)
        assert not bad["ok"]
        assert bad["op"] == "invalid"
        assert good["ok"]

    def test_op_failure_reports_not_crashes(self):
        async def scenario(server, client):
            return await client.call(op="shadow", name="ghost")

        response = run_with_server(scenario)
        assert not response["ok"]
        assert "ghost" in response["error"]


class TestCandidateOps:
    def test_register_needs_a_factory(self):
        async def scenario(server, client):
            return await client.call(
                op="register", name="greedy", policy="constant:2"
            )

        response = run_with_server(scenario)
        assert not response["ok"]
        assert "policy factory" in response["error"]

    def test_register_shadow_and_forced_swap(self):
        def factory(spec):
            kind, _, arg = spec.partition(":")
            assert kind == "constant"
            return ConstantPolicy(int(arg))

        async def scenario(server, client):
            registered = await client.call(
                op="register", name="greedy", policy="constant:2"
            )
            shadow = await client.call(op="shadow", name="greedy")
            await client.call(op="act", n=20)
            stopped = await client.call(op="shadow-stop", name="greedy")
            swapped = await client.call(op="swap", name="greedy")
            act = await client.call(op="act", n=4)
            return registered, shadow, stopped, swapped, act

        registered, shadow, stopped, swapped, act = run_with_server(
            scenario, policy_factory=factory
        )
        assert registered["candidate"]["name"] == "greedy"
        assert shadow["shadow"]["n"] == 0
        assert stopped["shadow"]["n"] == 20
        assert swapped["incumbent"]["name"] == "greedy"
        assert act["policy_name"] == "greedy"
        assert all(d["propensity"] == 1.0 for d in act["decisions"])

    def test_canary_lifecycle(self):
        async def scenario(server, client):
            server.service.register_candidate("greedy", ConstantPolicy(1))
            started = await client.call(
                op="canary", name="greedy", fraction=0.25
            )
            await client.call(op="act", n=12)
            stopped = await client.call(op="canary-stop")
            return started, stopped

        started, stopped = run_with_server(scenario)
        assert started["canary"]["name"] == "canary-greedy"
        assert stopped["canary"]["name"] == "greedy"
        assert stopped["canary"]["ordinals"] == [0, 12]

    def test_promote_runs_the_gate_and_swaps(self, tmp_path):
        async def scenario(server, client):
            server.service.register_candidate(
                "greedy", ConstantPolicy(GOOD_ACTION)
            )
            await client.call(op="act", n=512)
            promote = await client.call(op="promote", name="greedy")
            act = await client.call(op="act", n=4)
            return promote, act

        promote, act = run_with_server(
            scenario, tmp_path, gate_config=GateConfig(min_rows=256)
        )
        assert promote["decision"]["promote"] is True
        assert promote["decision"]["n"] == 512
        assert act["policy_name"] == "greedy"
        assert all(
            d["action"] == GOOD_ACTION for d in act["decisions"]
        )
