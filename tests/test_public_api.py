"""Public API surface checks.

Every name a package's ``__init__`` exports must import and be listed
in ``__all__``; downstream users program against this surface.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.core.estimators",
    "repro.core.learners",
    "repro.simsys",
    "repro.loadbalance",
    "repro.cache",
    "repro.machinehealth",
    "repro.chaos",
    "repro.obs",
    "repro.audit",
    "repro.serve",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), f"{package_name} must define __all__"
    for name in package.__all__:
        assert hasattr(package, name), (
            f"{package_name}.__all__ lists {name!r} which does not exist"
        )


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_has_no_duplicates(package_name):
    package = importlib.import_module(package_name)
    assert len(package.__all__) == len(set(package.__all__))


def test_version_string():
    import repro

    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2


def test_core_star_import_is_clean():
    namespace = {}
    exec("from repro.core import *", namespace)  # noqa: S102
    assert "IPSEstimator" in namespace
    assert "Dataset" in namespace
    # Nothing private leaks.
    assert not any(name.startswith("_") for name in namespace
                   if name != "__builtins__")


def test_readme_quickstart_names_exist():
    """The README's import list must stay valid."""
    from repro.core import (  # noqa: F401
        ConstantPolicy,
        Dataset,
        EmpiricalPropensityModel,
        Interaction,
        IPSEstimator,
    )


def test_key_estimators_share_interface():
    from repro.core.estimators import (
        DirectMethodEstimator,
        DoublyRobustEstimator,
        IPSEstimator,
        OffPolicyEstimator,
        SNIPSEstimator,
        SwitchEstimator,
    )

    for cls in (IPSEstimator, SNIPSEstimator, DirectMethodEstimator,
                DoublyRobustEstimator, SwitchEstimator):
        assert issubclass(cls, OffPolicyEstimator)
