"""Property-style equivalence suite for the reduction kernel.

The contract of :mod:`repro.core.estimators.reductions`: every backend
is a different *driver* over the same fold/merge/finalize kernel, so

- scalar == vectorized == chunked for every estimator, at every chunk
  size (1, a prime, N, N+1), including diagnostics verdicts;
- shared == chunked *bit-for-bit* at every chunk size and worker
  count — parallel folding through shared memory must not move a
  single ulp;
- merging partial states is associative — any merge tree over any
  partition finalizes to the same result;
- the out-of-core JSONL driver matches the in-memory backends, and its
  parallel folding is bit-identical to serial;
- seeded bootstrap replicates are the same shards whether generated
  serially or across a worker pool.
"""

import numpy as np
import pytest

from repro.core.bootstrap import (
    bootstrap_interval_from_terms,
    bootstrap_ips_interval,
    bootstrap_snips_interval,
)
from repro.core.columns import iter_chunk_columns
from repro.core.engine import (
    evaluate_jsonl_chunked,
    reset_backend_warnings,
    use_backend,
    warn_missing_batch,
)
from repro.core.estimators.direct import DirectMethodEstimator
from repro.core.estimators.doubly_robust import DoublyRobustEstimator
from repro.core.estimators.fallback import FallbackEstimator
from repro.core.estimators.ips import (
    ClippedIPSEstimator,
    IPSEstimator,
    SNIPSEstimator,
)
from repro.core.estimators.reductions import (
    LogSummary,
    Moments,
    ReductionContext,
    WeightStats,
)
from repro.core.estimators.switch import SwitchEstimator
from repro.core.policies import (
    ConstantPolicy,
    EpsilonGreedyPolicy,
    UniformRandomPolicy,
)
from repro.core.types import ActionSpace, Dataset, Interaction

N = 223  # deliberately not a multiple of any chunk size below
CHUNK_SIZES = (1, 7, N, N + 1)


def make_skewed_dataset(n=N, seed=0, action_space=True):
    """A log with skewed propensities so weights have a real tail."""
    rng = np.random.default_rng(seed)
    rows = []
    for i in range(n):
        context = {
            "load": float(rng.uniform()),
            "latency": float(rng.uniform()),
        }
        action = int(rng.choice(3, p=[0.6, 0.3, 0.1]))
        propensity = [0.6, 0.3, 0.1][action]
        reward = float(
            np.clip(context["load"] * (action + 1) / 3
                    + rng.normal(0, 0.05), 0, 1)
        )
        rows.append(Interaction(context, action, reward, propensity))
    return Dataset(rows, action_space=ActionSpace(3) if action_space else None)


def all_estimators():
    return [
        IPSEstimator(),
        ClippedIPSEstimator(max_weight=4.0),
        SNIPSEstimator(),
        DirectMethodEstimator(),
        DoublyRobustEstimator(),
        SwitchEstimator(tau=3.0),
        FallbackEstimator(),
    ]


def all_policies():
    return [
        UniformRandomPolicy(),
        ConstantPolicy(1),
        EpsilonGreedyPolicy(ConstantPolicy(2), 0.25),
    ]


def assert_results_match(got, ref, rel=1e-9):
    __tracebackhide__ = True
    if np.isnan(ref.value):
        assert np.isnan(got.value)
    else:
        assert got.value == pytest.approx(ref.value, rel=rel, abs=rel)
    if np.isfinite(ref.std_error):
        assert got.std_error == pytest.approx(ref.std_error, rel=rel, abs=rel)
    else:
        assert got.std_error == ref.std_error
    assert got.n == ref.n
    assert got.effective_n == ref.effective_n
    # Verdicts must match exactly — a chunked run that downgrades (or
    # upgrades) reliability would make out-of-core evaluation lie.
    if ref.diagnostics is None:
        assert got.diagnostics is None
    else:
        assert got.diagnostics is not None
        assert got.diagnostics.verdict == ref.diagnostics.verdict
        assert got.diagnostics.reasons == ref.diagnostics.reasons
    for key in ("match_rate", "clipped_fraction", "switch_fraction",
                "effective_sample_size"):
        if key in ref.details:
            assert got.details[key] == pytest.approx(
                ref.details[key], rel=rel, abs=rel
            ), key


class TestBackendEquivalence:
    @pytest.mark.parametrize("with_space", [True, False],
                             ids=["action-space", "spaceless"])
    def test_all_backends_agree_for_every_estimator(self, with_space):
        dataset = make_skewed_dataset(action_space=with_space)
        for policy in all_policies():
            for estimator in all_estimators():
                with use_backend("vectorized"):
                    ref = estimator.estimate(policy, dataset)
                with use_backend("scalar"):
                    scalar = estimator.estimate(policy, dataset)
                assert_results_match(scalar, ref)
                for chunk_size in CHUNK_SIZES:
                    with use_backend("chunked", chunk_size=chunk_size):
                        chunked = estimator.estimate(policy, dataset)
                    # Model-based terms reassociate gram sums; a hair
                    # looser than the pure-sum estimators.
                    assert_results_match(chunked, ref, rel=1e-8)

    def test_match_weights_identical_across_backends(self):
        dataset = make_skewed_dataset()
        policy = EpsilonGreedyPolicy(ConstantPolicy(0), 0.1)
        ips = IPSEstimator()
        with use_backend("vectorized"):
            ref = ips.match_weights(policy, dataset)
        with use_backend("chunked", chunk_size=7):
            chunked = ips.match_weights(policy, dataset)
        np.testing.assert_array_equal(ref, chunked)

    def test_fallback_audit_trail_matches_on_chunked(self):
        dataset = make_skewed_dataset()
        policy = ConstantPolicy(2)
        with use_backend("vectorized"):
            ref = FallbackEstimator().estimate(policy, dataset)
        with use_backend("chunked", chunk_size=13):
            chunked = FallbackEstimator().estimate(policy, dataset)
        assert chunked.estimator == ref.estimator
        assert chunked.details["degraded"] == ref.details["degraded"]
        assert [a["verdict"] for a in chunked.details["fallback"]] == [
            a["verdict"] for a in ref.details["fallback"]
        ]


class TestSharedBackendEquivalence:
    """shared == chunked bit-for-bit: same slices, different processes."""

    WORKER_COUNTS = (1, 2, 4)

    @staticmethod
    def _assert_bit_identical(shared, ref, label):
        __tracebackhide__ = True
        # Bit-for-bit, not approx: the workers fold the same float64
        # values through the same kernel in the same order.
        assert shared.value == ref.value or (
            np.isnan(shared.value) and np.isnan(ref.value)
        ), label
        assert shared.std_error == ref.std_error or (
            np.isnan(shared.std_error) and np.isnan(ref.std_error)
        ), label
        assert shared.n == ref.n
        assert shared.effective_n == ref.effective_n

    @pytest.mark.parametrize("with_space", [True, False],
                             ids=["action-space", "spaceless"])
    def test_shared_bit_identical_to_chunked(self, with_space):
        dataset = make_skewed_dataset(action_space=with_space)
        policy = EpsilonGreedyPolicy(ConstantPolicy(2), 0.25)
        # One plain-sum, one ratio, one model-based estimator cover the
        # three state shapes crossing the shared segment.
        estimators = [IPSEstimator(), SNIPSEstimator(),
                      DoublyRobustEstimator()]
        for chunk_size in CHUNK_SIZES:
            for estimator in estimators:
                with use_backend("chunked", chunk_size=chunk_size):
                    ref = estimator.estimate(policy, dataset)
                for workers in self.WORKER_COUNTS:
                    with use_backend(
                        "shared", chunk_size=chunk_size, workers=workers
                    ):
                        shared = estimator.estimate(policy, dataset)
                    self._assert_bit_identical(
                        shared, ref,
                        (estimator.name, chunk_size, workers),
                    )
        dataset.columns().release_shared_block()

    def test_shared_every_estimator_and_policy(self):
        dataset = make_skewed_dataset()
        for policy in all_policies():
            for estimator in all_estimators():
                with use_backend("chunked", chunk_size=64):
                    ref = estimator.estimate(policy, dataset)
                with use_backend("shared", chunk_size=64, workers=2):
                    shared = estimator.estimate(policy, dataset)
                self._assert_bit_identical(
                    shared, ref, (estimator.name, policy.name)
                )
        dataset.columns().release_shared_block()

    def test_shared_match_weights_identical(self):
        dataset = make_skewed_dataset()
        policy = EpsilonGreedyPolicy(ConstantPolicy(0), 0.1)
        ips = IPSEstimator()
        with use_backend("vectorized"):
            ref = ips.match_weights(policy, dataset)
        with use_backend("shared", chunk_size=7, workers=2):
            shared = ips.match_weights(policy, dataset)
        np.testing.assert_array_equal(ref, shared)

    def test_shared_falls_back_when_disabled(self, monkeypatch):
        # REPRO_NO_SHM is the kill switch: the shared backend must
        # degrade to the serial chunked plan, results unchanged.
        from repro.core import shm

        dataset = make_skewed_dataset(n=97, seed=3)
        policy = ConstantPolicy(1)
        with use_backend("chunked", chunk_size=16):
            ref = IPSEstimator().estimate(policy, dataset)
        monkeypatch.setenv("REPRO_NO_SHM", "1")
        assert not shm.available()
        with use_backend("shared", chunk_size=16, workers=2):
            shared = IPSEstimator().estimate(policy, dataset)
        assert shared.value == ref.value
        assert shared.std_error == ref.std_error


class TestMergeAssociativity:
    def _states(self, chunk_size):
        dataset = make_skewed_dataset()
        policy = EpsilonGreedyPolicy(ConstantPolicy(1), 0.2)
        estimator = SNIPSEstimator()
        context = ReductionContext.from_dataset(dataset)
        reduction = estimator.reduction(policy, context)
        states = [
            reduction.fold(reduction.init_state(), chunk)
            for chunk in iter_chunk_columns(dataset, chunk_size)
        ]
        log = LogSummary.from_columns(dataset.columns())
        return reduction, states, log

    def test_left_and_right_merge_trees_agree(self):
        reduction, left_states, log = self._states(chunk_size=17)
        _, right_states, _ = self._states(chunk_size=17)
        left = left_states[0]
        for state in left_states[1:]:
            left = reduction.merge(left, state)
        right = right_states[-1]
        for state in reversed(right_states[:-1]):
            right = reduction.merge(state, right)
        a = reduction.finalize(left, log)
        b = reduction.finalize(right, log)
        assert a.value == pytest.approx(b.value, rel=1e-12)
        assert a.std_error == pytest.approx(b.std_error, rel=1e-9)
        assert a.diagnostics.verdict == b.diagnostics.verdict

    def test_moments_merge_matches_batch(self):
        rng = np.random.default_rng(4)
        values = rng.exponential(size=1000)
        merged = Moments()
        for part in np.array_split(values, 13):
            other = Moments.from_array(part)
            merged.merge_in(other)
        assert merged.n == 1000
        assert merged.mean == pytest.approx(values.mean(), rel=1e-12)
        expected_se = values.std(ddof=1) / np.sqrt(values.size)
        assert merged.std_error() == pytest.approx(expected_se, rel=1e-10)

    def test_weightstats_q99_exact_under_any_partition(self):
        rng = np.random.default_rng(9)
        weights = rng.pareto(2.0, size=N)
        whole = WeightStats.for_rows(N)
        whole.fold(weights)
        for split in (3, 10, 50):
            parts = np.array_split(weights, split)
            merged = WeightStats.for_rows(N)
            for part in parts:
                partial = WeightStats.for_rows(N)
                partial.fold(part)
                merged.merge_in(partial)
            assert merged.q99() == whole.q99()
            assert merged.maximum == whole.maximum
            assert merged.total == pytest.approx(whole.total, rel=1e-12)

    def test_mismatched_tail_sizes_refuse_to_merge(self):
        a = WeightStats.for_rows(100)
        b = WeightStats.for_rows(5000)
        b.fold(np.ones(10))
        with pytest.raises(ValueError, match="different totals"):
            a.merge_in(b)


class TestJsonlDriver:
    @pytest.fixture()
    def log_file(self, tmp_path):
        dataset = make_skewed_dataset(n=401, seed=5)
        path = tmp_path / "log.jsonl"
        dataset.save_jsonl(str(path))
        return str(path), dataset

    def test_file_driver_matches_in_memory(self, log_file):
        path, _ = log_file
        policies = all_policies()
        estimators = all_estimators()
        evaluation = evaluate_jsonl_chunked(
            path, policies, estimators, chunk_size=64
        )
        assert evaluation.n == 401
        assert evaluation.n_chunks == 7
        loaded = Dataset.load_jsonl(path)
        for pi, policy in enumerate(policies):
            for ei, estimator in enumerate(estimators):
                with use_backend("vectorized"):
                    ref = estimator.estimate(policy, loaded)
                assert_results_match(
                    evaluation.results[pi][ei], ref, rel=1e-8
                )

    def test_parallel_folding_bit_identical_to_serial(self, log_file):
        path, _ = log_file
        policies = [UniformRandomPolicy(), ConstantPolicy(1)]
        estimators = [IPSEstimator(), SNIPSEstimator(),
                      DoublyRobustEstimator()]
        serial = evaluate_jsonl_chunked(
            path, policies, estimators, chunk_size=32, workers=1,
            collect_terms=True,
        )
        parallel = evaluate_jsonl_chunked(
            path, policies, estimators, chunk_size=32, workers=3,
            collect_terms=True,
        )
        for pi in range(len(policies)):
            for ei in range(len(estimators)):
                a = serial.results[pi][ei]
                b = parallel.results[pi][ei]
                assert a.value == b.value  # bit-for-bit, not approx
                assert a.std_error == b.std_error
        key = (policies[0].name, "ips")
        np.testing.assert_array_equal(
            serial.terms[key], parallel.terms[key]
        )

    def test_collected_terms_match_weighted_rewards(self, log_file):
        path, _ = log_file
        policy = ConstantPolicy(1)
        evaluation = evaluate_jsonl_chunked(
            path, [policy], [IPSEstimator()], chunk_size=50,
            collect_terms=True,
        )
        loaded = Dataset.load_jsonl(path)
        expected = IPSEstimator(backend="vectorized").weighted_rewards(
            policy, loaded
        )
        np.testing.assert_allclose(
            evaluation.terms[(policy.name, "ips")], expected, rtol=1e-12
        )

    def test_empty_log_raises(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="no valid interactions"):
            evaluate_jsonl_chunked(
                str(path), [UniformRandomPolicy()], [IPSEstimator()]
            )


class TestBootstrapSharding:
    @pytest.fixture()
    def terms(self):
        rng = np.random.default_rng(6)
        return rng.exponential(size=1501) * (rng.uniform(size=1501) < 0.4)

    def test_serial_equals_parallel_bit_for_bit(self, terms):
        serial = bootstrap_interval_from_terms(terms, seed=11, workers=1)
        parallel = bootstrap_interval_from_terms(terms, seed=11, workers=4)
        assert (serial.low, serial.high) == (parallel.low, parallel.high)

    def test_seed_reproduces_across_runs(self, terms):
        a = bootstrap_interval_from_terms(terms, seed=3, n_boot=500)
        b = bootstrap_interval_from_terms(terms, seed=3, n_boot=500)
        c = bootstrap_interval_from_terms(terms, seed=4, n_boot=500)
        assert (a.low, a.high) == (b.low, b.high)
        assert (a.low, a.high) != (c.low, c.high)

    def test_parallel_without_seed_rejected(self, terms):
        with pytest.raises(ValueError, match="requires a seed"):
            bootstrap_interval_from_terms(terms, workers=2)

    def test_rng_and_seed_mutually_exclusive(self, terms):
        with pytest.raises(ValueError, match="not both"):
            bootstrap_interval_from_terms(
                terms, rng=np.random.default_rng(0), seed=1
            )

    def test_legacy_rng_path_unchanged(self, terms):
        # The historical default (rng(0), one index matrix) must keep
        # producing the same interval — downstream results depend on it.
        rng = np.random.default_rng(0)
        indices = rng.integers(0, terms.size, size=(1000, terms.size))
        means = terms[indices].mean(axis=1)
        expected_low = float(np.quantile(means, 0.025))
        interval = bootstrap_interval_from_terms(terms)
        assert interval.low == expected_low

    def test_estimator_level_intervals_parallel_consistent(self):
        dataset = make_skewed_dataset(n=301, seed=7)
        policy = EpsilonGreedyPolicy(ConstantPolicy(1), 0.3)
        for fn in (bootstrap_ips_interval, bootstrap_snips_interval):
            serial = fn(policy, dataset, seed=21, workers=1, n_boot=512)
            parallel = fn(policy, dataset, seed=21, workers=3, n_boot=512)
            assert (serial.low, serial.high) == (parallel.low, parallel.high)


class TestBackendScopeHygiene:
    def test_use_backend_clears_warning_memory(self):
        class NoBatchPolicy:
            pass

        reset_backend_warnings()
        with use_backend("vectorized"):
            with pytest.warns(RuntimeWarning):
                warn_missing_batch(NoBatchPolicy)
            # Second call inside the scope: memory suppresses it.
            import warnings as _w

            with _w.catch_warnings():
                _w.simplefilter("error")
                warn_missing_batch(NoBatchPolicy)
        # The scope exit wiped the memory — the warning fires again
        # instead of leaking suppression into unrelated code.
        with pytest.warns(RuntimeWarning):
            warn_missing_batch(NoBatchPolicy)
        reset_backend_warnings()

    def test_use_backend_scopes_chunk_options(self):
        from repro.core.engine import get_chunk_size, get_workers

        before = (get_chunk_size(), get_workers())
        with use_backend("chunked", chunk_size=17, workers=3):
            assert get_chunk_size() == 17
            assert get_workers() == 3
        assert (get_chunk_size(), get_workers()) == before


class TestStreamingOnKernel:
    def test_partitioned_streams_merge_to_whole(self):
        from repro.core.streaming import StreamingIPS

        dataset = make_skewed_dataset(n=500, seed=2)
        space = dataset.action_space
        policy = ConstantPolicy(1)
        whole = StreamingIPS(policy, space)
        whole.update_all(dataset)
        first = StreamingIPS(policy, space)
        second = StreamingIPS(policy, space)
        rows = list(dataset)
        first.update_all(rows[:173])
        second.update_all(rows[173:])
        first.merge_in(second)
        a, b = whole.snapshot(), first.snapshot()
        assert b.n == a.n
        assert b.value == pytest.approx(a.value, rel=1e-12)
        assert b.std_error == pytest.approx(a.std_error, rel=1e-12)
        assert b.match_rate == a.match_rate

    def test_merge_rejects_different_policies(self):
        from repro.core.streaming import StreamingIPS

        space = ActionSpace(3)
        a = StreamingIPS(ConstantPolicy(0), space)
        b = StreamingIPS(ConstantPolicy(1), space)
        with pytest.raises(ValueError, match="different policies"):
            a.merge_in(b)

    def test_streaming_agrees_with_scalar_ips(self):
        from repro.core.streaming import StreamingIPS

        dataset = make_skewed_dataset(n=400, seed=8)
        policy = EpsilonGreedyPolicy(ConstantPolicy(0), 0.2)
        stream = StreamingIPS(policy, dataset.action_space)
        stream.update_all(dataset)
        snap = stream.snapshot()
        result = IPSEstimator(backend="scalar").estimate(policy, dataset)
        assert snap.value == pytest.approx(result.value, rel=1e-12)
        assert snap.std_error == pytest.approx(result.std_error, rel=1e-12)
