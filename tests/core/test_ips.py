"""Unit tests for IPS-family estimators."""

import numpy as np
import pytest

from repro.core.estimators.ips import (
    ClippedIPSEstimator,
    IPSEstimator,
    SNIPSEstimator,
)
from repro.core.policies import (
    ConstantPolicy,
    EpsilonGreedyPolicy,
    UniformRandomPolicy,
)
from repro.core.types import ActionSpace, Dataset, Interaction

from tests.conftest import make_uniform_dataset


def true_value(action: int) -> float:
    """E[r | a] for make_uniform_dataset's reward function: E[load]=0.5."""
    return 0.2 + 0.15 * action + 0.3 * 0.5


class TestIPSEstimator:
    def test_constant_policy_recovers_true_value(self):
        dataset = make_uniform_dataset(20000, seed=1)
        for action in range(3):
            estimate = IPSEstimator().estimate(ConstantPolicy(action), dataset)
            assert estimate.value == pytest.approx(true_value(action), abs=0.02)

    def test_evaluating_logging_policy_equals_mean_reward(self):
        dataset = make_uniform_dataset(500, seed=2)
        estimate = IPSEstimator().estimate(UniformRandomPolicy(), dataset)
        assert estimate.value == pytest.approx(float(dataset.rewards().mean()))

    def test_match_rate_for_constant_policy(self):
        dataset = make_uniform_dataset(3000, seed=3)
        estimate = IPSEstimator().estimate(ConstantPolicy(0), dataset)
        assert estimate.details["match_rate"] == pytest.approx(1 / 3, abs=0.03)
        assert estimate.effective_n == int(
            estimate.details["match_rate"] * estimate.n
        )

    def test_stochastic_candidate_uses_ratios(self):
        dataset = make_uniform_dataset(300, seed=4)
        policy = EpsilonGreedyPolicy(ConstantPolicy(1), epsilon=0.2)
        weights = IPSEstimator().match_weights(policy, dataset)
        # Every interaction matches with nonzero ratio.
        assert (weights > 0).all()
        # Ratio is pi(a|x)/p: either (0.8+0.2/3)/(1/3) or (0.2/3)/(1/3).
        assert all(
            abs(w - 2.6) < 1e-9 or abs(w - 0.2) < 1e-9 for w in weights
        )
        assert {int(round(w * 10)) for w in weights} == {26, 2}

    def test_empty_dataset_raises(self):
        with pytest.raises(ValueError):
            IPSEstimator().estimate(ConstantPolicy(0), Dataset())

    def test_std_error_shrinks_with_n(self):
        small = make_uniform_dataset(200, seed=5)
        large = make_uniform_dataset(5000, seed=5)
        est = IPSEstimator()
        assert (
            est.estimate(ConstantPolicy(0), large).std_error
            < est.estimate(ConstantPolicy(0), small).std_error
        )

    def test_unbiasedness_across_replications(self):
        """Mean of IPS over many independent logs ≈ truth (the §4 claim)."""
        estimates = [
            IPSEstimator()
            .estimate(ConstantPolicy(2), make_uniform_dataset(400, seed=s))
            .value
            for s in range(40)
        ]
        assert np.mean(estimates) == pytest.approx(true_value(2), abs=0.02)

    def test_weighted_rewards_zero_for_nonmatching(self):
        dataset = make_uniform_dataset(100, seed=6)
        terms = IPSEstimator().weighted_rewards(ConstantPolicy(0), dataset)
        actions = dataset.actions()
        assert (terms[actions != 0] == 0).all()


class TestClippedIPS:
    def test_no_clipping_when_weights_small(self):
        dataset = make_uniform_dataset(500, seed=7)
        plain = IPSEstimator().estimate(ConstantPolicy(0), dataset)
        clipped = ClippedIPSEstimator(max_weight=100.0).estimate(
            ConstantPolicy(0), dataset
        )
        assert clipped.value == pytest.approx(plain.value)
        assert clipped.details["clipped_fraction"] == 0.0

    def test_clipping_caps_weights(self):
        ds = Dataset(action_space=ActionSpace(2))
        ds.append(Interaction({}, 0, reward=1.0, propensity=0.001))
        ds.append(Interaction({}, 1, reward=0.5, propensity=0.999))
        clipped = ClippedIPSEstimator(max_weight=2.0).estimate(
            ConstantPolicy(0), ds
        )
        # weight would be 1000; capped at 2 -> mean(2*1.0, 0)/... = 1.0
        assert clipped.value == pytest.approx(1.0)
        assert clipped.details["clipped_fraction"] == pytest.approx(0.5)

    def test_invalid_max_weight(self):
        with pytest.raises(ValueError):
            ClippedIPSEstimator(max_weight=0.0)

    def test_clipping_bias_is_downward_for_rare_actions(self):
        # Action 0 logged rarely with tiny propensity: clipping loses mass.
        rng = np.random.default_rng(0)
        ds = Dataset(action_space=ActionSpace(2))
        for t in range(1000):
            if rng.random() < 0.01:
                ds.append(Interaction({}, 0, reward=1.0, propensity=0.01))
            else:
                ds.append(Interaction({}, 1, reward=0.0, propensity=0.99))
        plain = IPSEstimator().estimate(ConstantPolicy(0), ds).value
        clipped = ClippedIPSEstimator(max_weight=5.0).estimate(
            ConstantPolicy(0), ds
        ).value
        assert clipped < plain


class TestSNIPS:
    def test_matches_truth(self):
        dataset = make_uniform_dataset(20000, seed=8)
        estimate = SNIPSEstimator().estimate(ConstantPolicy(1), dataset)
        assert estimate.value == pytest.approx(true_value(1), abs=0.02)

    def test_lower_variance_than_ips(self):
        """SNIPS should have smaller spread across replications."""
        ips_vals, snips_vals = [], []
        for seed in range(30):
            ds = make_uniform_dataset(300, seed=100 + seed)
            ips_vals.append(IPSEstimator().estimate(ConstantPolicy(1), ds).value)
            snips_vals.append(
                SNIPSEstimator().estimate(ConstantPolicy(1), ds).value
            )
        assert np.std(snips_vals) < np.std(ips_vals)

    def test_estimate_within_observed_reward_range(self):
        """Self-normalization keeps the estimate inside [min r, max r]."""
        dataset = make_uniform_dataset(200, seed=9)
        value = SNIPSEstimator().estimate(ConstantPolicy(2), dataset).value
        rewards = dataset.rewards()
        assert rewards.min() <= value <= rewards.max()

    def test_shift_invariance(self):
        """Adding a constant to all rewards shifts SNIPS by that constant."""
        dataset = make_uniform_dataset(400, seed=10)
        shifted = Dataset(action_space=dataset.action_space)
        for i in dataset:
            shifted.append(
                Interaction(i.context, i.action, i.reward + 5.0, i.propensity)
            )
        base = SNIPSEstimator().estimate(ConstantPolicy(0), dataset).value
        moved = SNIPSEstimator().estimate(ConstantPolicy(0), shifted).value
        assert moved == pytest.approx(base + 5.0)

    def test_no_match_returns_nan(self):
        ds = Dataset(action_space=ActionSpace(3))
        for t in range(10):
            ds.append(Interaction({}, 0, 0.5, propensity=0.5))
        estimate = SNIPSEstimator().estimate(ConstantPolicy(2), ds)
        assert np.isnan(estimate.value)
        assert estimate.effective_n == 0

    def test_effective_sample_size_reported(self):
        dataset = make_uniform_dataset(300, seed=11)
        estimate = SNIPSEstimator().estimate(ConstantPolicy(0), dataset)
        ess = estimate.details["effective_sample_size"]
        assert 0 < ess <= 300


class TestEstimatorResult:
    def test_confidence_interval_symmetric(self):
        dataset = make_uniform_dataset(500, seed=12)
        estimate = IPSEstimator().estimate(ConstantPolicy(0), dataset)
        lo, hi = estimate.confidence_interval()
        assert lo < estimate.value < hi
        assert estimate.value - lo == pytest.approx(hi - estimate.value)
