"""Unit tests for report formatting."""

import pytest

from repro.core.estimators.ips import IPSEstimator
from repro.core.policies import ConstantPolicy, UniformRandomPolicy
from repro.core.reporting import (
    dataset_summary,
    dataset_summary_text,
    estimator_table,
    markdown_table,
    offline_online_table,
    text_table,
)
from repro.core.types import Dataset

from tests.conftest import make_uniform_dataset


class TestTableRenderers:
    def test_text_table_alignment(self):
        out = text_table(["a", "long-header"], [["xx", 1], ["y", 22]])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert len({len(line) for line in lines}) == 1  # aligned widths

    def test_markdown_table_shape(self):
        out = markdown_table(["a", "b"], [[1, 2], [3, 4]])
        lines = out.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"
        assert len(lines) == 4


class TestDatasetSummary:
    def test_summary_fields(self):
        dataset = make_uniform_dataset(300, seed=1)
        summary = dataset_summary(dataset)
        assert summary["n"] == 300
        assert summary["actions_declared"] == 3
        assert summary["actions_observed"] == 3
        assert summary["min_propensity"] == pytest.approx(1 / 3)
        assert 0 < summary["least_seen_action_share"] <= 1 / 3 + 0.1
        assert 0 <= summary["reward_min"] <= summary["reward_mean"]
        assert summary["reward_mean"] <= summary["reward_max"] <= 1
        assert summary["timespan"] == pytest.approx(299.0)

    def test_empty_dataset_raises(self):
        with pytest.raises(ValueError):
            dataset_summary(Dataset())

    def test_text_rendering(self):
        dataset = make_uniform_dataset(50, seed=2)
        out = dataset_summary_text(dataset)
        assert "min_propensity" in out
        assert "quantity" in out


class TestEstimatorTable:
    def test_renders_results(self):
        dataset = make_uniform_dataset(500, seed=3)
        ips = IPSEstimator()
        results = {
            "const-0": ips.estimate(ConstantPolicy(0), dataset),
            "uniform": ips.estimate(UniformRandomPolicy(), dataset),
        }
        out = estimator_table(results)
        assert "const-0" in out
        assert "95% CI" in out
        assert "match rate" in out

    def test_markdown_mode(self):
        dataset = make_uniform_dataset(100, seed=4)
        results = {"x": IPSEstimator().estimate(ConstantPolicy(0), dataset)}
        out = estimator_table(results, markdown=True)
        assert out.startswith("| policy |")


class TestOfflineOnlineTable:
    def test_table2_layout(self):
        out = offline_online_table(
            {
                "Random": (0.44, 0.44),
                "Send to 1": (0.31, 0.70),
                "Never deployed": (0.35, None),
            },
            unit="s",
        )
        assert "Send to 1" in out
        assert "0.700s" in out
        assert out.count("-") >= 1  # the undeployed cell

    def test_markdown_mode(self):
        out = offline_online_table({"a": (1.0, 2.0)}, markdown=True)
        assert out.splitlines()[0] == "| policy | off-policy eval | online eval |"


class TestDiagnosticsTable:
    def _results(self):
        dataset = make_uniform_dataset(300, seed=3)
        estimator = IPSEstimator()
        return {
            "uniform": estimator.estimate(UniformRandomPolicy(), dataset),
            "const-1": estimator.estimate(ConstantPolicy(1), dataset),
        }

    def test_renders_verdicts_and_metrics(self):
        from repro.core.reporting import diagnostics_table

        out = diagnostics_table(self._results())
        assert "verdict" in out
        assert "OK" in out
        assert "coverage" in out

    def test_missing_diagnostics_render_dashes(self):
        from repro.core.estimators.base import EstimatorResult
        from repro.core.reporting import diagnostics_table

        bare = EstimatorResult(
            value=0.5, std_error=0.1, n=10, effective_n=10,
            estimator="ips",
        )
        out = diagnostics_table({"p": bare})
        assert "-" in out

    def test_estimator_table_gains_reliability_column(self):
        out = estimator_table(self._results())
        assert "reliability" in out

    def test_markdown_mode(self):
        from repro.core.reporting import diagnostics_table

        out = diagnostics_table(self._results(), markdown=True)
        assert out.startswith("| policy |")


class TestQuarantineTable:
    def test_counts_per_reason_and_total(self):
        from repro.core.reporting import quarantine_table
        from repro.core.validation import PROPENSITY, SCHEMA, Quarantine

        quarantine = Quarantine()
        quarantine.add(1, SCHEMA, "missing reward")
        quarantine.add(2, PROPENSITY, "propensity 0")
        quarantine.add(5, PROPENSITY, "propensity 2")
        quarantine.note_repair(PROPENSITY)
        out = quarantine_table(quarantine)
        lines = out.splitlines()
        assert any("propensity" in line and "2" in line for line in lines)
        assert any("total" in line for line in lines)

    def test_markdown_mode(self):
        from repro.core.reporting import quarantine_table
        from repro.core.validation import UNPARSEABLE, Quarantine

        quarantine = Quarantine()
        quarantine.add(1, UNPARSEABLE, "bad json")
        out = quarantine_table(quarantine, markdown=True)
        assert out.startswith("| reason |")
