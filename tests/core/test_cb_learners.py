"""Unit tests for contextual-bandit learners."""

import numpy as np
import pytest

from repro.core.estimators.ips import IPSEstimator, SNIPSEstimator
from repro.core.features import Featurizer
from repro.core.learners.cb import (
    EpochGreedyLearner,
    EpsilonGreedyLearner,
    PerActionFeaturesLearner,
    PolicyClassOptimizer,
)
from repro.core.policies import ConstantPolicy, PolicyClass
from repro.core.types import ActionSpace, Dataset, Interaction

from tests.conftest import make_uniform_dataset


class TestEpsilonGreedyLearner:
    def test_learns_best_constant_action(self):
        dataset = make_uniform_dataset(3000, seed=1)
        learner = EpsilonGreedyLearner(3, learning_rate=0.5)
        for _ in range(2):
            learner.observe_all(dataset)
        # Reward grows with action index; best is 2 everywhere.
        policy = learner.policy()
        assert policy.action({"load": 0.5, "bias": 1.0}, [0, 1, 2]) == 2

    def test_learns_context_dependent_action(self):
        def reward_fn(context, action, rng):
            # Action 0 good at low load, action 1 good at high load.
            means = [0.8 - 0.6 * context["load"], 0.2 + 0.6 * context["load"]]
            return float(np.clip(means[action] + rng.normal(0, 0.02), 0, 1))

        dataset = make_uniform_dataset(
            6000, n_actions=2, seed=2, reward_fn=reward_fn
        )
        learner = EpsilonGreedyLearner(2, learning_rate=0.5)
        for _ in range(3):
            learner.observe_all(dataset)
        policy = learner.policy()
        assert policy.action({"load": 0.1, "bias": 1.0}, [0, 1]) == 0
        assert policy.action({"load": 0.9, "bias": 1.0}, [0, 1]) == 1

    def test_minimize_mode(self):
        def reward_fn(context, action, rng):
            return [0.9, 0.1, 0.5][action]  # action 1 has lowest cost

        dataset = make_uniform_dataset(2000, seed=3, reward_fn=reward_fn)
        learner = EpsilonGreedyLearner(3, maximize=False, learning_rate=0.5)
        learner.observe_all(dataset)
        assert learner.policy().action({"load": 0.5, "bias": 1.0}, [0, 1, 2]) == 1

    def test_importance_weights_debias(self):
        """A logging policy that favours action 0 must not fool the
        learner into preferring it."""
        rng = np.random.default_rng(4)
        ds = Dataset(action_space=ActionSpace(2))
        for t in range(6000):
            context = {"bias": 1.0}
            if rng.random() < 0.9:
                action, p = 0, 0.9
            else:
                action, p = 1, 0.1
            reward = 0.3 if action == 0 else 0.8  # action 1 is better
            ds.append(Interaction(context, action, reward, p, float(t)))
        learner = EpsilonGreedyLearner(2, learning_rate=0.5)
        learner.observe_all(ds)
        assert learner.policy().action({"bias": 1.0}, [0, 1]) == 1

    def test_action_out_of_range_rejected(self):
        learner = EpsilonGreedyLearner(2)
        with pytest.raises(ValueError):
            learner.observe(Interaction({}, 5, 0.5, 0.5))

    def test_observed_counter(self):
        dataset = make_uniform_dataset(50, seed=5)
        learner = EpsilonGreedyLearner(3)
        learner.observe_all(dataset)
        assert learner.observed == 50

    def test_exploration_policy_has_floor(self):
        learner = EpsilonGreedyLearner(3)
        learner.observe_all(make_uniform_dataset(100, seed=6))
        deploy = learner.exploration_policy(epsilon=0.3)
        probs = deploy.distribution({"load": 0.5, "bias": 1.0}, [0, 1, 2])
        assert probs.min() >= 0.1 - 1e-9

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            EpsilonGreedyLearner(0)
        with pytest.raises(ValueError):
            EpsilonGreedyLearner(2, importance_clip=0.0)


class TestEpochGreedyLearner:
    def test_explore_fraction_decays(self):
        learner = EpochGreedyLearner(3)
        dataset = make_uniform_dataset(1000, seed=7)
        explored = []
        for interaction in dataset:
            explored.append(learner.exploring_now())
            learner.observe(interaction)
        early = np.mean(explored[:100])
        late = np.mean(explored[-100:])
        assert early > late

    def test_learns_like_epsilon_greedy(self):
        dataset = make_uniform_dataset(3000, seed=8)
        learner = EpochGreedyLearner(3, learning_rate=0.5)
        learner.observe_all(dataset)
        assert learner.policy().action({"load": 0.5, "bias": 1.0}, [0, 1, 2]) == 2

    def test_deployment_propensity(self):
        learner = EpochGreedyLearner(4)
        # Round 0 is always an exploration round.
        assert learner.deployment_propensity(4) == pytest.approx(0.25)

    def test_observed_counter(self):
        learner = EpochGreedyLearner(3)
        learner.observe_all(make_uniform_dataset(42, seed=9))
        assert learner.observed == 42


class TestPerActionFeaturesLearner:
    def test_learns_shared_model_across_actions(self):
        """One model over per-action features should generalize to
        actions never seen in training positions."""
        rng = np.random.default_rng(10)
        ds = Dataset(action_space=ActionSpace(3))
        for t in range(4000):
            quality = [float(rng.uniform()) for _ in range(3)]
            context = {f"cand{i}_quality": quality[i] for i in range(3)}
            action = int(rng.integers(3))
            # Reward IS the chosen candidate's quality.
            ds.append(
                Interaction(context, action, quality[action], 1 / 3, float(t))
            )

        def features_of(context, action):
            return {"quality": context[f"cand{action}_quality"]}

        learner = PerActionFeaturesLearner(
            features_of, featurizer=Featurizer(8), learning_rate=0.5
        )
        for _ in range(2):
            learner.observe_all(ds)
        context = {"cand0_quality": 0.2, "cand1_quality": 0.9,
                   "cand2_quality": 0.5}
        assert learner.policy().action(context, [0, 1, 2]) == 1
        # And prediction tracks the feature value.
        assert learner.predict(context, 1) > learner.predict(context, 0)

    def test_minimize_mode(self):
        learner = PerActionFeaturesLearner(
            lambda ctx, a: {"v": ctx[f"cand{a}_v"]}, maximize=False
        )
        learner.observe(
            Interaction({"cand0_v": 1.0}, 0, reward=1.0, propensity=1.0)
        )
        context = {"cand0_v": 0.1, "cand1_v": 0.9}
        assert learner.policy().action(context, [0, 1]) == 0

    def test_invalid_clip(self):
        with pytest.raises(ValueError):
            PerActionFeaturesLearner(lambda c, a: {}, importance_clip=0.0)


class TestPolicyClassOptimizer:
    def test_finds_best_constant(self):
        dataset = make_uniform_dataset(5000, seed=11)
        optimizer = PolicyClassOptimizer(maximize=True)
        best, value = optimizer.optimize(PolicyClass.all_constant(3), dataset)
        assert best.action({}, [0, 1, 2]) == 2  # highest reward action

    def test_minimize_mode(self):
        dataset = make_uniform_dataset(5000, seed=12)
        optimizer = PolicyClassOptimizer(maximize=False)
        best, _ = optimizer.optimize(PolicyClass.all_constant(3), dataset)
        assert best.action({}, [0, 1, 2]) == 0

    def test_score_all_returns_every_policy(self):
        dataset = make_uniform_dataset(500, seed=13)
        scored = PolicyClassOptimizer().score_all(
            PolicyClass.all_constant(3), dataset
        )
        assert len(scored) == 3

    def test_custom_estimator(self):
        dataset = make_uniform_dataset(2000, seed=14)
        snips_opt = PolicyClassOptimizer(estimator=SNIPSEstimator())
        best, value = snips_opt.optimize(PolicyClass.all_constant(3), dataset)
        assert best.action({}, [0, 1, 2]) == 2

    def test_optimizer_value_close_to_ips_value(self):
        dataset = make_uniform_dataset(2000, seed=15)
        best, value = PolicyClassOptimizer().optimize(
            PolicyClass.all_constant(3), dataset
        )
        direct = IPSEstimator().estimate(best, dataset).value
        assert value == pytest.approx(direct)

    def test_optimize_over_linear_class_beats_uniform(self):
        def reward_fn(context, action, rng):
            means = [0.8 - 0.6 * context["load"], 0.2 + 0.6 * context["load"]]
            return float(np.clip(means[action], 0, 1))

        dataset = make_uniform_dataset(
            4000, n_actions=2, seed=16, reward_fn=reward_fn
        )
        policy_class = PolicyClass.random_linear(
            200, 2, ["load"], np.random.default_rng(0)
        )
        best, value = PolicyClassOptimizer().optimize(policy_class, dataset)
        # A good contextual policy beats the best constant (~0.5).
        assert value > 0.55
