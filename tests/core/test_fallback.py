"""Tests for graceful degradation down the estimator ladder."""

import numpy as np
import pytest

from repro.core.estimators.direct import DirectMethodEstimator
from repro.core.estimators.fallback import FallbackEstimator, default_ladder
from repro.core.estimators.ips import IPSEstimator
from repro.core.policies import ConstantPolicy, UniformRandomPolicy
from repro.core.types import Dataset, Interaction

from tests.conftest import make_uniform_dataset


def skewed_dataset(n=400, seed=9) -> Dataset:
    """A log whose propensities make plain IPS weights explode."""
    rng = np.random.default_rng(seed)
    dataset = Dataset()
    for t in range(n):
        # Action 1 is logged rarely, with a tiny recorded propensity.
        rare = rng.random() < 0.02
        action = 1 if rare else 0
        propensity = 0.0005 if rare else 0.9995
        dataset.append(
            Interaction(
                context={"load": rng.random()},
                action=action,
                reward=rng.random(),
                propensity=propensity,
                timestamp=float(t),
            )
        )
    return dataset


class TestDefaultLadder:
    def test_order_is_ips_first_dm_last(self):
        names = [rung.name for rung in default_ladder()]
        assert names[0] == "ips"
        assert names[-1] == "direct-method"
        assert len(names) == 4


class TestFallbackEstimator:
    def test_healthy_log_accepts_first_rung(self):
        dataset = make_uniform_dataset(500, seed=11)
        result = FallbackEstimator().estimate(ConstantPolicy(1), dataset)
        assert result.estimator == "ips"
        assert result.details["degraded"] is False
        assert len(result.details["fallback"]) == 1
        assert result.details["fallback"][0]["accepted"] is True

    def test_degrades_with_logged_reason(self, caplog):
        import logging

        dataset = skewed_dataset()
        with caplog.at_level(logging.INFO, logger="repro.fallback"):
            result = FallbackEstimator().estimate(ConstantPolicy(1), dataset)
        assert result.details["degraded"] is True
        assert result.estimator != "ips"
        rejected = result.details["fallback"][0]
        assert rejected["estimator"] == "ips"
        assert rejected["accepted"] is False
        assert rejected["reasons"]  # the downgrade is explained
        assert any("fallback" in record.message for record in caplog.records)

    def test_final_value_is_always_finite(self):
        dataset = skewed_dataset()
        result = FallbackEstimator().estimate(ConstantPolicy(1), dataset)
        assert np.isfinite(result.value)

    def test_custom_ladder_respected(self):
        dataset = make_uniform_dataset(200, seed=12)
        ladder = (DirectMethodEstimator(),)
        result = FallbackEstimator(ladder=ladder).estimate(
            UniformRandomPolicy(), dataset
        )
        assert result.estimator == "direct-method"

    def test_empty_ladder_rejected(self):
        with pytest.raises(ValueError, match="at least one rung"):
            FallbackEstimator(ladder=())

    def test_empty_dataset_raises(self):
        with pytest.raises(ValueError, match="empty dataset"):
            FallbackEstimator().estimate(ConstantPolicy(0), Dataset())

    def test_diagnostics_carried_through(self):
        dataset = make_uniform_dataset(300, seed=13)
        result = FallbackEstimator().estimate(ConstantPolicy(0), dataset)
        assert result.diagnostics is not None

    def test_backends_agree(self):
        dataset = skewed_dataset()
        scalar = FallbackEstimator(backend="scalar").estimate(
            ConstantPolicy(1), dataset
        )
        vectorized = FallbackEstimator(backend="vectorized").estimate(
            ConstantPolicy(1), dataset
        )
        assert scalar.estimator == vectorized.estimator
        assert scalar.value == pytest.approx(vectorized.value, rel=1e-9)
