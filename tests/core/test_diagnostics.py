"""Tests for OPE reliability diagnostics.

Includes the two acceptance scenarios of the reliability layer: the
Table 2 degenerate-policy failure (deterministic JSQ-style logging,
propensity ≡ 1) must be flagged UNRELIABLE, and a well-supported
policy on uniformly-explored machine-health logs must not be.
"""

import numpy as np
import pytest

from repro.core.diagnostics import (
    VERDICT_OK,
    VERDICT_UNRELIABLE,
    VERDICT_WARN,
    DiagnosticThresholds,
    diagnose,
    effective_sample_size,
    propensity_identity_error,
    weight_quantile,
)
from repro.core.estimators.fallback import FallbackEstimator
from repro.core.estimators.ips import (
    ClippedIPSEstimator,
    IPSEstimator,
    SNIPSEstimator,
)
from repro.core.policies import ConstantPolicy, UniformRandomPolicy
from repro.core.types import Dataset, Interaction

from tests.conftest import make_uniform_dataset


class TestEffectiveSampleSize:
    def test_uniform_weights_give_n(self):
        assert effective_sample_size(np.ones(50)) == pytest.approx(50.0)

    def test_single_dominant_weight_gives_one(self):
        weights = np.array([100.0, 0.0, 0.0, 0.0])
        assert effective_sample_size(weights) == pytest.approx(1.0)

    def test_all_zero_weights_give_zero(self):
        assert effective_sample_size(np.zeros(10)) == 0.0

    def test_denormal_weights_do_not_nan(self):
        # Σw > 0 while Σw² underflows to exactly 0 — the Hypothesis
        # corner that used to produce NaN in the SNIPS details.
        weights = np.array([2.225e-311, 2.225e-311])
        ess = effective_sample_size(weights)
        assert np.isfinite(ess)
        assert ess == 0.0


class TestWeightQuantile:
    def test_matches_order_statistics(self):
        weights = np.arange(100, dtype=float)
        assert weight_quantile(weights, q=0.99) == pytest.approx(98.0)
        assert weight_quantile(weights, q=0.5) == pytest.approx(49.0)

    def test_empty_is_zero(self):
        assert weight_quantile(np.array([])) == 0.0


class TestPropensityIdentityError:
    def test_truthful_uniform_log_is_near_zero(self):
        rng = np.random.default_rng(0)
        actions = rng.integers(0, 4, size=4000)
        propensities = np.full(4000, 0.25)
        assert propensity_identity_error(actions, propensities) < 0.1

    def test_deterministic_logging_recorded_as_certain_fails(self):
        # Propensity 1.0 on a two-action log: per-action mean of
        # 1{a_t=a}/p_t is the raw action frequency, far from 1.
        actions = np.array([0, 1] * 200 + [0])
        propensities = np.ones(401)
        error = propensity_identity_error(actions, propensities)
        assert error > 0.49

    def test_empty_is_zero(self):
        assert propensity_identity_error(np.array([]), np.array([])) == 0.0


class TestDiagnoseVerdicts:
    def healthy(self, n=1000):
        rng = np.random.default_rng(1)
        actions = rng.integers(0, 2, size=n)
        propensities = np.full(n, 0.5)
        weights = np.ones(n)
        return weights, propensities, actions

    def test_healthy_inputs_are_ok(self):
        weights, propensities, actions = self.healthy()
        d = diagnose(weights, propensities, actions, support_coverage=1.0)
        assert d.verdict == VERDICT_OK
        assert d.reliable
        assert d.reasons == ()

    def test_collapsed_ess_is_unreliable(self):
        weights, propensities, actions = self.healthy()
        weights = np.zeros_like(weights)
        weights[0] = 500.0
        d = diagnose(weights, propensities, actions, support_coverage=1.0)
        assert d.verdict == VERDICT_UNRELIABLE
        assert not d.reliable
        assert any("effective sample size" in r for r in d.reasons)

    def test_mean_weight_identity_break_is_unreliable(self):
        weights, propensities, actions = self.healthy()
        d = diagnose(weights * 2.0, propensities, actions, support_coverage=1.0)
        assert d.verdict == VERDICT_UNRELIABLE
        assert any("E[w]=1" in r for r in d.reasons)

    def test_low_coverage_is_unreliable(self):
        weights, propensities, actions = self.healthy()
        d = diagnose(weights, propensities, actions, support_coverage=0.3)
        assert d.verdict == VERDICT_UNRELIABLE
        assert any("logged support" in r for r in d.reasons)

    def test_moderate_coverage_only_warns(self):
        weights, propensities, actions = self.healthy()
        d = diagnose(weights, propensities, actions, support_coverage=0.8)
        assert d.verdict == VERDICT_WARN
        assert d.reliable

    def test_clipped_profile_ignores_downward_mean_weight(self):
        weights, propensities, actions = self.healthy()
        low = weights * 0.4  # clipping legitimately pulls E[w] below 1
        assert (
            diagnose(low, propensities, actions, 1.0, profile="clipped").verdict
            == VERDICT_OK
        )
        assert (
            diagnose(low, propensities, actions, 1.0, profile="ips").verdict
            == VERDICT_UNRELIABLE
        )

    def test_snips_profile_caps_mean_weight_break_at_warn(self):
        weights, propensities, actions = self.healthy()
        d = diagnose(
            weights * 2.0, propensities, actions, 1.0, profile="snips"
        )
        assert d.verdict == VERDICT_WARN

    def test_model_profile_never_fails_on_coverage(self):
        d = diagnose(None, np.full(100, 0.5), np.zeros(100, dtype=int), 0.1,
                     profile="model")
        assert d.verdict == VERDICT_WARN
        assert d.effective_sample_size is None
        assert d.mean_weight is None

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown profile"):
            diagnose(np.ones(5), np.full(5, 0.5), np.zeros(5, dtype=int),
                     1.0, profile="bogus")

    def test_custom_thresholds_respected(self):
        weights, propensities, actions = self.healthy()
        strict = DiagnosticThresholds(coverage_warn=0.999)
        d = diagnose(weights, propensities, actions, 0.99, thresholds=strict)
        assert d.verdict == VERDICT_WARN

    def test_to_dict_round_trips_through_json(self):
        import json

        weights, propensities, actions = self.healthy()
        d = diagnose(weights, propensities, actions, 1.0)
        payload = json.loads(json.dumps(d.to_dict()))
        assert payload["verdict"] == VERDICT_OK
        assert payload["n"] == 1000


class TestEstimatorsAttachDiagnostics:
    def test_every_weighted_estimator_attaches(self):
        dataset = make_uniform_dataset(400, seed=5)
        for estimator in (
            IPSEstimator(), ClippedIPSEstimator(), SNIPSEstimator()
        ):
            result = estimator.estimate(ConstantPolicy(1), dataset)
            assert result.diagnostics is not None
            assert result.diagnostics.profile == estimator.diagnostics_profile
            assert result.reliable

    def test_direct_method_uses_model_profile(self):
        from repro.core.estimators.direct import DirectMethodEstimator

        dataset = make_uniform_dataset(400, seed=6)
        result = DirectMethodEstimator().estimate(ConstantPolicy(0), dataset)
        assert result.diagnostics is not None
        assert result.diagnostics.profile == "model"
        assert result.diagnostics.effective_sample_size is None

    def test_doubly_robust_attaches(self):
        from repro.core.estimators.doubly_robust import DoublyRobustEstimator

        dataset = make_uniform_dataset(400, seed=7)
        result = DoublyRobustEstimator().estimate(UniformRandomPolicy(), dataset)
        assert result.diagnostics is not None
        assert result.diagnostics.verdict == VERDICT_OK


def degenerate_jsq_log(n=501, seed=3) -> Dataset:
    """Context-dependent logs from a deterministic JSQ-style balancer.

    The logging policy always picks the less-loaded server and the log
    truthfully records propensity 1.0 — exactly the A1 violation behind
    Table 2's confidently wrong "send to 1" estimate.
    """
    from repro.loadbalance.harvest import lb_action_space, lb_reward_range
    from repro.loadbalance.policies import least_loaded_policy

    rng = np.random.default_rng(seed)
    least = least_loaded_policy()
    dataset = Dataset(
        action_space=lb_action_space(2), reward_range=lb_reward_range()
    )
    for t in range(n):
        conns = rng.integers(0, 20, size=2)
        context = {"conns_0": float(conns[0]), "conns_1": float(conns[1])}
        action = least.action(context, [0, 1])
        latency = 0.1 + 0.02 * float(conns[action]) + 0.05 * rng.random()
        dataset.append(
            Interaction(
                context=context,
                action=action,
                reward=latency,
                propensity=1.0,  # deterministic choice, truthfully logged
                timestamp=float(t),
            )
        )
    return dataset


class TestTable2AcceptanceScenario:
    """The paper's central caveat, caught by the diagnostics."""

    def test_degenerate_policy_flagged_unreliable(self):
        from repro.loadbalance.policies import send_to_policy

        dataset = degenerate_jsq_log()
        result = IPSEstimator().estimate(send_to_policy(1), dataset)
        assert result.diagnostics.verdict == VERDICT_UNRELIABLE
        assert not result.reliable
        assert any(
            "identity" in reason for reason in result.diagnostics.reasons
        )

    def test_flagged_on_both_backends_identically(self):
        from repro.loadbalance.policies import send_to_policy

        dataset = degenerate_jsq_log()
        scalar = IPSEstimator(backend="scalar").estimate(
            send_to_policy(1), dataset
        )
        vectorized = IPSEstimator(backend="vectorized").estimate(
            send_to_policy(1), dataset
        )
        assert scalar.diagnostics.verdict == vectorized.diagnostics.verdict
        assert scalar.diagnostics.verdict == VERDICT_UNRELIABLE

    def test_well_supported_machine_health_policy_not_flagged(self):
        from repro.machinehealth.dataset import (
            build_full_feedback_dataset,
            simulate_exploration,
        )

        full = build_full_feedback_dataset(
            n_events=400, n_machines=100, seed=0
        )
        exploration = simulate_exploration(
            full.full, np.random.default_rng(1)
        )
        result = IPSEstimator().estimate(ConstantPolicy(3), exploration)
        assert result.diagnostics.verdict != VERDICT_UNRELIABLE
        assert result.reliable
        assert result.diagnostics.mean_weight == pytest.approx(1.0, abs=0.25)

    def test_fallback_degrades_to_direct_method_on_degenerate_log(self):
        from repro.loadbalance.policies import send_to_policy

        dataset = degenerate_jsq_log()
        result = FallbackEstimator().estimate(send_to_policy(1), dataset)
        # Every weighted rung trips the per-action identity check; the
        # terminal model rung serves a finite (biased-but-honest) value.
        assert result.estimator == "direct-method"
        assert np.isfinite(result.value)
        assert result.details["degraded"] is True
        attempted = [a["estimator"] for a in result.details["fallback"]]
        assert attempted[0] == "ips"
        assert attempted[-1] == "direct-method"
