"""Unit tests for feature engineering."""

import numpy as np
import pytest

from repro.core.features import FeatureEncoder, Featurizer, interaction_features


class TestFeatureEncoder:
    RECORDS = [
        {"sku": "a", "os": "linux", "age": 1.0},
        {"sku": "b", "os": "linux", "age": 3.0},
        {"sku": "a", "os": "windows", "age": 5.0},
    ]

    def test_one_hot_categoricals(self):
        encoder = FeatureEncoder(categorical=["sku"], numeric=["age"])
        encoder.fit(self.RECORDS)
        encoded = encoder.encode({"sku": "b", "age": 2.0})
        assert encoded["sku=b"] == 1.0
        assert "sku=a" not in encoded
        assert encoded["age"] == 2.0

    def test_unseen_category_goes_to_other(self):
        encoder = FeatureEncoder(categorical=["sku"]).fit(self.RECORDS)
        encoded = encoder.encode({"sku": "zzz"})
        assert encoded["sku=<other>"] == 1.0

    def test_standardize(self):
        encoder = FeatureEncoder(numeric=["age"], standardize=True)
        encoder.fit(self.RECORDS)
        # ages 1,3,5: mean 3, std sqrt(8/3)
        encoded = encoder.encode({"age": 3.0})
        assert encoded["age"] == pytest.approx(0.0)
        hi = encoder.encode({"age": 5.0})["age"]
        lo = encoder.encode({"age": 1.0})["age"]
        assert hi == pytest.approx(-lo)

    def test_missing_numeric_defaults_to_zero(self):
        encoder = FeatureEncoder(numeric=["age"]).fit(self.RECORDS)
        assert encoder.encode({})["age"] == 0.0

    def test_encode_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            FeatureEncoder(numeric=["age"]).encode({"age": 1.0})

    def test_fit_empty_raises(self):
        with pytest.raises(ValueError):
            FeatureEncoder(numeric=["age"]).fit([])

    def test_overlapping_fields_rejected(self):
        with pytest.raises(ValueError):
            FeatureEncoder(categorical=["x"], numeric=["x"])

    def test_encode_all(self):
        encoder = FeatureEncoder(numeric=["age"]).fit(self.RECORDS)
        assert len(encoder.encode_all(self.RECORDS)) == 3

    def test_constant_numeric_does_not_divide_by_zero(self):
        encoder = FeatureEncoder(numeric=["c"], standardize=True)
        encoder.fit([{"c": 5.0}, {"c": 5.0}])
        assert np.isfinite(encoder.encode({"c": 5.0})["c"])


class TestFeaturizer:
    def test_vector_shape_and_bias(self):
        featurizer = Featurizer(n_dims=16)
        vec = featurizer.vector({"x": 2.0})
        assert vec.shape == (16,)
        assert vec[-1] == 1.0  # bias slot

    def test_same_context_same_vector(self):
        featurizer = Featurizer(n_dims=16)
        a = featurizer.vector({"x": 2.0, "y": 1.0})
        b = featurizer.vector({"y": 1.0, "x": 2.0})
        np.testing.assert_array_equal(a, b)

    def test_feature_value_scales_linearly(self):
        featurizer = Featurizer(n_dims=32, bias=False)
        one = featurizer.vector({"x": 1.0})
        three = featurizer.vector({"x": 3.0})
        np.testing.assert_allclose(three, 3.0 * one)

    def test_no_bias_mode(self):
        featurizer = Featurizer(n_dims=8, bias=False)
        assert featurizer.vector({})[-1] == 0.0

    def test_too_few_dims_rejected(self):
        with pytest.raises(ValueError):
            Featurizer(n_dims=1)

    def test_action_vector_block_placement(self):
        featurizer = Featurizer(n_dims=8)
        base = featurizer.vector({"x": 1.0})
        placed = featurizer.action_vector({"x": 1.0}, action=2, n_actions=4)
        assert placed.shape == (32,)
        np.testing.assert_array_equal(placed[16:24], base)
        assert not placed[:16].any()
        assert not placed[24:].any()

    def test_action_vector_out_of_range(self):
        with pytest.raises(ValueError):
            Featurizer(8).action_vector({}, action=4, n_actions=4)

    def test_matrix(self):
        featurizer = Featurizer(n_dims=8)
        mat = featurizer.matrix([{"x": 1.0}, {"x": 2.0}])
        assert mat.shape == (2, 8)

    def test_matrix_empty(self):
        assert Featurizer(8).matrix([]).shape == (0, 8)


class TestInteractionFeatures:
    def test_product_added(self):
        out = interaction_features({"a": 2.0, "b": 3.0}, [("a", "b")])
        assert out["a*b"] == 6.0
        assert out["a"] == 2.0  # originals preserved

    def test_missing_feature_skips_pair(self):
        out = interaction_features({"a": 2.0}, [("a", "b")])
        assert "a*b" not in out

    def test_original_not_mutated(self):
        context = {"a": 1.0, "b": 1.0}
        interaction_features(context, [("a", "b")])
        assert "a*b" not in context
