"""The batch sampling engine: act_batch and sample_from_probabilities.

Three contracts under test:

1. **Propensity honesty** — sampled actions come from the same matrix
   the declared propensities are read from, so empirical frequencies
   must match ``probabilities_batch`` and ``propensities[t]`` must
   equal ``matrix[t, actions[t]]`` exactly.
2. **Batch-split determinism** — one uniform per row in row order
   means any batch split of the same generator yields the identical
   log (per-row is just ``batch_size=1``).
3. **Eligibility safety** — zero-probability (ineligible) actions are
   never sampled, for any split of probability mass.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.columns import ContextColumns, DecisionBatch, as_decision_batch
from repro.core.policies import (
    ConstantPolicy,
    EpsilonGreedyPolicy,
    HashPolicy,
    LinearThresholdPolicy,
    MixturePolicy,
    Policy,
    SoftmaxPolicy,
    UniformRandomPolicy,
    sample_from_probabilities,
)
from repro.loadbalance.policies import (
    least_loaded_policy,
    power_of_two_policy,
    round_robin_policy,
    window_randomized_weights_policy,
)


def make_contexts(n, n_features=3, seed=0):
    rng = np.random.default_rng(seed)
    values = rng.normal(size=(n, n_features))
    return [
        {f"conns_{j}": float(values[i, j]) for j in range(n_features)}
        for i in range(n)
    ]


class TestSampleFromProbabilities:
    def test_propensity_equals_matrix_entry(self):
        rng = np.random.default_rng(0)
        matrix = rng.random((500, 4))
        matrix /= matrix.sum(axis=1, keepdims=True)
        actions, propensities = sample_from_probabilities(
            matrix, np.random.default_rng(1)
        )
        assert (propensities == matrix[np.arange(500), actions]).all()

    def test_zero_probability_never_sampled(self):
        matrix = np.zeros((20_000, 5))
        matrix[:, 1] = 0.3
        matrix[:, 3] = 0.7
        actions, _ = sample_from_probabilities(matrix, np.random.default_rng(2))
        assert set(actions.tolist()) <= {1, 3}

    def test_rows_need_only_be_proportional(self):
        # Unnormalized rows: each row's CDF is scaled by its own total.
        matrix = np.array([[2.0, 6.0], [1.0, 1.0]])
        actions, propensities = sample_from_probabilities(
            np.tile(matrix, (5000, 1)), np.random.default_rng(3)
        )
        even = actions[0::2]
        assert abs((even == 1).mean() - 0.75) < 0.03

    def test_point_mass_always_hits(self):
        matrix = np.zeros((100, 3))
        matrix[:, 2] = 1.0
        actions, propensities = sample_from_probabilities(
            matrix, np.random.default_rng(4)
        )
        assert (actions == 2).all()
        assert (propensities == 1.0).all()

    def test_empty_matrix(self):
        actions, propensities = sample_from_probabilities(
            np.zeros((0, 3)), np.random.default_rng(0)
        )
        assert actions.shape == (0,)
        assert propensities.shape == (0,)

    def test_consumes_exactly_one_uniform_per_row(self):
        matrix = np.full((10, 2), 0.5)
        rng_a = np.random.default_rng(7)
        sample_from_probabilities(matrix, rng_a)
        rng_b = np.random.default_rng(7)
        rng_b.random(10)
        # Both generators must now be at the same stream position.
        assert rng_a.random() == rng_b.random()

    def test_rejects_negative_probabilities(self):
        with pytest.raises(ValueError, match="non-negative"):
            sample_from_probabilities(
                np.array([[0.5, -0.5]]), np.random.default_rng(0)
            )

    def test_rejects_zero_total_row(self):
        with pytest.raises(ValueError, match="zero total"):
            sample_from_probabilities(
                np.zeros((3, 2)), np.random.default_rng(0)
            )

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError, match="2-D"):
            sample_from_probabilities(
                np.array([0.5, 0.5]), np.random.default_rng(0)
            )

    @given(seed=st.integers(0, 2**16), k=st.integers(2, 6))
    @settings(max_examples=25, deadline=None)
    def test_frequencies_match_probabilities(self, seed, k):
        """Property: empirical action shares converge on the matrix row."""
        rng = np.random.default_rng(seed)
        row = rng.random(k) + 1e-3
        row /= row.sum()
        n = 20_000
        actions, _ = sample_from_probabilities(
            np.tile(row, (n, 1)), np.random.default_rng(seed + 1)
        )
        empirical = np.bincount(actions, minlength=k) / n
        assert np.abs(empirical - row).max() < 0.02


STOCHASTIC_POLICIES = [
    UniformRandomPolicy(),
    EpsilonGreedyPolicy(ConstantPolicy(1), 0.3),
    SoftmaxPolicy(lambda c, a: c.get(f"conns_{a}", 0.0), temperature=0.7),
    MixturePolicy(
        [UniformRandomPolicy(), ConstantPolicy(0)], [0.4, 0.6]
    ),
    power_of_two_policy(),
]


class TestActBatch:
    @pytest.mark.parametrize(
        "policy", STOCHASTIC_POLICIES, ids=lambda p: p.name
    )
    def test_batch_split_invariance(self, policy):
        """Same seed, any split → bit-identical actions/propensities."""
        contexts = make_contexts(997)
        eligible = (0, 1, 2)
        whole_a, whole_p = policy.act_batch(
            contexts, eligible, np.random.default_rng(42)
        )
        rng = np.random.default_rng(42)
        parts = [
            policy.act_batch(contexts[s:s + 89], eligible, rng)
            for s in range(0, 997, 89)
        ]
        split_a = np.concatenate([a for a, _ in parts])
        split_p = np.concatenate([p for _, p in parts])
        assert (whole_a == split_a).all()
        assert (whole_p == split_p).all()

    @pytest.mark.parametrize(
        "policy", STOCHASTIC_POLICIES, ids=lambda p: p.name
    )
    def test_propensities_match_probabilities_batch(self, policy):
        contexts = make_contexts(400)
        batch = DecisionBatch(contexts, (0, 1, 2))
        actions, propensities = policy.act_batch(
            batch, None, np.random.default_rng(5)
        )
        matrix = policy.probabilities_batch(batch)
        assert (propensities == matrix[np.arange(400), actions]).all()
        assert (propensities > 0).all()

    def test_empirical_frequencies_match_matrix(self):
        policy = EpsilonGreedyPolicy(ConstantPolicy(2), 0.4)
        contexts = make_contexts(30_000, seed=1)
        batch = DecisionBatch(contexts, (0, 1, 2))
        actions, _ = policy.act_batch(batch, None, np.random.default_rng(6))
        matrix = policy.probabilities_batch(batch)
        empirical = np.bincount(actions, minlength=3) / len(contexts)
        assert np.abs(empirical - matrix.mean(axis=0)).max() < 0.01

    def test_deterministic_policy_point_mass(self):
        policy = least_loaded_policy()
        contexts = make_contexts(200, seed=2)
        actions, propensities = policy.act_batch(
            contexts, (0, 1, 2), np.random.default_rng(0)
        )
        scalar = [policy.action(c, [0, 1, 2]) for c in contexts]
        assert (actions == scalar).all()
        assert (propensities == 1.0).all()

    def test_base_fallback_for_custom_policy(self):
        """A policy with only distribution() still batches correctly."""

        class Lopsided(Policy):
            name = "lopsided"

            def distribution(self, context, actions):
                probs = np.full(len(actions), 0.1 / (len(actions) - 1))
                probs[-1] = 0.9
                return probs

        actions, propensities = Lopsided().act_batch(
            make_contexts(5000), (0, 1, 2), np.random.default_rng(8)
        )
        assert abs((actions == 2).mean() - 0.9) < 0.02
        assert np.allclose(
            propensities, np.where(actions == 2, 0.9, 0.05)
        )

    def test_per_row_eligibility(self):
        contexts = make_contexts(100, seed=3)
        eligible = [(0, 1) if i % 2 == 0 else (1, 2) for i in range(100)]
        actions, propensities = UniformRandomPolicy().act_batch(
            contexts, eligible, np.random.default_rng(9)
        )
        for i in range(100):
            assert actions[i] in eligible[i]
        assert (propensities == 0.5).all()

    def test_prebuilt_batch_passthrough(self):
        contexts = make_contexts(50)
        batch = DecisionBatch(contexts, (0, 1))
        assert as_decision_batch(batch) is batch
        with pytest.raises(ValueError, match="eligible must be None"):
            as_decision_batch(batch, (0, 1))
        with pytest.raises(ValueError, match="required"):
            as_decision_batch(contexts)

    def test_hash_policy_matches_scalar_and_consumes_no_rng(self):
        policy = HashPolicy(lambda c: f"{c['conns_0']:.6f}")
        contexts = make_contexts(300, seed=4)
        rng = np.random.default_rng(10)
        actions, propensities = policy.act_batch(contexts, (0, 1, 2), rng)
        scalar = [
            policy.act(c, [0, 1, 2], np.random.default_rng(0))
            for c in contexts
        ]
        assert (actions == [a for a, _ in scalar]).all()
        assert (propensities == [p for _, p in scalar]).all()
        # The generator was never touched.
        assert rng.random() == np.random.default_rng(10).random()

    def test_linear_threshold_batch_matches_scalar(self):
        rng = np.random.default_rng(11)
        policy = LinearThresholdPolicy(
            rng.normal(size=(3, 4)), ["conns_0", "conns_1", "conns_2"]
        )
        contexts = make_contexts(150, seed=5)
        actions, _ = policy.act_batch(
            contexts, (0, 1, 2), np.random.default_rng(0)
        )
        scalar = [policy.action(c, [0, 1, 2]) for c in contexts]
        assert (actions == scalar).all()


class TestStatefulOverrides:
    def test_round_robin_cycles_across_batches(self):
        policy = round_robin_policy(3)
        contexts = make_contexts(10)
        first, _ = policy.act_batch(contexts[:4], (0, 1, 2), np.random.default_rng(0))
        second, _ = policy.act_batch(contexts[4:], (0, 1, 2), np.random.default_rng(0))
        assert np.concatenate([first, second]).tolist() == [
            0, 1, 2, 0, 1, 2, 0, 1, 2, 0
        ]

    def test_round_robin_batch_matches_scalar(self):
        contexts = make_contexts(30)
        batch_policy = round_robin_policy(3)
        scalar_policy = round_robin_policy(3)
        rng = np.random.default_rng(0)
        batched, props = batch_policy.act_batch(contexts, (0, 1, 2), rng)
        scalar = [
            scalar_policy.act(c, [0, 1, 2], rng)[0] for c in contexts
        ]
        assert batched.tolist() == scalar
        assert (props == 1 / 3).all()

    def test_window_randomized_split_invariance(self):
        contexts = make_contexts(500)
        whole_policy = window_randomized_weights_policy(3, window=20, seed=5)
        whole_a, whole_p = whole_policy.act_batch(
            contexts, (0, 1, 2), np.random.default_rng(13)
        )
        split_policy = window_randomized_weights_policy(3, window=20, seed=5)
        rng = np.random.default_rng(13)
        parts = [
            split_policy.act_batch(contexts[s:s + 33], (0, 1, 2), rng)
            for s in range(0, 500, 33)
        ]
        assert (whole_a == np.concatenate([a for a, _ in parts])).all()
        assert (whole_p == np.concatenate([p for _, p in parts])).all()

    def test_window_randomized_windows_share_weights(self):
        policy = window_randomized_weights_policy(3, window=25, seed=7)
        _, propensities = policy.act_batch(
            make_contexts(100), (0, 1, 2), np.random.default_rng(0)
        )
        # Within one window the propensity of a given action is one of
        # at most 3 distinct drawn weights; across the 4 windows there
        # are at most 12.
        assert len(set(propensities.tolist())) <= 12


class TestDecisionBatch:
    def test_from_action_space_unrestricted(self):
        from repro.core.types import ActionSpace

        batch = DecisionBatch.from_action_space(
            make_contexts(10), ActionSpace(4)
        )
        assert batch.n_actions == 4
        assert batch.uniform_eligibility
        assert batch.eligible_mask.all()

    def test_from_action_space_restricted(self):
        from repro.core.types import ActionSpace

        space = ActionSpace(
            3, eligibility=lambda c: [0, 1] if c["conns_0"] > 0 else [1, 2]
        )
        contexts = make_contexts(20, seed=6)
        batch = DecisionBatch.from_action_space(contexts, space)
        for i, context in enumerate(contexts):
            assert list(batch.eligible_lists[i]) == space.actions(context)

    def test_from_observed_actions(self):
        batch = DecisionBatch.from_action_space(
            make_contexts(5), None, observed=[3, 1, 1]
        )
        assert batch.eligible_lists[0] == (1, 3)
        assert batch.n_actions == 4

    def test_rejects_mismatched_rows(self):
        with pytest.raises(ValueError, match="eligibility rows"):
            DecisionBatch(make_contexts(3), [(0, 1)] * 2)

    def test_rejects_empty_row(self):
        with pytest.raises(ValueError, match="at least one"):
            DecisionBatch(make_contexts(2), [(0,), ()])

    def test_is_context_columns(self):
        batch = DecisionBatch(make_contexts(4), (0, 1))
        assert isinstance(batch, ContextColumns)
