"""Unit tests for the SWITCH estimator."""

import numpy as np
import pytest

from repro.core.estimators.direct import DirectMethodEstimator, RewardModel
from repro.core.estimators.ips import IPSEstimator
from repro.core.estimators.switch import SwitchEstimator
from repro.core.policies import ConstantPolicy
from repro.core.types import ActionSpace, Dataset, Interaction

from tests.conftest import make_uniform_dataset


def true_value(action: int) -> float:
    return 0.2 + 0.15 * action + 0.3 * 0.5


class TestSwitchEstimator:
    def test_huge_tau_recovers_ips(self):
        dataset = make_uniform_dataset(800, seed=1)
        switch = SwitchEstimator(tau=1e9).estimate(ConstantPolicy(1), dataset)
        ips = IPSEstimator().estimate(ConstantPolicy(1), dataset)
        assert switch.value == pytest.approx(ips.value)
        assert switch.details["switch_fraction"] == 0.0

    def test_tiny_tau_switches_every_matched_point_to_dm(self):
        """With τ below every nonzero weight, all matched points use
        the model.  For the uniform candidate every point matches
        (weight 1 > τ), so the estimate equals DM exactly; unmatched
        points of other candidates contribute 0 either way."""
        from repro.core.policies import UniformRandomPolicy

        dataset = make_uniform_dataset(800, seed=2)
        model = RewardModel(3).fit(dataset)
        switch = SwitchEstimator(tau=1e-9, model=model).estimate(
            UniformRandomPolicy(), dataset
        )
        dm = DirectMethodEstimator(model).estimate(
            UniformRandomPolicy(), dataset
        )
        assert switch.value == pytest.approx(dm.value)
        assert switch.details["switch_fraction"] == 1.0

    def test_recovers_truth_at_moderate_tau(self):
        dataset = make_uniform_dataset(20000, seed=3)
        switch = SwitchEstimator(tau=10.0).estimate(ConstantPolicy(2), dataset)
        assert switch.value == pytest.approx(true_value(2), abs=0.03)

    def test_caps_variance_on_skewed_propensities(self):
        """With rare low-propensity actions, SWITCH beats IPS spread."""
        def skewed_dataset(seed):
            rng = np.random.default_rng(seed)
            ds = Dataset(action_space=ActionSpace(2))
            for t in range(400):
                context = {"load": float(rng.uniform()), "bias": 1.0}
                if rng.random() < 0.05:
                    action, p = 0, 0.05
                else:
                    action, p = 1, 0.95
                reward = 0.4 + 0.2 * action + 0.2 * context["load"]
                ds.append(Interaction(context, action, reward, p, float(t)))
            return ds

        ips_vals, switch_vals = [], []
        for seed in range(25):
            ds = skewed_dataset(700 + seed)
            ips_vals.append(IPSEstimator().estimate(ConstantPolicy(0), ds).value)
            switch_vals.append(
                SwitchEstimator(tau=5.0).estimate(ConstantPolicy(0), ds).value
            )
        assert np.std(switch_vals) < np.std(ips_vals)

    def test_switch_fraction_reported(self):
        dataset = make_uniform_dataset(500, seed=4)
        # Propensities are 1/3 -> matching weights are 3 > tau=2.
        result = SwitchEstimator(tau=2.0).estimate(ConstantPolicy(0), dataset)
        assert result.details["switch_fraction"] == pytest.approx(
            result.details["match_rate"], abs=0.01
        )

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            SwitchEstimator(tau=0.0)

    def test_empty_dataset_raises(self):
        with pytest.raises(ValueError):
            SwitchEstimator().estimate(ConstantPolicy(0), Dataset())
