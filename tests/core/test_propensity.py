"""Unit tests for propensity inference."""

import numpy as np
import pytest

from repro.core.policies import (
    ConstantPolicy,
    EpsilonGreedyPolicy,
    SoftmaxPolicy,
    UniformRandomPolicy,
)
from repro.core.propensity import (
    DeclaredPropensityModel,
    EmpiricalPropensityModel,
    RegressionPropensityModel,
)


class TestDeclaredPropensityModel:
    def test_reads_policy_distribution(self):
        model = DeclaredPropensityModel(
            EpsilonGreedyPolicy(ConstantPolicy(0), epsilon=0.3)
        )
        assert model.propensity({}, 0, [0, 1, 2]) == pytest.approx(0.8)
        assert model.propensity({}, 1, [0, 1, 2]) == pytest.approx(0.1)

    def test_zero_probability_action_raises(self):
        model = DeclaredPropensityModel(ConstantPolicy(0))
        with pytest.raises(ValueError):
            model.propensity({}, 1, [0, 1])

    def test_annotate_builds_dataset(self):
        model = DeclaredPropensityModel(UniformRandomPolicy())
        records = [({"x": 1.0}, 0, 0.5), ({"x": 2.0}, 1, 0.7)]
        dataset = model.annotate(records, n_actions=2)
        assert len(dataset) == 2
        assert dataset[0].propensity == pytest.approx(0.5)
        assert dataset[1].reward == 0.7

    def test_annotate_empty_raises(self):
        model = DeclaredPropensityModel(UniformRandomPolicy())
        with pytest.raises(ValueError):
            model.annotate([])

    def test_annotate_infers_action_count(self):
        model = DeclaredPropensityModel(UniformRandomPolicy())
        records = [({}, 3, 0.1)]  # max action 3 -> 4 actions
        dataset = model.annotate(records)
        assert dataset[0].propensity == pytest.approx(0.25)


class TestEmpiricalPropensityModel:
    def test_learns_frequencies(self):
        model = EmpiricalPropensityModel().fit([0] * 80 + [1] * 20)
        p0 = model.propensity({}, 0, [0, 1])
        p1 = model.propensity({}, 1, [0, 1])
        assert p0 == pytest.approx(81 / 102)  # add-one smoothing
        assert p1 == pytest.approx(21 / 102)

    def test_unseen_action_gets_smoothed_positive_propensity(self):
        model = EmpiricalPropensityModel().fit([0] * 10)
        assert model.propensity({}, 1, [0, 1]) > 0.0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            EmpiricalPropensityModel().propensity({}, 0, [0, 1])

    def test_fit_empty_raises(self):
        with pytest.raises(ValueError):
            EmpiricalPropensityModel().fit([])


class TestRegressionPropensityModel:
    def _logged_data(self, n=4000, seed=0):
        """A context-dependent logging policy: softmax on x."""
        rng = np.random.default_rng(seed)
        logging = SoftmaxPolicy(
            lambda ctx, a: 2.0 * ctx["x"] * (1 if a == 1 else -1),
            temperature=1.0,
        )
        contexts, actions = [], []
        for _ in range(n):
            context = {"x": float(rng.uniform(-1, 1)), "bias": 1.0}
            action, _ = logging.act(context, [0, 1], rng)
            contexts.append(context)
            actions.append(action)
        return logging, contexts, actions

    def test_recovers_context_dependent_distribution(self):
        logging, contexts, actions = self._logged_data()
        model = RegressionPropensityModel(2, epochs=3).fit(contexts, actions)
        for x in (-0.8, 0.0, 0.8):
            context = {"x": x, "bias": 1.0}
            truth = logging.distribution(context, [0, 1])
            learned = model.distribution(context)
            np.testing.assert_allclose(learned, truth, atol=0.1)

    def test_propensity_restricted_to_eligible(self):
        _, contexts, actions = self._logged_data(n=500)
        model = RegressionPropensityModel(3).fit(contexts, actions)
        # Restricting to a single eligible action renormalizes to 1.
        assert model.propensity({"x": 0.0}, 1, [1]) == pytest.approx(1.0)

    def test_floor_keeps_propensities_positive(self):
        _, contexts, actions = self._logged_data(n=1000)
        model = RegressionPropensityModel(2, floor=0.01).fit(contexts, actions)
        probs = model.distribution({"x": 5.0, "bias": 1.0})  # extreme context
        assert probs.min() >= 0.009

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RegressionPropensityModel(2).distribution({})

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            RegressionPropensityModel(2).fit([{}], [0, 1])

    def test_fit_empty_raises(self):
        with pytest.raises(ValueError):
            RegressionPropensityModel(2).fit([], [])

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            RegressionPropensityModel(1)
        with pytest.raises(ValueError):
            RegressionPropensityModel(2, floor=0.0)
