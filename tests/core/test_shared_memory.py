"""Shared-memory transport: packing fidelity and segment lifecycle.

Two families of guarantees (see :mod:`repro.core.shm`):

- **Fidelity** — a view attached from a packed block is
  indistinguishable from the original columns: same array bits, same
  rebuilt context dicts *in the same insertion order* (hashed
  featurization depends on it), same feature matrices, same eligible
  lists.
- **Lifecycle** — every segment this process creates is unlinked on
  normal completion, on exceptions mid-fold, and at interpreter exit;
  attach never double-registers with the resource tracker, so a clean
  run emits zero leak warnings even under ``-W error``.
"""

import os
import pickle
import subprocess
import sys

import numpy as np
import pytest

from repro.core import shm
from repro.core.columns import DatasetColumns
from repro.core.engine import evaluate_jsonl_chunked, use_backend
from repro.core.estimators.ips import IPSEstimator
from repro.core.features import Featurizer
from repro.core.policies import ConstantPolicy, EpsilonGreedyPolicy
from repro.core.types import ActionSpace, Dataset, Interaction, RewardRange

pytestmark = pytest.mark.skipif(
    not shm.available(), reason="shared memory unavailable"
)


class ExplodingPolicy(ConstantPolicy):
    """Picklable policy that fails inside the fold (any process)."""

    def probabilities_batch(self, batch):
        raise RuntimeError("boom in worker")


def make_dataset(n=60, seed=0, shuffled_keys=False):
    """A small log whose contexts exercise insertion-order fidelity."""
    rng = np.random.default_rng(seed)
    rows = []
    for i in range(n):
        if shuffled_keys and i % 2:
            context = {"b": float(rng.uniform()), "a": float(i)}
        else:
            context = {"a": float(i), "b": float(rng.uniform())}
        action = int(rng.integers(0, 3))
        rows.append(
            Interaction(context, action, float(rng.uniform()), 1 / 3,
                        timestamp=float(i))
        )
    return Dataset(rows, action_space=ActionSpace(3),
                   reward_range=RewardRange(0.0, 1.0))


class TestPackingFidelity:
    def test_descriptor_is_compact_and_picklable(self):
        columns = make_dataset(n=500).columns()
        with shm.pack_columns(columns) as block:
            blob = pickle.dumps(block.descriptor)
            # The whole point: the payload is descriptor-sized no
            # matter how many rows the segment holds.
            assert len(blob) < 2048
            assert block.descriptor.nbytes > 500 * 8

    def test_attached_view_matches_original(self):
        columns = make_dataset(shuffled_keys=True).columns()
        with shm.pack_columns(columns) as block:
            attached = shm.attach_columns(block.descriptor, cache=False)
            for name in ("actions", "rewards", "propensities",
                         "timestamps", "eligible_mask",
                         "eligible_counts"):
                np.testing.assert_array_equal(
                    getattr(attached, name), getattr(columns, name), name
                )
            assert attached.n == columns.n
            assert attached.n_actions == columns.n_actions
            assert attached.uniform_eligibility == columns.uniform_eligibility
            assert attached.reward_range == columns.reward_range
            # Contexts rebuild with identical content AND key order.
            for rebuilt, original in zip(attached.contexts,
                                         columns.contexts):
                assert rebuilt == original
                assert list(rebuilt) == list(original)
            attached = None
            shm.detach(block.descriptor)

    def test_feature_paths_bit_identical(self):
        columns = make_dataset(shuffled_keys=True).columns()
        featurizer = Featurizer(n_dims=16)
        with shm.pack_columns(columns) as block:
            attached = shm.attach_columns(block.descriptor, cache=False)
            np.testing.assert_array_equal(
                attached.feature_matrix(("a", "b", "missing")),
                columns.feature_matrix(("a", "b", "missing")),
            )
            # Hashed featurization sums colliding slots in context
            # iteration order — the order map must preserve it exactly.
            np.testing.assert_array_equal(
                attached.hashed_matrix(featurizer),
                columns.hashed_matrix(featurizer),
            )
            assert attached.eligible_lists == columns.eligible_lists
            attached = None
            shm.detach(block.descriptor)

    def test_non_numeric_context_refused(self):
        rows = [Interaction({"tag": 1.0, "flag": True}, 0, 0.5, 0.5)]
        columns = Dataset(rows, action_space=ActionSpace(2)).columns()
        with pytest.raises(shm.SharedMemoryUnsupported, match="not numeric"):
            shm.pack_columns(columns)
        assert shm.owned_segments() == ()

    def test_oversized_vocabulary_refused(self):
        rows = [
            Interaction({f"k{i}": 1.0 for i in range(shm.MAX_CONTEXT_KEYS + 1)},
                        0, 0.5, 0.5)
        ]
        columns = Dataset(rows, action_space=ActionSpace(2)).columns()
        with pytest.raises(shm.SharedMemoryUnsupported, match="exceed"):
            shm.pack_columns(columns)

    def test_packed_contexts_slice_is_lazy_view(self):
        columns = make_dataset(n=20, shuffled_keys=True).columns()
        with shm.pack_columns(columns) as block:
            attached = shm.attach_columns(block.descriptor, cache=False)
            window = attached.contexts[5:10]
            assert len(window) == 5
            assert window[0] == columns.contexts[5]
            assert list(window[0]) == list(columns.contexts[5])
            window = attached = None
            shm.detach(block.descriptor)


class TestSegmentLifecycle:
    def test_release_unlinks_and_is_idempotent(self):
        columns = make_dataset().columns()
        block = shm.pack_columns(columns)
        name = block.descriptor.segment
        assert name in shm.owned_segments()
        block.release()
        assert name not in shm.owned_segments()
        with pytest.raises(FileNotFoundError):
            shm._attach_segment(name)
        block.release()  # idempotent

    def test_memoized_block_released_with_dataset_cache(self):
        dataset = make_dataset()
        block = dataset.columns().shared_block()
        name = block.descriptor.segment
        assert name in shm.owned_segments()
        # Mutating the dataset invalidates the columns cache, which
        # must unlink the stale view's segment rather than leak it.
        dataset.append(Interaction({"a": 1.0}, 0, 0.5, 1 / 3))
        dataset.columns()
        assert name not in shm.owned_segments()

    def test_release_shared_block_idempotent_without_block(self):
        columns = make_dataset().columns()
        columns.release_shared_block()  # never packed: no-op
        block = columns.shared_block()
        columns.release_shared_block()
        assert block.released
        columns.release_shared_block()

    def test_exception_mid_fold_releases_chunk_segments(self, tmp_path):
        dataset = make_dataset(n=120, seed=2)
        path = tmp_path / "log.jsonl"
        dataset.save_jsonl(str(path))
        with pytest.raises(RuntimeError, match="boom in worker"):
            evaluate_jsonl_chunked(
                str(path), [ExplodingPolicy(1)], [IPSEstimator()],
                chunk_size=16, workers=2,
            )
        # Every one-shot chunk segment was released in the finally
        # blocks, exceptional path included.
        assert shm.owned_segments() == ()

    def test_clean_subprocess_emits_no_leak_warnings(self, tmp_path):
        # A full shared-backend run + parallel bootstrap under
        # ``-W error``: any resource_tracker double-registration or
        # leftover segment at exit would fail or warn on stderr.
        script = tmp_path / "run_shared.py"
        script.write_text(
            "import numpy as np\n"
            "from repro.core.bootstrap import bootstrap_interval_from_terms\n"
            "from repro.core.engine import use_backend\n"
            "from repro.core.estimators.ips import IPSEstimator\n"
            "from repro.core.policies import ConstantPolicy\n"
            "from repro.core.types import ActionSpace, Dataset, Interaction\n"
            "rng = np.random.default_rng(0)\n"
            "rows = [Interaction({'x': float(i)}, int(rng.integers(0, 3)),\n"
            "                    float(rng.uniform()), 1 / 3)\n"
            "        for i in range(200)]\n"
            "dataset = Dataset(rows, action_space=ActionSpace(3))\n"
            "with use_backend('shared', chunk_size=32, workers=2):\n"
            "    IPSEstimator().estimate(ConstantPolicy(1), dataset)\n"
            "bootstrap_interval_from_terms(\n"
            "    rng.random(600), seed=3, n_boot=512, workers=2)\n"
            "from repro.core import shm\n"
            "print('OWNED', len(shm.owned_segments()))\n"
        )
        env = dict(os.environ, PYTHONPATH="src")
        result = subprocess.run(
            [sys.executable, "-W", "error::UserWarning", str(script)],
            capture_output=True, text=True, env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            timeout=300,
        )
        assert result.returncode == 0, result.stderr
        assert "leaked shared_memory" not in result.stderr
        assert "resource_tracker" not in result.stderr
        # Segments may legitimately be owned *during* the run (the
        # memoized dataset block) — the atexit hook unlinks them.


class TestSharedBlockMemo:
    def test_shared_block_memoized_and_rebuilt_after_release(self):
        columns = make_dataset().columns()
        first = columns.shared_block()
        assert columns.shared_block() is first
        first.release()
        second = columns.shared_block()
        assert second is not first
        assert not second.released
        second.release()

    def test_ips_weights_memoized_per_policy(self):
        columns = make_dataset().columns()
        policy = EpsilonGreedyPolicy(ConstantPolicy(0), 0.2)
        first = columns.ips_weights(policy)
        assert columns.ips_weights(policy) is first
        other = columns.ips_weights(ConstantPolicy(1))
        assert other is not first
        np.testing.assert_array_equal(
            first,
            columns.logged_probabilities(policy) / columns.propensities,
        )
