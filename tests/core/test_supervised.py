"""Unit tests for the full-feedback supervised baseline."""

import numpy as np
import pytest

from repro.core.learners.supervised import SupervisedTrainer
from repro.core.types import ActionSpace, Dataset, Interaction


class TestSupervisedTrainer:
    def test_learns_optimal_contextual_policy(self, full_feedback_dataset):
        trainer = SupervisedTrainer(4, l2=0.01).fit(full_feedback_dataset)
        policy = trainer.policy()
        # Full rewards favor even actions for x > 0 and odd for x < 0
        # (action 3 has a +0.1 bump: check construction in conftest).
        chosen_pos = policy.action({"x": 0.9, "bias": 1.0}, [0, 1, 2, 3])
        chosen_neg = policy.action({"x": -0.9, "bias": 1.0}, [0, 1, 2, 3])
        assert chosen_pos in (0, 2)
        assert chosen_neg in (1, 3)

    def test_average_reward_matches_lookup(self, full_feedback_dataset):
        trainer = SupervisedTrainer(4, l2=0.01).fit(full_feedback_dataset)
        value = trainer.average_reward(full_feedback_dataset)
        # Recompute by hand.
        policy = trainer.policy()
        manual = np.mean(
            [
                i.full_rewards[policy.action(i.context, [0, 1, 2, 3])]
                for i in full_feedback_dataset
            ]
        )
        assert value == pytest.approx(float(manual))

    def test_beats_best_constant(self, full_feedback_dataset):
        trainer = SupervisedTrainer(4, l2=0.01).fit(full_feedback_dataset)
        learned = trainer.average_reward(full_feedback_dataset)
        best_constant = max(
            np.mean([i.full_rewards[a] for i in full_feedback_dataset])
            for a in range(4)
        )
        assert learned > best_constant

    def test_requires_full_rewards(self):
        ds = Dataset(action_space=ActionSpace(2))
        ds.append(Interaction({}, 0, 0.5, 1.0))  # no full_rewards
        with pytest.raises(ValueError):
            SupervisedTrainer(2).fit(ds)

    def test_rejects_wrong_reward_count(self):
        ds = Dataset(action_space=ActionSpace(3))
        ds.append(Interaction({}, 0, 0.5, 1.0, full_rewards=[0.5, 0.6]))
        with pytest.raises(ValueError):
            SupervisedTrainer(3).fit(ds)

    def test_fit_empty_raises(self):
        with pytest.raises(ValueError):
            SupervisedTrainer(2).fit(Dataset())

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            SupervisedTrainer(2).predict({}, 0)
        with pytest.raises(RuntimeError):
            SupervisedTrainer(2).policy()

    def test_minimize_mode(self):
        ds = Dataset(action_space=ActionSpace(2))
        for t in range(100):
            ds.append(
                Interaction({"bias": 1.0}, 0, 0.9, 1.0, full_rewards=[0.9, 0.1])
            )
        trainer = SupervisedTrainer(2, maximize=False).fit(ds)
        assert trainer.policy().action({"bias": 1.0}, [0, 1]) == 1

    def test_invalid_n_actions(self):
        with pytest.raises(ValueError):
            SupervisedTrainer(0)
