"""Unit tests for exploration design helpers."""

import math

import pytest

from repro.core.design import (
    epsilon_for_deadline,
    exploration_plan,
    verify_plan,
    wasted_potential,
)
from repro.core.estimators.bounds import ips_error_bound


class TestExplorationPlan:
    def test_plan_meets_its_target(self):
        plan = exploration_plan(
            n_actions=25, traffic_per_day=1e6, policy_class_size=10**6
        )
        assert verify_plan(plan)

    def test_epsilon_is_fraction_over_actions(self):
        plan = exploration_plan(
            n_actions=10, traffic_per_day=1e5, exploration_fraction=0.2
        )
        assert plan.epsilon == pytest.approx(0.02)

    def test_days_to_target(self):
        plan = exploration_plan(n_actions=4, traffic_per_day=1000.0)
        assert plan.days_to_target == pytest.approx(
            plan.required_n / 1000.0
        )

    def test_less_exploration_needs_more_days(self):
        full = exploration_plan(
            n_actions=10, traffic_per_day=1e5, exploration_fraction=1.0
        )
        partial = exploration_plan(
            n_actions=10, traffic_per_day=1e5, exploration_fraction=0.1
        )
        assert partial.days_to_target == pytest.approx(
            10.0 * full.days_to_target
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            exploration_plan(n_actions=0, traffic_per_day=100.0)
        with pytest.raises(ValueError):
            exploration_plan(n_actions=2, traffic_per_day=0.0)
        with pytest.raises(ValueError):
            exploration_plan(
                n_actions=2, traffic_per_day=1.0, exploration_fraction=0.0
            )


class TestWastedPotential:
    def test_grows_exponentially_in_n(self):
        small = wasted_potential(10**4, epsilon=0.1)
        large = wasted_potential(2 * 10**4, epsilon=0.1)
        # Doubling N squares K/delta (log K grows linearly).
        assert large / small == pytest.approx(
            small / 0.05, rel=1e-6
        )

    def test_paper_scale_example(self):
        """A system making 10M randomized decisions/day at eps=0.04
        holds enormous evaluation capacity."""
        k = wasted_potential(10**7, epsilon=0.04)
        assert k > 10**6

    def test_overflow_guard(self):
        assert wasted_potential(10**12, epsilon=1.0) == 1e300

    def test_validation(self):
        with pytest.raises(ValueError):
            wasted_potential(0, epsilon=0.1)
        with pytest.raises(ValueError):
            wasted_potential(100, epsilon=0.0)


class TestEpsilonForDeadline:
    def test_solves_eq1(self):
        epsilon = epsilon_for_deadline(
            n_actions=25, traffic_total=10**7, policy_class_size=10**6
        )
        achieved = ips_error_bound(10**7, epsilon, k=10**6, delta=0.05)
        assert achieved == pytest.approx(0.05, rel=1e-9)

    def test_more_traffic_needs_less_epsilon(self):
        small = epsilon_for_deadline(n_actions=25, traffic_total=10**7)
        large = epsilon_for_deadline(n_actions=25, traffic_total=10**8)
        assert large < small

    def test_infeasible_budget_raises(self):
        with pytest.raises(ValueError, match="cannot reach"):
            epsilon_for_deadline(n_actions=25, traffic_total=100.0)

    def test_feasibility_boundary_consistent_with_plan(self):
        """epsilon_for_deadline and exploration_plan agree at the
        boundary: planning with the solved epsilon's traffic gives
        back the same N."""
        traffic = 5 * 10**6
        epsilon = epsilon_for_deadline(n_actions=10, traffic_total=traffic)
        # Eq. 1 with that epsilon needs exactly `traffic` samples.
        from repro.core.estimators.bounds import ips_sample_size

        assert ips_sample_size(0.05, epsilon, k=10**6) == pytest.approx(
            traffic, rel=1e-9
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            epsilon_for_deadline(n_actions=0, traffic_total=100.0)
        with pytest.raises(ValueError):
            epsilon_for_deadline(n_actions=2, traffic_total=0.0)
