"""Unit tests for shared estimator plumbing."""

import numpy as np
import pytest

from repro.core.estimators.base import (
    EstimatorResult,
    eligible_actions_fn,
)
from repro.core.types import ActionSpace, Dataset, Interaction


class TestEligibleActionsFn:
    def test_uses_attached_action_space(self):
        space = ActionSpace(4)
        ds = Dataset(action_space=space)
        ds.append(Interaction({}, 0, 0.5, 1.0))
        fn = eligible_actions_fn(ds)
        assert fn(ds[0]) == [0, 1, 2, 3]

    def test_context_dependent_eligibility(self):
        space = ActionSpace(
            4, eligibility=lambda ctx: [0, 1] if ctx.get("half") else [2, 3]
        )
        ds = Dataset(action_space=space)
        ds.append(Interaction({"half": 1.0}, 0, 0.5, 0.5))
        ds.append(Interaction({}, 2, 0.5, 0.5))
        fn = eligible_actions_fn(ds)
        assert fn(ds[0]) == [0, 1]
        assert fn(ds[1]) == [2, 3]

    def test_falls_back_to_observed_actions(self):
        ds = Dataset()  # no action space attached
        ds.append(Interaction({}, 2, 0.5, 0.5))
        ds.append(Interaction({}, 5, 0.5, 0.5))
        fn = eligible_actions_fn(ds)
        assert fn(ds[0]) == [2, 5]

    def test_empty_dataset_fallback(self):
        fn = eligible_actions_fn(Dataset())
        assert fn(None) == [0]


class TestEstimatorResult:
    def test_confidence_interval_z(self):
        result = EstimatorResult(
            value=1.0, std_error=0.1, n=100, effective_n=50, estimator="x"
        )
        lo, hi = result.confidence_interval(z=2.0)
        assert lo == pytest.approx(0.8)
        assert hi == pytest.approx(1.2)

    def test_repr_contains_essentials(self):
        result = EstimatorResult(
            value=0.5, std_error=0.05, n=10, effective_n=3, estimator="ips"
        )
        text = repr(result)
        assert "ips" in text
        assert "0.5" in text
        assert "n=10" in text

    def test_details_default_empty(self):
        result = EstimatorResult(0.0, 0.0, 1, 1, "x")
        assert result.details == {}
