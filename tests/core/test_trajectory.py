"""Unit tests for trajectory importance-sampling estimators."""

import numpy as np
import pytest

from repro.core.estimators.trajectory import (
    PerDecisionISEstimator,
    Trajectory,
    TrajectoryISEstimator,
    split_into_trajectories,
)
from repro.core.policies import ConstantPolicy, UniformRandomPolicy
from repro.core.types import ActionSpace, Dataset, Interaction

from tests.conftest import make_uniform_dataset


class TestSplitIntoTrajectories:
    def test_even_split(self):
        ds = make_uniform_dataset(100, seed=0)
        trajectories = split_into_trajectories(ds, horizon=10)
        assert len(trajectories) == 10
        assert all(len(t) == 10 for t in trajectories)

    def test_trailing_partial_window_dropped(self):
        ds = make_uniform_dataset(25, seed=0)
        trajectories = split_into_trajectories(ds, horizon=10)
        assert len(trajectories) == 2

    def test_order_preserved(self):
        ds = make_uniform_dataset(20, seed=0)
        trajectories = split_into_trajectories(ds, horizon=5)
        assert trajectories[1].interactions[0].timestamp == 5.0

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            split_into_trajectories(make_uniform_dataset(10), horizon=0)

    def test_total_reward(self):
        ds = Dataset()
        for r in (0.1, 0.2, 0.3):
            ds.append(Interaction({}, 0, r, 1.0))
        [trajectory] = split_into_trajectories(ds, horizon=3)
        assert trajectory.total_reward() == pytest.approx(0.6)


class TestTrajectoryIS:
    def test_logging_policy_recovers_mean_reward(self):
        ds = make_uniform_dataset(600, seed=1)
        estimate = TrajectoryISEstimator(horizon=5).estimate(
            UniformRandomPolicy(), ds
        )
        assert estimate.value == pytest.approx(
            float(ds.rewards().mean()), abs=1e-9
        )

    def test_constant_policy_unbiased_in_iid_setting(self):
        values = []
        for seed in range(40):
            ds = make_uniform_dataset(800, seed=300 + seed)
            values.append(
                TrajectoryISEstimator(horizon=2)
                .estimate(ConstantPolicy(1), ds)
                .value
            )
        truth = 0.2 + 0.15 * 1 + 0.3 * 0.5
        assert np.mean(values) == pytest.approx(truth, abs=0.05)

    def test_variance_explodes_with_horizon(self):
        """The §5 warning: longer horizons mean fewer matches and far
        higher variance."""
        short_se, long_se = [], []
        for seed in range(10):
            ds = make_uniform_dataset(3000, seed=400 + seed)
            short_se.append(
                TrajectoryISEstimator(horizon=1)
                .estimate(ConstantPolicy(1), ds)
                .std_error
            )
            long_se.append(
                TrajectoryISEstimator(horizon=6)
                .estimate(ConstantPolicy(1), ds)
                .std_error
            )
        assert np.mean(long_se) > 2 * np.mean(short_se)

    def test_match_fraction_decays_geometrically(self):
        ds = make_uniform_dataset(9000, seed=2)
        est_h2 = TrajectoryISEstimator(horizon=2).estimate(ConstantPolicy(0), ds)
        est_h4 = TrajectoryISEstimator(horizon=4).estimate(ConstantPolicy(0), ds)
        frac_h2 = est_h2.details["nonzero_weight"] / est_h2.details["episodes"]
        frac_h4 = est_h4.details["nonzero_weight"] / est_h4.details["episodes"]
        assert frac_h2 == pytest.approx((1 / 3) ** 2, abs=0.05)
        assert frac_h4 == pytest.approx((1 / 3) ** 4, abs=0.02)

    def test_dataset_smaller_than_horizon_raises(self):
        ds = make_uniform_dataset(3, seed=0)
        with pytest.raises(ValueError):
            TrajectoryISEstimator(horizon=10).estimate(ConstantPolicy(0), ds)

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            TrajectoryISEstimator(horizon=0)


class TestPerDecisionIS:
    def test_logging_policy_recovers_mean_reward(self):
        ds = make_uniform_dataset(600, seed=3)
        estimate = PerDecisionISEstimator(horizon=5).estimate(
            UniformRandomPolicy(), ds
        )
        assert estimate.value == pytest.approx(
            float(ds.rewards().mean()), abs=1e-9
        )

    def test_lower_variance_than_full_trajectory(self):
        pdis_se, tis_se = [], []
        for seed in range(10):
            ds = make_uniform_dataset(3000, seed=500 + seed)
            pdis_se.append(
                PerDecisionISEstimator(horizon=4)
                .estimate(ConstantPolicy(1), ds)
                .std_error
            )
            tis_se.append(
                TrajectoryISEstimator(horizon=4)
                .estimate(ConstantPolicy(1), ds)
                .std_error
            )
        assert np.mean(pdis_se) < np.mean(tis_se)

    def test_horizon_one_equals_trajectory_is(self):
        ds = make_uniform_dataset(500, seed=4)
        pdis = PerDecisionISEstimator(horizon=1).estimate(ConstantPolicy(1), ds)
        tis = TrajectoryISEstimator(horizon=1).estimate(ConstantPolicy(1), ds)
        assert pdis.value == pytest.approx(tis.value)

    def test_unbiased_in_iid_setting(self):
        values = []
        for seed in range(40):
            ds = make_uniform_dataset(800, seed=600 + seed)
            values.append(
                PerDecisionISEstimator(horizon=3)
                .estimate(ConstantPolicy(2), ds)
                .value
            )
        truth = 0.2 + 0.15 * 2 + 0.3 * 0.5
        assert np.mean(values) == pytest.approx(truth, abs=0.05)
