"""Unit tests for bounded evaluation and paired policy comparison."""

import numpy as np
import pytest

from repro.core.comparison import (
    compare_policies,
    evaluate_with_bound,
    sufficient_log_size,
)
from repro.core.policies import ConstantPolicy, UniformRandomPolicy

from tests.conftest import make_uniform_dataset


def true_value(action: int) -> float:
    return 0.2 + 0.15 * action + 0.3 * 0.5


class TestEvaluateWithBound:
    def test_interval_contains_truth(self):
        dataset = make_uniform_dataset(5000, seed=1)
        estimate = evaluate_with_bound(ConstantPolicy(1), dataset)
        assert estimate.interval.contains(true_value(1))

    def test_bernstein_tighter_than_hoeffding(self):
        dataset = make_uniform_dataset(2000, seed=2)
        bern = evaluate_with_bound(ConstantPolicy(0), dataset,
                                   method="bernstein")
        hoef = evaluate_with_bound(ConstantPolicy(0), dataset,
                                   method="hoeffding")
        assert bern.interval.width < hoef.interval.width
        assert bern.value == pytest.approx(hoef.value)

    def test_interval_shrinks_with_n(self):
        small = evaluate_with_bound(
            ConstantPolicy(0), make_uniform_dataset(500, seed=3)
        )
        large = evaluate_with_bound(
            ConstantPolicy(0), make_uniform_dataset(8000, seed=3)
        )
        assert large.interval.width < small.interval.width

    def test_separated_from(self):
        dataset = make_uniform_dataset(20000, seed=4)
        low = evaluate_with_bound(ConstantPolicy(0), dataset)
        high = evaluate_with_bound(ConstantPolicy(2), dataset)
        assert low.separated_from(high)
        assert high.separated_from(low)

    def test_unknown_method(self):
        dataset = make_uniform_dataset(100, seed=5)
        with pytest.raises(ValueError):
            evaluate_with_bound(ConstantPolicy(0), dataset, method="magic")


class TestComparePolicies:
    def test_difference_matches_separate_estimates(self):
        dataset = make_uniform_dataset(3000, seed=6)
        from repro.core.estimators.ips import IPSEstimator

        ips = IPSEstimator()
        separate = (
            ips.estimate(ConstantPolicy(2), dataset).value
            - ips.estimate(ConstantPolicy(0), dataset).value
        )
        paired = compare_policies(
            ConstantPolicy(2), ConstantPolicy(0), dataset
        )
        assert paired.difference == pytest.approx(separate)

    def test_interval_contains_true_difference(self):
        dataset = make_uniform_dataset(5000, seed=7)
        paired = compare_policies(ConstantPolicy(2), ConstantPolicy(0), dataset)
        assert paired.interval.contains(true_value(2) - true_value(0))

    def test_declares_winner_when_separated(self):
        dataset = make_uniform_dataset(20000, seed=8)
        paired = compare_policies(ConstantPolicy(2), ConstantPolicy(0), dataset)
        assert paired.winner(maximize=True) == "constant[2]"
        assert paired.winner(maximize=False) == "constant[0]"

    def test_inconclusive_for_identical_policies(self):
        dataset = make_uniform_dataset(1000, seed=9)
        paired = compare_policies(
            ConstantPolicy(1), ConstantPolicy(1, name="clone"), dataset
        )
        assert paired.difference == pytest.approx(0.0)
        assert paired.winner() == "inconclusive"

    def test_pairing_tighter_than_differencing_bounds(self):
        """Comparing two similar stochastic policies: the paired
        interval must beat the width implied by two separate ones."""
        from repro.core.policies import EpsilonGreedyPolicy

        dataset = make_uniform_dataset(4000, seed=10)
        a = EpsilonGreedyPolicy(ConstantPolicy(2), 0.3, name="a")
        b = EpsilonGreedyPolicy(ConstantPolicy(2), 0.4, name="b")
        paired = compare_policies(a, b, dataset)
        bound_a = evaluate_with_bound(a, dataset)
        bound_b = evaluate_with_bound(b, dataset)
        differenced_width = bound_a.interval.width + bound_b.interval.width
        assert paired.interval.width < differenced_width

    def test_agreeing_datapoints_contribute_zero(self):
        dataset = make_uniform_dataset(100, seed=11)
        from repro.core.estimators.ips import IPSEstimator

        ips = IPSEstimator()
        same = ips.weighted_rewards(ConstantPolicy(1), dataset)
        diff = same - ips.weighted_rewards(ConstantPolicy(1), dataset)
        assert not diff.any()


class TestSufficientLogSize:
    def test_larger_gap_needs_less_data(self):
        dataset = make_uniform_dataset(3000, seed=12)
        near = sufficient_log_size(ConstantPolicy(2), ConstantPolicy(1), dataset)
        far = sufficient_log_size(ConstantPolicy(2), ConstantPolicy(0), dataset)
        assert far < near

    def test_identical_policies_need_infinite_data(self):
        dataset = make_uniform_dataset(500, seed=13)
        assert sufficient_log_size(
            ConstantPolicy(1), ConstantPolicy(1, name="clone"), dataset
        ) == float("inf")

    def test_prediction_roughly_calibrated(self):
        """Collect the predicted N and check the comparison indeed
        resolves at ~that size."""
        dataset = make_uniform_dataset(2000, seed=14)
        predicted = sufficient_log_size(
            ConstantPolicy(2), ConstantPolicy(0), dataset
        )
        big = make_uniform_dataset(int(min(predicted * 2, 60000)), seed=15)
        paired = compare_policies(ConstantPolicy(2), ConstantPolicy(0), big)
        assert paired.winner() == "constant[2]"
