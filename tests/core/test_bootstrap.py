"""Unit tests for bootstrap confidence intervals."""

import numpy as np
import pytest

from repro.core.bootstrap import (
    bootstrap_interval_from_terms,
    bootstrap_ips_interval,
    bootstrap_snips_interval,
)
from repro.core.policies import ConstantPolicy
from repro.core.types import ActionSpace, Dataset, Interaction

from tests.conftest import make_uniform_dataset


def true_value(action: int) -> float:
    return 0.2 + 0.15 * action + 0.3 * 0.5


class TestTermBootstrap:
    def test_contains_sample_mean(self):
        rng = np.random.default_rng(0)
        terms = rng.exponential(1.0, size=400)
        ci = bootstrap_interval_from_terms(terms, rng=rng)
        assert ci.contains(float(terms.mean()))

    def test_width_shrinks_with_n(self):
        rng = np.random.default_rng(1)
        small = bootstrap_interval_from_terms(
            rng.exponential(1.0, 100), rng=np.random.default_rng(2)
        )
        large = bootstrap_interval_from_terms(
            rng.exponential(1.0, 10000), rng=np.random.default_rng(2)
        )
        assert large.width < small.width

    def test_deterministic_with_seeded_rng(self):
        terms = np.random.default_rng(3).uniform(size=200)
        a = bootstrap_interval_from_terms(terms, rng=np.random.default_rng(9))
        b = bootstrap_interval_from_terms(terms, rng=np.random.default_rng(9))
        assert a == b

    def test_coverage_simulation(self):
        """~95% of bootstrap intervals should contain the true mean."""
        rng = np.random.default_rng(4)
        covered = 0
        for _ in range(150):
            samples = rng.uniform(0, 1, size=120)  # true mean 0.5
            ci = bootstrap_interval_from_terms(samples, n_boot=400, rng=rng)
            covered += ci.contains(0.5)
        assert covered >= 0.85 * 150

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_interval_from_terms(np.array([1.0]))
        with pytest.raises(ValueError):
            bootstrap_interval_from_terms(np.ones(10), delta=1.5)
        with pytest.raises(ValueError):
            bootstrap_interval_from_terms(np.ones(10), n_boot=2)


class TestIPSBootstrap:
    def test_contains_truth(self):
        dataset = make_uniform_dataset(4000, seed=5)
        ci = bootstrap_ips_interval(
            ConstantPolicy(1), dataset, rng=np.random.default_rng(0)
        )
        assert ci.contains(true_value(1))

    def test_interval_centered_near_point_estimate(self):
        from repro.core.estimators.ips import IPSEstimator

        dataset = make_uniform_dataset(2000, seed=6)
        point = IPSEstimator().estimate(ConstantPolicy(0), dataset).value
        ci = bootstrap_ips_interval(
            ConstantPolicy(0), dataset, rng=np.random.default_rng(1)
        )
        assert ci.low <= point <= ci.high


class TestSNIPSBootstrap:
    def test_contains_truth(self):
        dataset = make_uniform_dataset(4000, seed=7)
        ci = bootstrap_snips_interval(
            ConstantPolicy(2), dataset, rng=np.random.default_rng(2)
        )
        assert ci.contains(true_value(2))

    def test_tighter_than_ips_bootstrap(self):
        dataset = make_uniform_dataset(1500, seed=8)
        ips_ci = bootstrap_ips_interval(
            ConstantPolicy(1), dataset, rng=np.random.default_rng(3)
        )
        snips_ci = bootstrap_snips_interval(
            ConstantPolicy(1), dataset, rng=np.random.default_rng(3)
        )
        assert snips_ci.width < ips_ci.width

    def test_never_matching_candidate_rejected(self):
        ds = Dataset(action_space=ActionSpace(3))
        for t in range(20):
            ds.append(Interaction({}, 0, 0.5, 0.5, float(t)))
        with pytest.raises(ValueError):
            bootstrap_snips_interval(ConstantPolicy(2), ds)
