"""Unit tests for the bootstrap-bagging CB learner."""

import numpy as np
import pytest

from repro.core.learners.cb import BaggingLearner

from tests.conftest import make_uniform_dataset


class TestBaggingLearner:
    def test_learns_best_action(self):
        dataset = make_uniform_dataset(3000, seed=1)
        learner = BaggingLearner(3, n_bags=5, learning_rate=0.5, seed=0)
        learner.observe_all(dataset)
        assert learner.policy().action({"load": 0.5, "bias": 1.0}, [0, 1, 2]) == 2

    def test_votes_form_distribution(self):
        dataset = make_uniform_dataset(500, seed=2)
        learner = BaggingLearner(3, n_bags=4, seed=0)
        learner.observe_all(dataset)
        votes = learner.votes({"load": 0.5, "bias": 1.0}, [0, 1, 2])
        assert votes.sum() == pytest.approx(1.0)
        assert (votes >= 0).all()

    def test_disagreement_early_agreement_late(self):
        """With little data the bags disagree (exploration); with lots
        of data they converge on the best action."""
        early = BaggingLearner(3, n_bags=8, learning_rate=0.5, seed=3)
        early.observe_all(make_uniform_dataset(30, seed=3))
        late = BaggingLearner(3, n_bags=8, learning_rate=0.5, seed=3)
        for _ in range(2):
            late.observe_all(make_uniform_dataset(4000, seed=3))
        context = {"load": 0.5, "bias": 1.0}
        early_max = early.votes(context, [0, 1, 2]).max()
        late_max = late.votes(context, [0, 1, 2]).max()
        assert late_max >= early_max
        assert late_max == 1.0  # full agreement eventually

    def test_stochastic_policy_propensities_are_vote_shares(self, rng):
        dataset = make_uniform_dataset(200, seed=4)
        learner = BaggingLearner(3, n_bags=4, seed=1)
        learner.observe_all(dataset)
        policy = learner.stochastic_policy()
        context = {"load": 0.2, "bias": 1.0}
        probs = policy.distribution(context, [0, 1, 2])
        np.testing.assert_allclose(probs, learner.votes(context, [0, 1, 2]))

    def test_minimize_mode(self):
        def reward_fn(context, action, rng):
            return [0.9, 0.1, 0.5][action]

        dataset = make_uniform_dataset(2000, seed=5, reward_fn=reward_fn)
        learner = BaggingLearner(
            3, n_bags=5, maximize=False, learning_rate=0.5, seed=2
        )
        learner.observe_all(dataset)
        assert learner.policy().action({"load": 0.5, "bias": 1.0}, [0, 1, 2]) == 1

    def test_observed_counter(self):
        learner = BaggingLearner(2, n_bags=3, seed=0)
        learner.observe_all(make_uniform_dataset(25, n_actions=2, seed=6))
        assert learner.observed == 25

    def test_deterministic_given_seed(self):
        dataset = make_uniform_dataset(300, seed=7)
        a = BaggingLearner(3, n_bags=4, seed=9)
        b = BaggingLearner(3, n_bags=4, seed=9)
        a.observe_all(dataset)
        b.observe_all(dataset)
        context = {"load": 0.3, "bias": 1.0}
        np.testing.assert_array_equal(
            a.votes(context, [0, 1, 2]), b.votes(context, [0, 1, 2])
        )

    def test_single_bag_rejected(self):
        with pytest.raises(ValueError):
            BaggingLearner(3, n_bags=1)
