"""Unit tests for core data types."""

import numpy as np
import pytest

from repro.core.types import ActionSpace, Dataset, Interaction, RewardRange


class TestRewardRange:
    def test_width(self):
        assert RewardRange(0.0, 10.0).width == 10.0

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            RewardRange(1.0, 1.0)
        with pytest.raises(ValueError):
            RewardRange(2.0, 1.0)

    def test_normalize_maximize(self):
        rr = RewardRange(0.0, 10.0, maximize=True)
        assert rr.normalize(7.5) == pytest.approx(0.75)

    def test_normalize_minimize_flips(self):
        rr = RewardRange(0.0, 10.0, maximize=False)
        assert rr.normalize(0.0) == 1.0  # zero latency is perfect
        assert rr.normalize(10.0) == 0.0

    def test_clip(self):
        rr = RewardRange(0.0, 1.0)
        assert rr.clip(-0.5) == 0.0
        assert rr.clip(1.5) == 1.0
        assert rr.clip(0.3) == 0.3


class TestActionSpace:
    def test_default_actions(self):
        space = ActionSpace(3)
        assert space.actions() == [0, 1, 2]
        assert len(space) == 3

    def test_labels(self):
        space = ActionSpace(2, labels=["left", "right"])
        assert space.label(1) == "right"

    def test_label_count_mismatch(self):
        with pytest.raises(ValueError):
            ActionSpace(2, labels=["only-one"])

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            ActionSpace(0)

    def test_eligibility_restricts(self):
        space = ActionSpace(
            4, eligibility=lambda ctx: [0, 2] if ctx.get("even") else [1, 3]
        )
        assert space.actions({"even": 1.0}) == [0, 2]
        assert space.actions({"even": 0.0}) == [1, 3]

    def test_eligibility_empty_rejected(self):
        space = ActionSpace(2, eligibility=lambda ctx: [])
        with pytest.raises(ValueError):
            space.actions({"x": 1.0})

    def test_eligibility_out_of_range_rejected(self):
        space = ActionSpace(2, eligibility=lambda ctx: [5])
        with pytest.raises(ValueError):
            space.actions({"x": 1.0})


class TestInteraction:
    def test_valid_construction(self):
        i = Interaction({"x": 1.0}, action=2, reward=0.5, propensity=0.25)
        assert i.action == 2

    def test_zero_propensity_rejected(self):
        with pytest.raises(ValueError):
            Interaction({}, 0, 0.5, propensity=0.0)

    def test_propensity_above_one_rejected(self):
        with pytest.raises(ValueError):
            Interaction({}, 0, 0.5, propensity=1.5)

    def test_negative_action_rejected(self):
        with pytest.raises(ValueError):
            Interaction({}, -1, 0.5, propensity=0.5)

    def test_dict_roundtrip(self):
        original = Interaction(
            {"x": 1.0}, 1, 0.5, 0.3, timestamp=9.0,
            full_rewards=[0.1, 0.5], metadata={"source": "test"},
        )
        restored = Interaction.from_dict(original.to_dict())
        assert restored.context == {"x": 1.0}
        assert restored.action == 1
        assert restored.propensity == 0.3
        assert list(restored.full_rewards) == [0.1, 0.5]
        assert restored.metadata == {"source": "test"}

    def test_dict_roundtrip_without_optionals(self):
        original = Interaction({"x": 1.0}, 0, 0.5, 0.5)
        restored = Interaction.from_dict(original.to_dict())
        assert restored.full_rewards is None
        assert restored.metadata == {}


def _tiny_dataset(n=10):
    ds = Dataset(action_space=ActionSpace(2))
    for t in range(n):
        ds.append(
            Interaction({"x": float(t)}, t % 2, reward=float(t) / n,
                        propensity=0.5, timestamp=float(t))
        )
    return ds


class TestDataset:
    def test_container_protocol(self):
        ds = _tiny_dataset(4)
        assert len(ds) == 4
        assert ds[1].action == 1
        assert [i.action for i in ds] == [0, 1, 0, 1]

    def test_slice_returns_dataset(self):
        ds = _tiny_dataset(10)
        head = ds[:3]
        assert isinstance(head, Dataset)
        assert len(head) == 3
        assert head.action_space is ds.action_space

    def test_vector_views(self):
        ds = _tiny_dataset(4)
        assert list(ds.actions()) == [0, 1, 0, 1]
        assert ds.propensities().tolist() == [0.5] * 4
        assert ds.rewards()[2] == pytest.approx(0.5)  # t/n = 2/4

    def test_min_propensity(self):
        ds = _tiny_dataset(3)
        ds.append(Interaction({}, 0, 0.0, propensity=0.01))
        assert ds.min_propensity() == pytest.approx(0.01)

    def test_min_propensity_empty_raises(self):
        with pytest.raises(ValueError):
            Dataset().min_propensity()

    def test_split_preserves_order(self):
        ds = _tiny_dataset(10)
        first, second = ds.split(0.3)
        assert len(first) == 3 and len(second) == 7
        assert first[0].timestamp == 0.0
        assert second[0].timestamp == 3.0

    def test_split_invalid_fraction(self):
        with pytest.raises(ValueError):
            _tiny_dataset().split(1.0)

    def test_shuffled_is_permutation(self, rng):
        ds = _tiny_dataset(20)
        shuffled = ds.shuffled(rng)
        assert sorted(i.timestamp for i in shuffled) == [float(t) for t in range(20)]
        assert [i.timestamp for i in shuffled] != [float(t) for t in range(20)]

    def test_subsample_keeps_logged_order(self, rng):
        ds = _tiny_dataset(50)
        sub = ds.subsample(10, rng)
        times = [i.timestamp for i in sub]
        assert times == sorted(times)
        assert len(sub) == 10

    def test_subsample_too_large(self, rng):
        with pytest.raises(ValueError):
            _tiny_dataset(5).subsample(6, rng)

    def test_filter(self):
        ds = _tiny_dataset(10)
        evens = ds.filter(lambda i: i.action == 0)
        assert len(evens) == 5
        assert all(i.action == 0 for i in evens)

    def test_normalized_minimize_flips_scale(self):
        ds = Dataset(reward_range=RewardRange(0.0, 10.0, maximize=False))
        ds.append(Interaction({}, 0, reward=2.0, propensity=1.0,
                              full_rewards=[2.0, 8.0]))
        normalized = ds.normalized()
        assert normalized[0].reward == pytest.approx(0.8)
        assert normalized[0].full_rewards[1] == pytest.approx(0.2)
        assert normalized.reward_range.maximize is True

    def test_normalized_clips_out_of_range(self):
        ds = Dataset(reward_range=RewardRange(0.0, 1.0, maximize=True))
        ds.append(Interaction({}, 0, reward=3.0, propensity=1.0))
        assert ds.normalized()[0].reward == 1.0

    def test_jsonl_roundtrip(self, tmp_path):
        ds = _tiny_dataset(5)
        path = str(tmp_path / "log.jsonl")
        ds.save_jsonl(path)
        restored = Dataset.load_jsonl(path)
        assert len(restored) == 5
        assert restored[3].context == {"x": 3.0}
        assert restored[3].propensity == 0.5

    def test_extend(self):
        ds = _tiny_dataset(3)
        ds.extend(_tiny_dataset(2))
        assert len(ds) == 5
