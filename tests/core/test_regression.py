"""Unit tests for the regression oracles."""

import numpy as np
import pytest

from repro.core.learners.regression import RidgeRegressor, SGDRegressor


class TestRidgeRegressor:
    def test_exact_fit_with_tiny_regularization(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 3))
        w_true = np.array([1.5, -2.0, 0.5])
        y = X @ w_true
        model = RidgeRegressor(3, l2=1e-8).fit(X, y)
        np.testing.assert_allclose(model.weights, w_true, atol=1e-6)

    def test_regularization_shrinks_weights(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(50, 2))
        y = X @ np.array([3.0, -3.0])
        loose = RidgeRegressor(2, l2=0.001).fit(X, y)
        tight = RidgeRegressor(2, l2=100.0).fit(X, y)
        assert np.linalg.norm(tight.weights) < np.linalg.norm(loose.weights)

    def test_sample_weights_prioritize(self):
        # Two inconsistent points; the heavy one should dominate.
        X = np.array([[1.0], [1.0]])
        y = np.array([0.0, 10.0])
        w = np.array([1.0, 1000.0])
        model = RidgeRegressor(1, l2=1e-6).fit(X, y, sample_weight=w)
        assert model.predict(np.array([1.0])) == pytest.approx(10.0, abs=0.1)

    def test_predict_many(self):
        X = np.array([[1.0], [2.0]])
        model = RidgeRegressor(1, l2=1e-9).fit(X, np.array([2.0, 4.0]))
        np.testing.assert_allclose(model.predict_many(X), [2.0, 4.0], atol=1e-6)

    def test_shape_validation(self):
        model = RidgeRegressor(2)
        with pytest.raises(ValueError):
            model.fit(np.zeros((3, 5)), np.zeros(3))
        with pytest.raises(ValueError):
            model.fit(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            model.fit(np.zeros((2, 2)), np.zeros(2), sample_weight=np.array([-1, 1]))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            RidgeRegressor(0)
        with pytest.raises(ValueError):
            RidgeRegressor(2, l2=-0.5)


class TestSGDRegressor:
    def test_converges_to_linear_target(self):
        rng = np.random.default_rng(2)
        model = SGDRegressor(3, learning_rate=0.5)
        w_true = np.array([1.0, -0.5, 0.25])
        for _ in range(4000):
            x = rng.normal(size=3)
            model.update(x, float(x @ w_true))
        np.testing.assert_allclose(model.weights, w_true, atol=0.05)

    def test_implicit_update_is_stable_under_huge_rates(self):
        """The implicit step can never overshoot — even absurd learning
        rates and importance weights leave weights finite."""
        model = SGDRegressor(2, learning_rate=1e6, decay=False)
        for _ in range(100):
            model.update(np.array([100.0, -50.0]), y=1e4, importance=1e5)
        assert np.isfinite(model.weights).all()

    def test_implicit_update_moves_toward_target_not_past(self):
        model = SGDRegressor(1, learning_rate=100.0, decay=False)
        model.update(np.array([1.0]), y=10.0)
        # Prediction moved from 0 toward 10 and did not overshoot.
        assert 0.0 < model.predict(np.array([1.0])) <= 10.0

    def test_importance_weight_speeds_learning(self):
        heavy = SGDRegressor(1, learning_rate=0.1)
        light = SGDRegressor(1, learning_rate=0.1)
        x = np.array([1.0])
        heavy.update(x, 1.0, importance=50.0)
        light.update(x, 1.0, importance=1.0)
        assert heavy.predict(x) > light.predict(x)

    def test_zero_importance_is_noop_for_weights(self):
        model = SGDRegressor(2)
        before = model.weights.copy()
        model.update(np.array([1.0, 1.0]), y=5.0, importance=0.0)
        np.testing.assert_array_equal(model.weights, before)

    def test_negative_importance_rejected(self):
        with pytest.raises(ValueError):
            SGDRegressor(1).update(np.array([1.0]), 1.0, importance=-1.0)

    def test_update_returns_squared_error(self):
        model = SGDRegressor(1)
        err = model.update(np.array([1.0]), y=3.0)
        assert err == pytest.approx(9.0)

    def test_learning_rate_decay(self):
        model = SGDRegressor(1, learning_rate=1.0, decay=True)
        rate_0 = model._rate()
        model.update(np.array([1.0]), 1.0)
        model.update(np.array([1.0]), 1.0)
        assert model._rate() < rate_0

    def test_no_decay_mode(self):
        model = SGDRegressor(1, learning_rate=0.3, decay=False)
        model.update(np.array([1.0]), 1.0)
        assert model._rate() == 0.3

    def test_l2_shrinks_weights(self):
        plain = SGDRegressor(1, learning_rate=0.5, l2=0.0)
        shrunk = SGDRegressor(1, learning_rate=0.5, l2=5.0)
        for _ in range(200):
            plain.update(np.array([1.0]), 1.0)
            shrunk.update(np.array([1.0]), 1.0)
        assert abs(shrunk.weights[0]) < abs(plain.weights[0])

    def test_clone_architecture(self):
        model = SGDRegressor(4, learning_rate=0.2, l2=0.1, decay=False)
        model.update(np.ones(4), 1.0)
        clone = model.clone_architecture()
        assert clone.n_dims == 4
        assert clone.learning_rate == 0.2
        assert clone.l2 == 0.1
        assert clone.decay is False
        assert not clone.weights.any()
        assert clone.updates == 0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SGDRegressor(0)
        with pytest.raises(ValueError):
            SGDRegressor(1, learning_rate=0.0)
        with pytest.raises(ValueError):
            SGDRegressor(1, l2=-1.0)
