"""The harvest coordinator: plans, payload validation, retries, splicing."""

import numpy as np
import pytest

from repro.audit.ledger import DecisionLedger
from repro.audit.streams import StreamRegistry, StreamRNG
from repro.core import pool as worker_pool
from repro.core.coordinator import (
    HarvestCoordinator,
    HarvestInputs,
    HarvestJob,
    ShardPayloadError,
    build_inputs,
    synthetic_shard_inputs,
)
from repro.core.harvest import harvest_columns
from repro.core.policies import UniformRandomPolicy
from repro.core.types import ActionSpace


@pytest.fixture(autouse=True)
def fresh_pool():
    """Isolate each test from pools poisoned by earlier tests."""
    worker_pool.reset_pool()
    yield
    worker_pool.reset_pool()


def synthetic_job(rows=200, shard_size=32, **overrides):
    defaults = dict(
        scenario="synthetic",
        rows=rows,
        master_seed=41,
        policy=UniformRandomPolicy(),
        shard_size=shard_size,
        batch_size=17,
    )
    defaults.update(overrides)
    return HarvestJob(**defaults)


def serial_reference(job):
    """The monolithic harvest the coordinator must reproduce exactly."""
    registry = StreamRegistry(job.master_seed)
    inputs = build_inputs(job, registry)
    key = job.stream_key()
    rng = StreamRNG(registry, key, shard_size=job.shard_size)
    ledger = DecisionLedger(
        key,
        shard_size=job.shard_size,
        master_fingerprint=registry.master_fingerprint,
    )
    columns = harvest_columns(
        job.policy,
        inputs.contexts,
        inputs.reward_fn,
        rng,
        eligible=inputs.eligible,
        action_space=inputs.action_space,
        batch_size=job.batch_size,
        reward_range=inputs.reward_range,
        scenario=job.scenario,
        timestamps=inputs.timestamps,
        ledger=ledger,
    )
    return columns, ledger


def assert_matches_serial(result, reference_columns, reference_ledger):
    assert result.columns.n == reference_columns.n
    np.testing.assert_array_equal(result.columns.actions, reference_columns.actions)
    np.testing.assert_array_equal(result.columns.rewards, reference_columns.rewards)
    np.testing.assert_array_equal(
        result.columns.propensities, reference_columns.propensities
    )
    assert result.head == reference_ledger.head
    assert result.ledger.entries() == reference_ledger.entries()


class TestJob:
    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            synthetic_job(rows=-1)
        with pytest.raises(ValueError):
            synthetic_job(shard_size=0)

    def test_stream_key_names_the_scenario(self):
        assert synthetic_job().stream_key().name == "synthetic/harvest/decisions"

    def test_unknown_scenario_rejected(self):
        job = synthetic_job(scenario="nope")
        with pytest.raises(ValueError, match="no shard-input builder"):
            build_inputs(job, StreamRegistry(0))


class TestInputs:
    def test_synthetic_inputs_are_deterministic(self):
        job = synthetic_job(rows=50)
        one = synthetic_shard_inputs(job, StreamRegistry(0))
        two = synthetic_shard_inputs(job, StreamRegistry(0))
        assert one.contexts == two.contexts
        assert one.n == 50

    def test_eligible_slice_per_row_vs_shared(self):
        shared = HarvestInputs(
            contexts=({"x": 1.0},) * 4,
            reward_fn=lambda i, a: i,
            eligible=(0, 1),
        )
        assert shared.eligible_slice(1, 3) == (0, 1)
        per_row = HarvestInputs(
            contexts=({"x": 1.0},) * 4,
            reward_fn=lambda i, a: i,
            eligible=((0,), (0, 1), (1,), (0, 1, 2)),
        )
        assert per_row.eligible_slice(1, 3) == ((0, 1), (1,))


class TestEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_bit_identical_to_serial(self, workers):
        job = synthetic_job()
        reference_columns, reference_ledger = serial_reference(job)
        result = HarvestCoordinator(job, workers=workers).run()
        assert_matches_serial(result, reference_columns, reference_ledger)
        assert result.retries == 0
        assert len(result.plan) == 7  # 200 rows / 32

    def test_single_shard_short_circuits_the_pool(self):
        job = synthetic_job(rows=20, shard_size=64)
        reference_columns, reference_ledger = serial_reference(job)
        result = HarvestCoordinator(job, workers=4).run()
        assert_matches_serial(result, reference_columns, reference_ledger)
        assert len(result.plan) == 1

    def test_derivations_cover_every_shard(self):
        job = synthetic_job()
        result = HarvestCoordinator(job, workers=2).run()
        keys = sorted(d["key"] for d in result.registry.derivations())
        assert keys == sorted(
            f"synthetic/harvest/decisions#{s.start}" for s in result.plan
        )

    def test_empty_harvest(self):
        job = synthetic_job(rows=0)
        result = HarvestCoordinator(job, workers=1).run()
        assert result.columns.n == 0
        assert result.head == result.ledger.genesis


class TestPayloadValidation:
    def payload_for(self, job, spec_index=0):
        coordinator = HarvestCoordinator(job, workers=1)
        result = coordinator.run()
        return coordinator, result

    def test_corrupt_action_detected(self):
        job = synthetic_job(rows=40, shard_size=40)
        registry = StreamRegistry(job.master_seed)
        inputs = build_inputs(job, registry)
        from repro.core.coordinator import _harvest_shard_impl
        from repro.audit.shards import ShardPlan

        spec = ShardPlan(inputs.n, job.shard_size)[0]
        payload = _harvest_shard_impl(job, inputs, registry, spec)
        coordinator = HarvestCoordinator(job, workers=1)
        coordinator._validate_payload(spec, payload)  # clean passes
        tampered = dict(payload)
        tampered["actions"] = np.array(payload["actions"], copy=True)
        tampered["actions"][3] = (tampered["actions"][3] + 1) % 4
        with pytest.raises(ShardPayloadError, match="integrity"):
            coordinator._validate_payload(spec, tampered)

    def test_wrong_coverage_detected(self):
        job = synthetic_job(rows=40, shard_size=40)
        registry = StreamRegistry(job.master_seed)
        inputs = build_inputs(job, registry)
        from repro.core.coordinator import _harvest_shard_impl
        from repro.audit.shards import ShardPlan, ShardSpec

        spec = ShardPlan(inputs.n, job.shard_size)[0]
        payload = _harvest_shard_impl(job, inputs, registry, spec)
        coordinator = HarvestCoordinator(job, workers=1)
        other = ShardSpec(index=1, start=8, stop=48)
        with pytest.raises(ShardPayloadError, match="covers rows"):
            coordinator._validate_payload(other, payload)


class CorruptingCoordinator(HarvestCoordinator):
    """Corrupts the first delivery of one shard's payload."""

    def __init__(self, *args, corrupt_index=1, **kwargs):
        super().__init__(*args, **kwargs)
        self.corrupt_index = corrupt_index
        self.corrupted = 0

    def _receive(self, spec, payload):
        if spec.index == self.corrupt_index and self.corrupted == 0:
            self.corrupted += 1
            payload = dict(payload)
            payload["actions"] = np.array(payload["actions"], copy=True)
            payload["actions"][0] = (payload["actions"][0] + 1) % 4
        return payload


class TestRetries:
    def test_corrupted_payload_is_rederived_shard_precisely(self):
        job = synthetic_job()
        reference_columns, reference_ledger = serial_reference(job)
        coordinator = CorruptingCoordinator(job, workers=2, corrupt_index=1)
        with pytest.warns(RuntimeWarning, match="re-deriving shard 1"):
            result = coordinator.run()
        assert coordinator.corrupted == 1
        assert coordinator.attempts[1] == 1
        assert all(
            count == 0 for index, count in coordinator.attempts.items() if index != 1
        )
        assert result.retries == 1
        assert_matches_serial(result, reference_columns, reference_ledger)
        # The shard map records which shard needed the retry.
        assert [m["retries"] for m in result.shard_map] == [0, 1, 0, 0, 0, 0, 0]

    def test_persistent_corruption_falls_back_to_local_harvest(self):
        job = synthetic_job(rows=96, shard_size=32)
        reference_columns, reference_ledger = serial_reference(job)

        class AlwaysCorrupt(CorruptingCoordinator):
            def _receive(self, spec, payload):
                if spec.index == self.corrupt_index:
                    self.corrupted += 1
                    payload = dict(payload)
                    payload["actions"] = np.array(payload["actions"], copy=True)
                    payload["actions"][0] = (payload["actions"][0] + 1) % 4
                return payload

        coordinator = AlwaysCorrupt(
            job, workers=2, max_retries=1, corrupt_index=2
        )
        with pytest.warns(RuntimeWarning, match="re-deriving shard 2"):
            result = coordinator.run()
        # initial + one retry both corrupted, then the local fallback.
        assert coordinator.attempts[2] == 2
        assert_matches_serial(result, reference_columns, reference_ledger)


class TestUnpicklableJob:
    def test_falls_back_in_process(self):
        class LocalPolicy(UniformRandomPolicy):
            pass

        policy = LocalPolicy()
        policy.hostage = lambda: None  # lambdas don't pickle
        job = synthetic_job(policy=policy)
        reference_columns, reference_ledger = serial_reference(job)
        with pytest.warns(RuntimeWarning, match="not picklable"):
            result = HarvestCoordinator(job, workers=2).run()
        assert_matches_serial(result, reference_columns, reference_ledger)


class TestManifestEntry:
    def test_records_plan_and_shard_map(self):
        job = synthetic_job()
        result = HarvestCoordinator(job, workers=2).run()
        entry = result.manifest_entry()
        assert entry["head"] == result.head
        assert entry["n"] == 200
        assert entry["workers"] == 2
        assert entry["plan"]["n_shards"] == 7
        assert len(entry["shards"]) == 7
        assert entry["shards"][0]["prev"] == result.ledger.genesis
        assert entry["shards"][-1]["head"] == result.head

    def test_ledger_delegation(self):
        job = synthetic_job(rows=40, shard_size=40)
        result = HarvestCoordinator(job).run()
        assert result.stream == "synthetic/harvest/decisions"
        assert len(result.entries()) == 40


class TestCoordinatorValidation:
    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            HarvestCoordinator(synthetic_job(), workers=0)
        with pytest.raises(ValueError):
            HarvestCoordinator(synthetic_job(), max_retries=-1)

    def test_prebuilt_inputs_are_used(self):
        job = synthetic_job(rows=30, shard_size=8)
        inputs = synthetic_shard_inputs(job, StreamRegistry(0))
        reference_columns, reference_ledger = serial_reference(job)
        result = HarvestCoordinator(job, workers=1, inputs=inputs).run()
        assert_matches_serial(result, reference_columns, reference_ledger)
