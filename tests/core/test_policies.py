"""Unit tests for policy abstractions."""

import numpy as np
import pytest

from repro.core.policies import (
    ConstantPolicy,
    DeterministicFunctionPolicy,
    EpsilonGreedyPolicy,
    GreedyRegressorPolicy,
    HashPolicy,
    LinearThresholdPolicy,
    MixturePolicy,
    PolicyClass,
    SoftmaxPolicy,
    UniformRandomPolicy,
)

ACTIONS = [0, 1, 2]


class TestConstantPolicy:
    def test_point_mass(self):
        probs = ConstantPolicy(1).distribution({}, ACTIONS)
        assert probs.tolist() == [0.0, 1.0, 0.0]

    def test_act_returns_constant_with_propensity_one(self, rng):
        action, p = ConstantPolicy(2).act({}, ACTIONS, rng)
        assert (action, p) == (2, 1.0)

    def test_ineligible_constant_raises(self):
        with pytest.raises(ValueError):
            ConstantPolicy(5).distribution({}, ACTIONS)


class TestUniformRandomPolicy:
    def test_distribution_is_uniform(self):
        probs = UniformRandomPolicy().distribution({}, ACTIONS)
        np.testing.assert_allclose(probs, [1 / 3] * 3)

    def test_act_covers_all_actions(self, rng):
        seen = {UniformRandomPolicy().act({}, ACTIONS, rng)[0] for _ in range(100)}
        assert seen == {0, 1, 2}

    def test_propensity_is_one_over_n(self, rng):
        _, p = UniformRandomPolicy().act({}, ACTIONS, rng)
        assert p == pytest.approx(1 / 3)


class TestDeterministicFunctionPolicy:
    def test_uses_context(self):
        policy = DeterministicFunctionPolicy(
            lambda ctx, actions: int(ctx["pick"]), name="picker"
        )
        assert policy.action({"pick": 2.0}, ACTIONS) == 2

    def test_invalid_choice_raises(self):
        policy = DeterministicFunctionPolicy(lambda ctx, actions: 99)
        with pytest.raises(ValueError):
            policy.distribution({}, ACTIONS)


class TestEpsilonGreedy:
    def test_mixes_base_with_uniform(self):
        policy = EpsilonGreedyPolicy(ConstantPolicy(0), epsilon=0.3)
        probs = policy.distribution({}, ACTIONS)
        np.testing.assert_allclose(probs, [0.8, 0.1, 0.1])

    def test_minimum_propensity_is_eps_over_n(self):
        policy = EpsilonGreedyPolicy(ConstantPolicy(0), epsilon=0.3)
        assert policy.probability_of({}, ACTIONS, 2) == pytest.approx(0.1)

    def test_epsilon_zero_is_base(self):
        policy = EpsilonGreedyPolicy(ConstantPolicy(1), epsilon=0.0)
        assert policy.distribution({}, ACTIONS).tolist() == [0.0, 1.0, 0.0]

    def test_epsilon_one_is_uniform(self):
        policy = EpsilonGreedyPolicy(ConstantPolicy(1), epsilon=1.0)
        np.testing.assert_allclose(policy.distribution({}, ACTIONS), [1 / 3] * 3)

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            EpsilonGreedyPolicy(ConstantPolicy(0), epsilon=1.5)


class TestSoftmaxPolicy:
    def test_prefers_higher_score(self):
        policy = SoftmaxPolicy(lambda ctx, a: float(a), temperature=1.0)
        probs = policy.distribution({}, ACTIONS)
        assert probs[2] > probs[1] > probs[0]

    def test_low_temperature_approaches_greedy(self):
        policy = SoftmaxPolicy(lambda ctx, a: float(a), temperature=0.01)
        assert policy.distribution({}, ACTIONS)[2] > 0.99

    def test_high_temperature_approaches_uniform(self):
        policy = SoftmaxPolicy(lambda ctx, a: float(a), temperature=1000.0)
        np.testing.assert_allclose(
            policy.distribution({}, ACTIONS), [1 / 3] * 3, atol=0.01
        )

    def test_overflow_safe(self):
        policy = SoftmaxPolicy(lambda ctx, a: 1e6 * a, temperature=1.0)
        probs = policy.distribution({}, ACTIONS)
        assert np.isfinite(probs).all()

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            SoftmaxPolicy(lambda c, a: 0.0, temperature=0.0)


class TestGreedyRegressorPolicy:
    def test_maximize_picks_argmax(self):
        policy = GreedyRegressorPolicy(lambda ctx, a: [0.1, 0.9, 0.5][a])
        assert policy.action({}, ACTIONS) == 1

    def test_minimize_picks_argmin(self):
        policy = GreedyRegressorPolicy(
            lambda ctx, a: [0.1, 0.9, 0.5][a], maximize=False
        )
        assert policy.action({}, ACTIONS) == 0

    def test_tie_breaks_low_action(self):
        policy = GreedyRegressorPolicy(lambda ctx, a: 0.5)
        assert policy.action({}, ACTIONS) == 0


class TestHashPolicy:
    def test_same_key_same_action(self, rng):
        policy = HashPolicy(lambda ctx: "client-42")
        a1, _ = policy.act({}, ACTIONS, rng)
        a2, _ = policy.act({}, ACTIONS, rng)
        assert a1 == a2

    def test_marginal_propensity_is_uniform(self, rng):
        policy = HashPolicy(lambda ctx: "any")
        _, p = policy.act({}, ACTIONS, rng)
        assert p == pytest.approx(1 / 3)

    def test_different_keys_spread(self, rng):
        policy = HashPolicy(lambda ctx: ctx["key"])
        seen = {
            policy.act({"key": f"client-{i}"}, ACTIONS, rng)[0] for i in range(50)
        }
        assert seen == {0, 1, 2}


class TestMixturePolicy:
    def test_blends_distributions(self):
        mix = MixturePolicy(
            [ConstantPolicy(0), UniformRandomPolicy()], weights=[0.5, 0.5]
        )
        probs = mix.distribution({}, ACTIONS)
        np.testing.assert_allclose(probs, [0.5 + 1 / 6, 1 / 6, 1 / 6])

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            MixturePolicy([ConstantPolicy(0)], weights=[0.5])
        with pytest.raises(ValueError):
            MixturePolicy(
                [ConstantPolicy(0), ConstantPolicy(1)], weights=[0.9, 0.2]
            )

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            MixturePolicy([ConstantPolicy(0)], weights=[0.5, 0.5])


class TestLinearThresholdPolicy:
    def test_picks_argmax_score(self):
        # Action 0 scores x, action 1 scores -x (bias columns zero).
        weights = np.array([[1.0, 0.0], [-1.0, 0.0]])
        policy = LinearThresholdPolicy(weights, ["x"])
        assert policy.action({"x": 2.0}, [0, 1]) == 0
        assert policy.action({"x": -2.0}, [0, 1]) == 1

    def test_bias_column_used(self):
        weights = np.array([[0.0, 0.0], [0.0, 1.0]])
        policy = LinearThresholdPolicy(weights, ["x"])
        assert policy.action({"x": 0.0}, [0, 1]) == 1

    def test_missing_feature_treated_as_zero(self):
        weights = np.array([[1.0, 0.0], [0.0, 0.5]])
        policy = LinearThresholdPolicy(weights, ["x"])
        assert policy.action({}, [0, 1]) == 1

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            LinearThresholdPolicy(np.zeros(3), ["x"])
        with pytest.raises(ValueError):
            LinearThresholdPolicy(np.zeros((2, 5)), ["x"])


class TestPolicyClass:
    def test_enumeration(self):
        pc = PolicyClass.all_constant(4)
        assert len(pc) == 4
        assert pc[2].action({}, list(range(4))) == 2

    def test_random_linear_deterministic(self, rng):
        a = PolicyClass.random_linear(5, 3, ["x"], np.random.default_rng(1))
        b = PolicyClass.random_linear(5, 3, ["x"], np.random.default_rng(1))
        context = {"x": 0.7}
        for pa, pb in zip(a, b):
            assert pa.action(context, ACTIONS) == pb.action(context, ACTIONS)

    def test_empty_class_rejected(self):
        with pytest.raises(ValueError):
            PolicyClass([])


class TestPolicyHelpers:
    def test_probability_of_ineligible_action_is_zero(self):
        assert UniformRandomPolicy().probability_of({}, [0, 1], 5) == 0.0

    def test_act_distribution_consistency(self, rng):
        # Empirical frequencies from act() should match distribution().
        policy = EpsilonGreedyPolicy(ConstantPolicy(0), epsilon=0.5)
        draws = [policy.act({}, ACTIONS, rng)[0] for _ in range(6000)]
        freqs = np.bincount(draws, minlength=3) / len(draws)
        np.testing.assert_allclose(
            freqs, policy.distribution({}, ACTIONS), atol=0.03
        )
