"""Unit tests for the harvesting pipeline."""

import numpy as np
import pytest

from repro.core.harvest import HarvestPipeline, LogScavenger
from repro.core.policies import ConstantPolicy, PolicyClass, UniformRandomPolicy
from repro.core.propensity import DeclaredPropensityModel, EmpiricalPropensityModel
from repro.core.types import ActionSpace, RewardRange


def make_records(n=1000, seed=0):
    """Raw log records from a toy system with uniform-random actions."""
    rng = np.random.default_rng(seed)
    records = []
    for t in range(n):
        load = float(rng.uniform())
        action = int(rng.integers(3))
        reward = 0.2 + 0.2 * action + 0.1 * load
        records.append(
            {"t": t, "load": load, "chosen": action, "latency": reward}
        )
    return records


def make_scavenger():
    return LogScavenger(
        context_of=lambda r: {"load": r["load"]},
        action_of=lambda r: r["chosen"],
        reward_of=lambda r: r["latency"],
        timestamp_of=lambda r: float(r["t"]),
    )


class TestLogScavenger:
    def test_extracts_all_valid_records(self):
        scavenger = make_scavenger()
        out = scavenger.scavenge(make_records(100))
        assert len(out) == 100
        assert scavenger.dropped == 0
        assert out[5].timestamp == 5.0

    def test_drops_malformed_records(self):
        scavenger = make_scavenger()
        records = make_records(10) + [{"garbage": True}, {"load": "NaN?"}]
        out = scavenger.scavenge(records)
        assert len(out) == 10
        assert scavenger.dropped == 2

    def test_drops_none_fields(self):
        scavenger = LogScavenger(
            context_of=lambda r: None,
            action_of=lambda r: 0,
            reward_of=lambda r: 0.0,
        )
        assert scavenger.scavenge([{"x": 1}]) == []
        assert scavenger.dropped == 1

    def test_default_timestamp_is_index(self):
        scavenger = LogScavenger(
            context_of=lambda r: {"x": 1.0},
            action_of=lambda r: 0,
            reward_of=lambda r: 1.0,
        )
        out = scavenger.scavenge([{}, {}, {}])
        assert [r.timestamp for r in out] == [0.0, 1.0, 2.0]

    def test_eligible_actions_extractor(self):
        scavenger = LogScavenger(
            context_of=lambda r: {"x": 1.0},
            action_of=lambda r: r["a"],
            reward_of=lambda r: 1.0,
            eligible_of=lambda r: r["eligible"],
        )
        out = scavenger.scavenge([{"a": 1, "eligible": [1, 2]}])
        assert out[0].eligible_actions == [1, 2]


class TestHarvestPipeline:
    def _pipeline(self, declared=True, records=None):
        if declared:
            model = DeclaredPropensityModel(UniformRandomPolicy())
        else:
            model = EmpiricalPropensityModel().fit(
                [r["chosen"] for r in records]
            )
        return HarvestPipeline(
            scavenger=make_scavenger(),
            propensity_model=model,
            action_space=ActionSpace(3),
            reward_range=RewardRange(0.0, 1.0),
        )

    def test_build_dataset(self):
        records = make_records(500)
        dataset = self._pipeline().build_dataset(records)
        assert len(dataset) == 500
        assert dataset.min_propensity() == pytest.approx(1 / 3)
        assert dataset.action_space.n_actions == 3

    def test_evaluate_recovers_truth(self):
        records = make_records(20000)
        pipeline = self._pipeline()
        dataset = pipeline.build_dataset(records)
        estimate = pipeline.evaluate(ConstantPolicy(2), dataset)
        # E[r | a=2] = 0.2 + 0.4 + 0.1*0.5 = 0.65
        assert estimate.value == pytest.approx(0.65, abs=0.02)

    def test_optimize_finds_best_constant(self):
        records = make_records(5000)
        pipeline = self._pipeline()
        dataset = pipeline.build_dataset(records)
        best, value = pipeline.optimize(PolicyClass.all_constant(3), dataset)
        assert best.action({}, [0, 1, 2]) == 2

    def test_run_end_to_end_report(self):
        records = make_records(2000)
        pipeline = self._pipeline()
        report = pipeline.run(
            records, [ConstantPolicy(0), ConstantPolicy(2)]
        )
        assert report.n_records == 2000
        assert report.n_scavenged == 2000
        assert report.n_dropped == 0
        assert set(report.evaluations) == {"constant[0]", "constant[2]"}
        assert (
            report.evaluations["constant[2]"].value
            > report.evaluations["constant[0]"].value
        )

    def test_empirical_propensities_close_to_declared(self):
        records = make_records(5000)
        declared_ds = self._pipeline(declared=True).build_dataset(records)
        empirical_ds = self._pipeline(
            declared=False, records=records
        ).build_dataset(records)
        assert empirical_ds.min_propensity() == pytest.approx(
            declared_ds.min_propensity(), abs=0.02
        )

    def test_no_usable_records_raises(self):
        pipeline = self._pipeline()
        with pytest.raises(ValueError):
            pipeline.build_dataset([{"garbage": 1}])


class TestHarvestValidationModes:
    def _pipeline(self, mode="strict", reward_range=RewardRange(0.0, 1.0)):
        return HarvestPipeline(
            scavenger=make_scavenger(),
            propensity_model=DeclaredPropensityModel(UniformRandomPolicy()),
            action_space=ActionSpace(3),
            reward_range=reward_range,
            mode=mode,
        )

    def _records_with_bad_reward(self, n=50):
        records = make_records(n)
        records[7]["latency"] = 9.5  # outside [0, 1]
        records[21]["latency"] = float("nan")
        return records

    def test_strict_mode_raises_naming_record_and_reason(self):
        pipeline = self._pipeline("strict")
        with pytest.raises(ValueError, match=r"record 8: reward"):
            pipeline.build_dataset(self._records_with_bad_reward())

    def test_quarantine_mode_sets_violators_aside(self):
        pipeline = self._pipeline("quarantine")
        dataset = pipeline.build_dataset(self._records_with_bad_reward())
        assert len(dataset) == 48
        assert dataset.quarantine.n_rejected == 2
        assert dataset.quarantine.counts_by_reason() == {"reward": 2}
        assert pipeline.quarantine is dataset.quarantine

    def test_repair_mode_clips_finite_rewards_only(self):
        pipeline = self._pipeline("repair")
        dataset = pipeline.build_dataset(self._records_with_bad_reward())
        # 9.5 clips to 1.0; NaN is unfixable and stays quarantined.
        assert len(dataset) == 49
        assert dataset.quarantine.n_repaired == 1
        assert dataset.quarantine.n_rejected == 1
        rewards = [i.reward for i in dataset]
        assert max(rewards) <= 1.0

    def test_mode_argument_overrides_pipeline_default(self):
        pipeline = self._pipeline("strict")
        dataset = pipeline.build_dataset(
            self._records_with_bad_reward(), mode="quarantine"
        )
        assert dataset.quarantine.n_rejected == 2

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown validation mode"):
            self._pipeline("lenient")

    def test_all_rejected_raises(self):
        pipeline = self._pipeline("quarantine")
        records = make_records(10)
        for record in records:
            record["latency"] = float("inf")
        with pytest.raises(ValueError, match="rejected every"):
            pipeline.build_dataset(records)

    def test_report_carries_quarantine(self):
        pipeline = self._pipeline("quarantine")
        report = pipeline.run(
            self._records_with_bad_reward(200),
            candidates=[ConstantPolicy(0), ConstantPolicy(1)],
        )
        assert report.quarantine is not None
        assert report.quarantine.n_rejected == 2

    def test_spaceless_pipeline_infers_eligibility_once(self):
        # No declared action space: the observed-action ceiling is
        # computed from the whole scavenge (the hoisted path).
        pipeline = HarvestPipeline(
            scavenger=make_scavenger(),
            propensity_model=DeclaredPropensityModel(UniformRandomPolicy()),
            mode="quarantine",
        )
        dataset = pipeline.build_dataset(make_records(300))
        assert len(dataset) == 300
        assert not dataset.quarantine
