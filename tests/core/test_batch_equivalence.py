"""Scalar ↔ vectorized equivalence for the whole evaluation engine.

The columnar backend (:mod:`repro.core.columns`) must be a pure
performance optimization: for every estimator and every built-in policy
type, the vectorized path has to reproduce the scalar reference to
floating-point noise.  These tests pin that contract at ~1e-12 — far
below any statistical meaning of the estimates — and include a
hypothesis property test over randomly generated datasets.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import engine
from repro.core.bootstrap import bootstrap_ips_interval, bootstrap_snips_interval
from repro.core.columns import loop_probabilities
from repro.core.comparison import compare_policies, evaluate_with_bound
from repro.core.estimators.direct import DirectMethodEstimator, RewardModel
from repro.core.estimators.doubly_robust import DoublyRobustEstimator
from repro.core.estimators.ips import (
    ClippedIPSEstimator,
    IPSEstimator,
    SNIPSEstimator,
)
from repro.core.estimators.switch import SwitchEstimator
from repro.core.learners.cb import PolicyClassOptimizer
from repro.core.policies import (
    ConstantPolicy,
    DeterministicFunctionPolicy,
    EpsilonGreedyPolicy,
    GreedyRegressorPolicy,
    HashPolicy,
    LinearThresholdPolicy,
    MixturePolicy,
    PolicyClass,
    SoftmaxPolicy,
    UniformRandomPolicy,
)
from repro.core.types import ActionSpace, Dataset, Interaction, RewardRange

from tests.conftest import make_uniform_dataset

TOL = 1e-12

FEATURES = ["load", "bias"]


def _linear_weights(seed: int, n_actions: int = 3) -> np.ndarray:
    return np.random.default_rng(seed).normal(
        size=(n_actions, len(FEATURES) + 1)
    )


def make_policies() -> list:
    """One instance of every built-in policy type (plus compositions)."""
    return [
        ConstantPolicy(1),
        UniformRandomPolicy(),
        HashPolicy(lambda context: f"{context.get('load', 0.0):.4f}"),
        EpsilonGreedyPolicy(ConstantPolicy(0), epsilon=0.25),
        EpsilonGreedyPolicy(
            LinearThresholdPolicy(_linear_weights(7), FEATURES), epsilon=0.1
        ),
        SoftmaxPolicy(
            lambda context, action: action * context.get("load", 0.0),
            temperature=0.7,
        ),
        LinearThresholdPolicy(_linear_weights(13), FEATURES),
        GreedyRegressorPolicy(
            lambda context, action: action - context.get("load", 0.0) * action**2,
            maximize=True,
        ),
        GreedyRegressorPolicy(
            lambda context, action: action * context.get("load", 0.0),
            maximize=False,
            name="greedy-min",
        ),
        SoftmaxPolicy(
            lambda context, action: action * context.get("load", 0.0),
            temperature=1.3,
            name="softmax-batch",
            batch_scorer=lambda cols: cols.feature_matrix(("load",))[:, :1]
            * np.arange(cols.n_actions),
        ),
        GreedyRegressorPolicy(
            lambda context, action: action - context.get("load", 0.0) * action**2,
            name="greedy-batch",
            batch_predict=lambda cols: (
                np.arange(cols.n_actions)[None, :]
                - cols.feature_matrix(("load",))[:, :1]
                * np.arange(cols.n_actions)[None, :] ** 2
            ),
        ),
        MixturePolicy(
            [ConstantPolicy(0), UniformRandomPolicy()], [0.75, 0.25]
        ),
        DeterministicFunctionPolicy(
            lambda context, actions: actions[-1], name="last-eligible"
        ),
    ]


def make_estimators(backend):
    return [
        IPSEstimator(backend=backend),
        ClippedIPSEstimator(max_weight=2.0, backend=backend),
        SNIPSEstimator(backend=backend),
        DirectMethodEstimator(backend=backend),
        DoublyRobustEstimator(backend=backend),
        SwitchEstimator(tau=1.5, backend=backend),
    ]


def make_restricted_dataset(n: int = 300, seed: int = 21) -> Dataset:
    """A dataset whose action space restricts eligibility per context."""
    rng = np.random.default_rng(seed)

    def eligibility(context):
        # Action 2 is only eligible under high load; 0 and 1 always.
        return [0, 1, 2] if context["load"] > 0.5 else [0, 1]

    space = ActionSpace(3, eligibility=eligibility)
    dataset = Dataset(action_space=space, reward_range=RewardRange())
    for t in range(n):
        context = {"load": float(rng.uniform()), "bias": 1.0}
        eligible = space.actions(context)
        action = int(rng.choice(eligible))
        dataset.append(
            Interaction(
                context=context,
                action=action,
                reward=float(rng.uniform()),
                propensity=1.0 / len(eligible),
                timestamp=float(t),
            )
        )
    return dataset


def make_spaceless_dataset(n: int = 200, seed: int = 5) -> Dataset:
    """A scavenged-style log with no attached action space."""
    rng = np.random.default_rng(seed)
    dataset = Dataset()
    for t in range(n):
        dataset.append(
            Interaction(
                context={"load": float(rng.uniform()), "bias": 1.0},
                action=int(rng.integers(0, 3)),
                reward=float(rng.uniform()),
                propensity=float(rng.uniform(0.1, 1.0)),
                timestamp=float(t),
            )
        )
    return dataset


DATASET_BUILDERS = {
    "uniform": lambda: make_uniform_dataset(400, seed=3),
    "skewed-propensities": lambda: make_spaceless_dataset(),
    "restricted-eligibility": lambda: make_restricted_dataset(),
}


#: Diagnostics aggregate across the whole dataset, so scalar/vectorized
#: summation-order differences can reach a few ulps above the per-value
#: TOL; 1e-9 is still far below every diagnostic threshold.
DIAG_TOL = 1e-9


def assert_diagnostics_match(scalar, vectorized):
    if scalar.diagnostics is None:
        assert vectorized.diagnostics is None
        return
    a, b = scalar.diagnostics, vectorized.diagnostics
    assert b.verdict == a.verdict
    assert b.profile == a.profile
    assert b.n == a.n
    for field in (
        "effective_sample_size",
        "ess_fraction",
        "mean_weight",
        "max_weight",
        "weight_q99",
        "min_propensity",
        "propensity_identity_error",
        "support_coverage",
    ):
        expected = getattr(a, field)
        actual = getattr(b, field)
        if expected is None:
            assert actual is None, field
        elif np.isnan(expected):
            assert np.isnan(actual), field
        else:
            assert actual == pytest.approx(expected, abs=DIAG_TOL), field


def assert_results_match(scalar, vectorized):
    if np.isnan(scalar.value):
        assert np.isnan(vectorized.value)
    else:
        assert vectorized.value == pytest.approx(scalar.value, abs=TOL)
    if np.isfinite(scalar.std_error):
        assert vectorized.std_error == pytest.approx(scalar.std_error, abs=TOL)
    else:
        assert vectorized.std_error == scalar.std_error
    assert vectorized.n == scalar.n
    assert vectorized.effective_n == scalar.effective_n
    assert_diagnostics_match(scalar, vectorized)
    for key, expected in scalar.details.items():
        if key == "fallback":
            assert vectorized.details[key] == expected
            continue
        assert vectorized.details[key] == pytest.approx(expected, abs=TOL), key


class TestEstimatorEquivalence:
    @pytest.mark.parametrize("dataset_name", sorted(DATASET_BUILDERS))
    def test_every_estimator_matches_on_every_policy(self, dataset_name):
        dataset = DATASET_BUILDERS[dataset_name]()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            for scalar_est, vector_est in zip(
                make_estimators("scalar"), make_estimators("vectorized")
            ):
                for policy in make_policies():
                    a = scalar_est.estimate(policy, dataset)
                    b = vector_est.estimate(policy, dataset)
                    assert_results_match(a, b)

    def test_weight_and_term_vectors_match(self):
        dataset = make_uniform_dataset(300, seed=9)
        for policy in make_policies()[:6]:
            scalar = IPSEstimator(backend="scalar")
            vector = IPSEstimator(backend="vectorized")
            np.testing.assert_allclose(
                vector.match_weights(policy, dataset),
                scalar.match_weights(policy, dataset),
                atol=TOL,
            )
            np.testing.assert_allclose(
                vector.weighted_rewards(policy, dataset),
                scalar.weighted_rewards(policy, dataset),
                atol=TOL,
            )

    def test_prefitted_reward_model_matches(self):
        dataset = make_uniform_dataset(250, seed=17)
        model = RewardModel(n_actions=3).fit(dataset)
        policy = EpsilonGreedyPolicy(ConstantPolicy(1), 0.2)
        for make in (
            lambda b: DirectMethodEstimator(model, backend=b),
            lambda b: DoublyRobustEstimator(model, backend=b),
            lambda b: SwitchEstimator(1.2, model, backend=b),
        ):
            assert_results_match(
                make("scalar").estimate(policy, dataset),
                make("vectorized").estimate(policy, dataset),
            )

    def test_policy_class_search_matches(self):
        dataset = make_uniform_dataset(400, seed=23)
        policy_class = PolicyClass.random_linear(
            8, 3, FEATURES, np.random.default_rng(1)
        )
        scalar = PolicyClassOptimizer(IPSEstimator(backend="scalar"))
        vector = PolicyClassOptimizer(IPSEstimator(backend="vectorized"))
        scalar_scores = scalar.score_all(policy_class, dataset)
        vector_scores = vector.score_all(policy_class, dataset)
        for (pa, va), (pb, vb) in zip(scalar_scores, vector_scores):
            assert pa is pb
            assert vb == pytest.approx(va, abs=TOL)
        best_scalar = scalar.optimize(policy_class, dataset)
        best_vector = vector.optimize(policy_class, dataset)
        assert best_scalar[0] is best_vector[0]

    def test_bootstrap_and_comparison_backends_agree(self):
        dataset = make_uniform_dataset(300, seed=31)
        policy = EpsilonGreedyPolicy(ConstantPolicy(1), 0.3)
        rng = lambda: np.random.default_rng(0)  # noqa: E731
        a = bootstrap_ips_interval(policy, dataset, rng=rng(), backend="scalar")
        b = bootstrap_ips_interval(
            policy, dataset, rng=rng(), backend="vectorized"
        )
        assert b.low == pytest.approx(a.low, abs=TOL)
        assert b.high == pytest.approx(a.high, abs=TOL)
        a = bootstrap_snips_interval(policy, dataset, rng=rng(), backend="scalar")
        b = bootstrap_snips_interval(
            policy, dataset, rng=rng(), backend="vectorized"
        )
        assert b.low == pytest.approx(a.low, abs=TOL)
        assert b.high == pytest.approx(a.high, abs=TOL)

        challenger = UniformRandomPolicy()
        ca = compare_policies(policy, challenger, dataset, backend="scalar")
        cb = compare_policies(policy, challenger, dataset, backend="vectorized")
        assert cb.difference == pytest.approx(ca.difference, abs=TOL)
        assert cb.interval.low == pytest.approx(ca.interval.low, abs=TOL)
        ba = evaluate_with_bound(policy, dataset, backend="scalar")
        bb = evaluate_with_bound(policy, dataset, backend="vectorized")
        assert bb.value == pytest.approx(ba.value, abs=TOL)


class TestBatchPolicyContract:
    def test_batch_matches_loop_for_all_builtins(self):
        dataset = make_restricted_dataset(150, seed=2)
        columns = dataset.columns()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            for policy in make_policies():
                batch = policy.probabilities_batch(columns)
                loop = loop_probabilities(policy, columns)
                np.testing.assert_allclose(batch, loop, atol=TOL)
                # Zero mass on ineligible actions, rows sum to one.
                assert not batch[~columns.eligible_mask].any()
                np.testing.assert_allclose(
                    batch.sum(axis=1), np.ones(columns.n), atol=1e-9
                )

    def test_columns_cached_and_invalidated(self):
        dataset = make_uniform_dataset(50, seed=1)
        first = dataset.columns()
        assert dataset.columns() is first
        dataset.append(dataset[0])
        second = dataset.columns()
        assert second is not first
        assert second.n == first.n + 1

    def test_fallback_warns_once_per_type(self):
        dataset = make_uniform_dataset(30, seed=1)
        columns = dataset.columns()
        policy = DeterministicFunctionPolicy(
            lambda context, actions: actions[0], name="opaque"
        )
        engine.reset_fallback_warnings()
        with pytest.warns(RuntimeWarning, match="probabilities_batch"):
            policy.probabilities_batch(columns)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            policy.probabilities_batch(columns)  # second call: silent
        engine.reset_fallback_warnings()

    def test_backend_switching(self):
        assert engine.get_default_backend() == "vectorized"
        with engine.use_backend("scalar"):
            assert IPSEstimator().resolved_backend() == "scalar"
            assert IPSEstimator(backend="vectorized").resolved_backend() == (
                "vectorized"
            )
        assert IPSEstimator().resolved_backend() == "vectorized"
        with pytest.raises(ValueError):
            engine.set_default_backend("gpu")
        with pytest.raises(ValueError):
            IPSEstimator(backend="nope")


# -- hypothesis property test ------------------------------------------------


@st.composite
def random_datasets(draw):
    n_actions = draw(st.integers(min_value=2, max_value=4))
    n = draw(st.integers(min_value=2, max_value=30))
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    dataset = Dataset(
        action_space=ActionSpace(n_actions), reward_range=RewardRange()
    )
    for t in range(n):
        dataset.append(
            Interaction(
                context={
                    "load": float(rng.uniform()),
                    "x": float(rng.normal()),
                },
                action=int(rng.integers(0, n_actions)),
                reward=float(rng.uniform()),
                propensity=float(rng.uniform(0.05, 1.0)),
                timestamp=float(t),
            )
        )
    return dataset


@st.composite
def random_policies(draw, n_actions: int):
    kind = draw(st.sampled_from(["constant", "uniform", "eps", "linear"]))
    if kind == "constant":
        return ConstantPolicy(draw(st.integers(0, n_actions - 1)))
    if kind == "uniform":
        return UniformRandomPolicy()
    if kind == "eps":
        return EpsilonGreedyPolicy(
            ConstantPolicy(draw(st.integers(0, n_actions - 1))),
            epsilon=draw(st.floats(0.0, 1.0, allow_nan=False)),
        )
    weights = np.random.default_rng(
        draw(st.integers(0, 2**31 - 1))
    ).normal(size=(n_actions, 3))
    return LinearThresholdPolicy(weights, ["load", "x"])


@given(data=st.data())
@settings(max_examples=60, deadline=None)
def test_property_scalar_vectorized_agree(data):
    dataset = data.draw(random_datasets())
    policy = data.draw(random_policies(dataset.action_space.n_actions))
    for estimator_cls in (IPSEstimator, SNIPSEstimator):
        a = estimator_cls(backend="scalar").estimate(policy, dataset)
        b = estimator_cls(backend="vectorized").estimate(policy, dataset)
        assert_results_match(a, b)
