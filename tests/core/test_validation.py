"""Unit tests for the validation + quarantine layer."""

import json

import pytest

from repro.core.types import ActionSpace, Dataset, Interaction, RewardRange
from repro.core.validation import (
    ACTION,
    PROPENSITY,
    REWARD,
    SCHEMA,
    TIMESTAMP,
    UNPARSEABLE,
    Quarantine,
    RecordValidator,
    check_mode,
    check_values,
    validated_interactions,
)


def good_record(**overrides):
    record = {
        "context": {"load": 0.5},
        "action": 1,
        "reward": 0.7,
        "propensity": 0.25,
        "timestamp": 3.0,
    }
    record.update(overrides)
    return record


class TestCheckMode:
    def test_accepts_known_modes(self):
        for mode in ("strict", "quarantine", "repair"):
            assert check_mode(mode) == mode

    def test_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown validation mode"):
            check_mode("lenient")


class TestCheckValues:
    def test_clean_tuple_has_no_issues(self):
        assert check_values({"x": 1.0}, 1, 0.5, 0.25) == []

    def test_zero_propensity_flagged(self):
        issues = check_values({}, 0, 0.5, 0.0)
        assert [r for r, _ in issues] == [PROPENSITY]

    def test_propensity_above_one_flagged(self):
        issues = check_values({}, 0, 0.5, 1.5)
        assert [r for r, _ in issues] == [PROPENSITY]

    def test_nan_propensity_flagged(self):
        issues = check_values({}, 0, 0.5, float("nan"))
        assert [r for r, _ in issues] == [PROPENSITY]

    def test_non_integer_action_flagged(self):
        issues = check_values({}, 1.5, 0.5, 0.5)
        assert ACTION in [r for r, _ in issues]

    def test_action_outside_eligible_flagged(self):
        issues = check_values({}, 5, 0.5, 0.5, eligible=[0, 1, 2])
        assert ACTION in [r for r, _ in issues]

    def test_reward_outside_range_flagged(self):
        issues = check_values(
            {}, 0, 7.0, 0.5, reward_range=RewardRange(0.0, 1.0)
        )
        assert REWARD in [r for r, _ in issues]

    def test_non_finite_reward_flagged(self):
        issues = check_values({}, 0, float("inf"), 0.5)
        assert REWARD in [r for r, _ in issues]

    def test_multiple_issues_all_reported(self):
        issues = check_values({}, -1, float("nan"), 0.0)
        reasons = {r for r, _ in issues}
        assert reasons == {ACTION, REWARD, PROPENSITY}


class TestQuarantine:
    def test_counts_and_truthiness(self):
        quarantine = Quarantine()
        assert not quarantine
        quarantine.add(3, PROPENSITY, "propensity 0 outside (0, 1]")
        quarantine.add(9, SCHEMA, "missing field(s) ['reward']")
        quarantine.add(12, PROPENSITY, "propensity 2 outside (0, 1]")
        assert quarantine
        assert len(quarantine) == 3
        assert quarantine.counts_by_reason() == {PROPENSITY: 2, SCHEMA: 1}

    def test_example_cap_keeps_counting(self):
        quarantine = Quarantine(max_kept=2)
        for line in range(10):
            quarantine.add(line + 1, UNPARSEABLE, "bad json")
        assert quarantine.n_rejected == 10
        assert len(quarantine.rejected) == 2

    def test_report_is_json_serializable(self):
        quarantine = Quarantine()
        quarantine.add(1, UNPARSEABLE, "Expecting value", raw="{truncated")
        quarantine.note_repair(PROPENSITY)
        report = json.loads(json.dumps(quarantine.report()))
        assert report["n_rejected"] == 1
        assert report["n_repaired"] == 1
        assert report["by_reason"] == {UNPARSEABLE: 1}
        assert report["examples"][0]["line"] == 1

    def test_summary_text_mentions_reasons(self):
        quarantine = Quarantine()
        quarantine.add(4, PROPENSITY, "propensity 0 outside (0, 1]")
        text = quarantine.summary_text()
        assert "1 record(s) rejected" in text
        assert PROPENSITY in text


class TestRecordValidator:
    def test_clean_record_passes(self):
        assert RecordValidator().check(good_record()) == []

    def test_missing_field_is_schema_issue(self):
        record = good_record()
        del record["propensity"]
        issues = RecordValidator().check(record)
        assert [r for r, _ in issues] == [SCHEMA]

    def test_non_mapping_record_is_schema_issue(self):
        issues = RecordValidator().check([1, 2, 3])
        assert [r for r, _ in issues] == [SCHEMA]

    def test_non_mapping_context_is_schema_issue(self):
        issues = RecordValidator().check(good_record(context="nope"))
        assert SCHEMA in [r for r, _ in issues]

    def test_action_space_eligibility_enforced(self):
        validator = RecordValidator(action_space=ActionSpace(2))
        issues = validator.check(good_record(action=5))
        assert ACTION in [r for r, _ in issues]

    def test_monotone_timestamps_via_observe(self):
        validator = RecordValidator(monotone_timestamps=True)
        first = good_record(timestamp=5.0)
        assert validator.check(first) == []
        validator.observe(first)
        issues = validator.check(good_record(timestamp=2.0))
        assert [r for r, _ in issues] == [TIMESTAMP]
        # check() is pure: the watermark did not advance on rejection.
        assert validator.check(good_record(timestamp=6.0)) == []

    def test_extra_rules_compose(self):
        validator = RecordValidator(
            extra_rules=[
                lambda record: ("reward", "reward is suspiciously round")
                if record["reward"] == 1.0
                else None
            ]
        )
        assert validator.check(good_record()) == []
        issues = validator.check(good_record(reward=1.0))
        assert ("reward", "reward is suspiciously round") in issues

    def test_repair_clamps_propensity_and_reward(self):
        validator = RecordValidator(reward_range=RewardRange(0.0, 1.0))
        record = good_record(propensity=0.0, reward=3.5)
        issues = validator.check(record)
        repaired, remaining, applied = validator.repair(record, issues)
        assert remaining == []
        assert sorted(applied) == [PROPENSITY, REWARD]
        assert repaired["propensity"] == validator.repair_propensity_floor
        assert repaired["reward"] == 1.0

    def test_repair_never_fixes_schema(self):
        validator = RecordValidator()
        record = good_record()
        del record["action"]
        issues = validator.check(record)
        _, remaining, applied = validator.repair(record, issues)
        assert applied == []
        assert remaining == issues


class TestValidatedInteractions:
    def lines(self, *records):
        return [json.dumps(r) if isinstance(r, dict) else r for r in records]

    def test_strict_raises_with_source_and_line(self):
        source = self.lines(good_record(), "{not json")
        with pytest.raises(ValueError, match=r"my\.jsonl: invalid JSON at line 2"):
            list(
                validated_interactions(
                    source, mode="strict", source_name="my.jsonl"
                )
            )

    def test_strict_raises_on_value_defect_with_line(self):
        source = self.lines(good_record(), good_record(propensity=0.0))
        with pytest.raises(ValueError, match="line 2: propensity"):
            list(validated_interactions(source, mode="strict"))

    def test_quarantine_collects_and_continues(self):
        quarantine = Quarantine()
        source = self.lines(
            good_record(),
            "{truncated",
            good_record(propensity=0.0),
            good_record(),
        )
        out = list(
            validated_interactions(
                source, mode="quarantine", quarantine=quarantine
            )
        )
        assert len(out) == 2
        assert all(isinstance(i, Interaction) for i in out)
        assert quarantine.counts_by_reason() == {UNPARSEABLE: 1, PROPENSITY: 1}

    def test_repair_mode_fixes_and_counts(self):
        quarantine = Quarantine()
        source = self.lines(good_record(propensity=1.8))
        out = list(
            validated_interactions(
                source, mode="repair", quarantine=quarantine
            )
        )
        assert len(out) == 1
        assert out[0].propensity == 1.0
        assert quarantine.n_repaired == 1
        assert quarantine.n_rejected == 0

    def test_blank_lines_skipped_silently(self):
        quarantine = Quarantine()
        source = ["", "   ", json.dumps(good_record())]
        out = list(
            validated_interactions(
                source, mode="quarantine", quarantine=quarantine
            )
        )
        assert len(out) == 1
        assert not quarantine

    def test_parsed_dicts_accepted_directly(self):
        out = list(validated_interactions([good_record()], mode="strict"))
        assert len(out) == 1
        assert out[0].action == 1


class TestDatasetLoadJsonl:
    def write(self, tmp_path, lines):
        path = tmp_path / "log.jsonl"
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def test_malformed_json_names_path_and_line(self, tmp_path):
        path = self.write(
            tmp_path, [json.dumps(good_record()), "{oops", ""]
        )
        with pytest.raises(ValueError) as excinfo:
            Dataset.load_jsonl(path)
        message = str(excinfo.value)
        assert path in message
        assert "line 2" in message

    def test_strict_default_loads_clean_log(self, tmp_path):
        path = self.write(
            tmp_path, [json.dumps(good_record()) for _ in range(5)]
        )
        dataset = Dataset.load_jsonl(path)
        assert len(dataset) == 5
        assert not dataset.quarantine

    def test_quarantine_mode_attaches_report(self, tmp_path):
        path = self.write(
            tmp_path,
            [
                json.dumps(good_record()),
                "{broken",
                json.dumps(good_record(propensity=-0.5)),
            ],
        )
        dataset = Dataset.load_jsonl(path, mode="quarantine")
        assert len(dataset) == 1
        assert dataset.quarantine.n_rejected == 2
        assert dataset.quarantine.counts_by_reason() == {
            UNPARSEABLE: 1,
            PROPENSITY: 1,
        }

    def test_repair_mode_keeps_fixable_records(self, tmp_path):
        path = self.write(
            tmp_path,
            [
                json.dumps(good_record(propensity=2.0)),
                json.dumps(good_record()),
            ],
        )
        dataset = Dataset.load_jsonl(path, mode="repair")
        assert len(dataset) == 2
        assert dataset.quarantine.n_repaired == 1
        assert dataset[0].propensity == 1.0

    def test_round_trip_save_then_strict_load(self, tmp_path):
        from tests.conftest import make_uniform_dataset

        original = make_uniform_dataset(50, seed=7)
        path = str(tmp_path / "round.jsonl")
        original.save_jsonl(path)
        loaded = Dataset.load_jsonl(path)
        assert len(loaded) == 50
        assert loaded[0].propensity == original[0].propensity
