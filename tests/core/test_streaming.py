"""Unit tests for streaming (incremental) evaluation."""

import numpy as np
import pytest

from repro.core.estimators.ips import IPSEstimator
from repro.core.policies import ConstantPolicy, UniformRandomPolicy
from repro.core.streaming import StreamingEvaluationBoard, StreamingIPS
from repro.core.types import ActionSpace

from tests.conftest import make_uniform_dataset


class TestStreamingIPS:
    def test_matches_batch_ips_exactly(self):
        dataset = make_uniform_dataset(1500, seed=1)
        stream = StreamingIPS(ConstantPolicy(1), ActionSpace(3))
        stream.update_all(dataset)
        snap = stream.snapshot()
        batch = IPSEstimator().estimate(ConstantPolicy(1), dataset)
        assert snap.value == pytest.approx(batch.value)
        assert snap.std_error == pytest.approx(batch.std_error)
        assert snap.match_rate == pytest.approx(batch.details["match_rate"])

    def test_snapshot_available_mid_stream(self):
        dataset = make_uniform_dataset(100, seed=2)
        stream = StreamingIPS(ConstantPolicy(0), ActionSpace(3))
        values = []
        for interaction in dataset:
            stream.update(interaction)
            values.append(stream.snapshot().value)
        assert len(values) == 100
        # Later estimates settle (variance of running mean decreases).
        assert abs(values[-1] - values[-2]) < abs(values[1] - values[0]) + 1.0

    def test_constant_memory(self):
        """No per-datapoint state is retained (the streaming claim)."""
        stream = StreamingIPS(ConstantPolicy(0), ActionSpace(3))
        stream.update_all(make_uniform_dataset(5000, seed=3))
        own_state = {
            k: v for k, v in vars(stream).items() if not callable(v)
        }
        for value in own_state.values():
            assert not isinstance(value, (list, dict, np.ndarray)) or (
                value is stream.action_space
            )

    def test_empty_snapshot_raises(self):
        stream = StreamingIPS(ConstantPolicy(0), ActionSpace(2))
        with pytest.raises(ValueError):
            stream.snapshot()

    def test_single_point_has_infinite_se(self):
        dataset = make_uniform_dataset(1, seed=4)
        stream = StreamingIPS(ConstantPolicy(0), ActionSpace(3))
        stream.update_all(dataset)
        assert stream.snapshot().std_error == float("inf")


class TestStreamingBoard:
    def _board(self):
        return StreamingEvaluationBoard(
            [ConstantPolicy(a) for a in range(3)], ActionSpace(3)
        )

    def test_all_candidates_advance_together(self):
        board = self._board()
        board.update_all(make_uniform_dataset(400, seed=5))
        snaps = board.snapshots()
        assert len(snaps) == 3
        assert all(s.n == 400 for s in snaps)

    def test_leader_is_best_action(self):
        board = self._board()
        board.update_all(make_uniform_dataset(6000, seed=6))
        assert board.leader(maximize=True).policy_name == "constant[2]"
        assert board.leader(maximize=False).policy_name == "constant[0]"

    def test_resolution_emerges_with_data(self):
        board = self._board()
        board.update_all(make_uniform_dataset(30, seed=7))
        early = board.resolved()
        board.update_all(make_uniform_dataset(20000, seed=8))
        late = board.resolved()
        assert late
        # Resolution never goes from certain to uncertain in this flow.
        assert late or not early

    def test_single_candidate_always_resolved(self):
        board = StreamingEvaluationBoard(
            [UniformRandomPolicy()], ActionSpace(3)
        )
        board.update_all(make_uniform_dataset(10, seed=9))
        assert board.resolved()

    def test_no_candidates_rejected(self):
        with pytest.raises(ValueError):
            StreamingEvaluationBoard([], ActionSpace(2))


class TestValidatedInteractionStream:
    def _raw(self, n=20):
        import json

        lines = []
        for i in range(n):
            lines.append(
                json.dumps(
                    {
                        "context": {"load": i / n},
                        "action": i % 3,
                        "reward": 0.5,
                        "propensity": 1.0 / 3.0,
                        "timestamp": float(i),
                    }
                )
            )
        return lines

    def test_clean_stream_passes_through(self):
        from repro.core.streaming import ValidatedInteractionStream

        stream = ValidatedInteractionStream(self._raw(20))
        out = list(stream)
        assert len(out) == 20
        assert stream.n_accepted == 20
        assert not stream.quarantine

    def test_defects_quarantined_mid_stream(self):
        from repro.core.streaming import ValidatedInteractionStream

        lines = self._raw(10)
        lines.insert(3, "{cut off")
        lines.insert(7, '{"action": 1}')
        stream = ValidatedInteractionStream(lines)
        out = list(stream)
        assert len(out) == 10
        assert stream.quarantine.n_rejected == 2

    def test_feeds_streaming_ips_end_to_end(self):
        from repro.core.streaming import ValidatedInteractionStream

        lines = self._raw(300)
        lines.insert(50, "{truncated")
        stream = ValidatedInteractionStream(lines)
        ips = StreamingIPS(ConstantPolicy(1), ActionSpace(3))
        for interaction in stream:
            ips.update(interaction)
        snap = ips.snapshot()
        assert snap.n == 300
        assert np.isfinite(snap.value)
        assert stream.quarantine.n_rejected == 1

    def test_strict_mode_raises_on_first_defect(self):
        from repro.core.streaming import ValidatedInteractionStream

        lines = self._raw(5)
        lines.insert(2, "{bad")
        stream = ValidatedInteractionStream(lines, mode="strict")
        with pytest.raises(ValueError, match="line 3"):
            list(stream)

    def test_unknown_mode_rejected(self):
        from repro.core.streaming import ValidatedInteractionStream

        with pytest.raises(ValueError, match="unknown validation mode"):
            ValidatedInteractionStream([], mode="loose")
