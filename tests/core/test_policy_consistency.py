"""Systematic consistency checks across every policy implementation.

Every policy must satisfy the same contract; these parametrized tests
run the whole zoo through it instead of trusting each class's own
tests to have covered it.
"""

import numpy as np
import pytest

from repro.core.policies import (
    ConstantPolicy,
    DeterministicFunctionPolicy,
    EpsilonGreedyPolicy,
    GreedyRegressorPolicy,
    LinearThresholdPolicy,
    MixturePolicy,
    SoftmaxPolicy,
    UniformRandomPolicy,
)
from repro.loadbalance.policies import (
    least_loaded_policy,
    power_of_two_policy,
    weighted_random_policy,
)

ACTIONS = [0, 1, 2]
CONTEXT = {"conns_0": 2.0, "conns_1": 0.0, "conns_2": 5.0, "x": 0.4}


def policy_zoo():
    return [
        ConstantPolicy(1),
        UniformRandomPolicy(),
        DeterministicFunctionPolicy(lambda c, a: a[0], name="first"),
        EpsilonGreedyPolicy(ConstantPolicy(2), 0.3),
        SoftmaxPolicy(lambda c, a: float(a) * c.get("x", 0.0)),
        GreedyRegressorPolicy(lambda c, a: -float(a)),
        LinearThresholdPolicy(
            np.array([[1.0, 0.0], [0.5, 0.2], [-1.0, 0.1]]), ["x"]
        ),
        # Constant component chosen to stay eligible under the
        # restricted-action test (a constant on an ineligible action
        # correctly raises — covered in test_policies.py).
        MixturePolicy(
            [ConstantPolicy(1), UniformRandomPolicy()], [0.4, 0.6]
        ),
        least_loaded_policy(),
        power_of_two_policy(),
        weighted_random_policy([1.0, 2.0, 3.0]),
    ]


@pytest.mark.parametrize("policy", policy_zoo(), ids=lambda p: p.name)
class TestPolicyContract:
    def test_distribution_is_probability_vector(self, policy):
        probs = policy.distribution(CONTEXT, ACTIONS)
        assert probs.shape == (3,)
        assert probs.sum() == pytest.approx(1.0)
        assert (probs >= -1e-12).all()

    def test_probability_of_matches_distribution(self, policy):
        probs = policy.distribution(CONTEXT, ACTIONS)
        for index, action in enumerate(ACTIONS):
            assert policy.probability_of(CONTEXT, ACTIONS, action) == (
                pytest.approx(float(probs[index]))
            )

    def test_action_is_mode(self, policy):
        probs = policy.distribution(CONTEXT, ACTIONS)
        assert policy.action(CONTEXT, ACTIONS) == ACTIONS[int(np.argmax(probs))]

    def test_act_returns_eligible_action_with_its_propensity(self, policy):
        rng = np.random.default_rng(7)
        for _ in range(20):
            action, propensity = policy.act(CONTEXT, ACTIONS, rng)
            assert action in ACTIONS
            assert 0.0 < propensity <= 1.0

    def test_restricted_action_set_respected(self, policy):
        rng = np.random.default_rng(8)
        restricted = [1, 2]
        probs = policy.distribution(CONTEXT, restricted)
        assert probs.shape == (2,)
        assert probs.sum() == pytest.approx(1.0)
        for _ in range(10):
            action, _ = policy.act(CONTEXT, restricted, rng)
            assert action in restricted

    def test_distribution_pure_wrt_context(self, policy):
        """Calling distribution must not mutate the context."""
        context = dict(CONTEXT)
        policy.distribution(context, ACTIONS)
        assert context == CONTEXT


@pytest.mark.parametrize(
    "policy",
    [p for p in policy_zoo()
     if p.name not in ("round-robin[3]",)],
    ids=lambda p: p.name,
)
def test_act_frequencies_match_distribution(policy):
    """For every policy, sampled action frequencies converge to the
    declared distribution (the harvesting contract: logged propensities
    describe real behaviour)."""
    rng = np.random.default_rng(11)
    draws = [policy.act(CONTEXT, ACTIONS, rng)[0] for _ in range(4000)]
    freqs = np.bincount(draws, minlength=3) / len(draws)
    np.testing.assert_allclose(
        freqs, policy.distribution(CONTEXT, ACTIONS), atol=0.04
    )
