"""Unit tests for the Direct Method and Doubly Robust estimators."""

import numpy as np
import pytest

from repro.core.estimators.direct import DirectMethodEstimator, RewardModel
from repro.core.estimators.doubly_robust import DoublyRobustEstimator
from repro.core.estimators.ips import IPSEstimator
from repro.core.features import Featurizer
from repro.core.policies import ConstantPolicy, UniformRandomPolicy
from repro.core.types import ActionSpace, Dataset, Interaction

from tests.conftest import make_uniform_dataset


def true_value(action: int) -> float:
    return 0.2 + 0.15 * action + 0.3 * 0.5


class TestRewardModel:
    def test_learns_linear_reward(self):
        dataset = make_uniform_dataset(3000, seed=1)
        model = RewardModel(3, featurizer=Featurizer(16)).fit(dataset)
        for action in range(3):
            for load in (0.2, 0.8):
                predicted = model.predict({"load": load, "bias": 1.0}, action)
                expected = 0.2 + 0.15 * action + 0.3 * load
                assert predicted == pytest.approx(expected, abs=0.05)

    def test_unseen_action_predicts_global_mean(self):
        ds = Dataset(action_space=ActionSpace(3))
        for t in range(50):
            ds.append(Interaction({"x": 1.0}, 0, reward=0.4, propensity=1.0))
        model = RewardModel(3).fit(ds)
        assert model.predict({"x": 1.0}, 2) == pytest.approx(0.4)

    def test_fit_empty_raises(self):
        with pytest.raises(ValueError):
            RewardModel(2).fit(Dataset())

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RewardModel(2).predict({}, 0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RewardModel(0)
        with pytest.raises(ValueError):
            RewardModel(2, l2=-1.0)


class TestDirectMethod:
    def test_recovers_constant_policy_value(self):
        dataset = make_uniform_dataset(5000, seed=2)
        estimate = DirectMethodEstimator().estimate(ConstantPolicy(1), dataset)
        assert estimate.value == pytest.approx(true_value(1), abs=0.03)

    def test_uses_all_data(self):
        dataset = make_uniform_dataset(300, seed=3)
        estimate = DirectMethodEstimator().estimate(ConstantPolicy(0), dataset)
        assert estimate.effective_n == 300

    def test_stochastic_policy_averages_predictions(self):
        dataset = make_uniform_dataset(5000, seed=4)
        estimate = DirectMethodEstimator().estimate(
            UniformRandomPolicy(), dataset
        )
        expected = np.mean([true_value(a) for a in range(3)])
        assert estimate.value == pytest.approx(expected, abs=0.03)

    def test_prefitted_model_reused(self):
        train = make_uniform_dataset(2000, seed=5)
        test = make_uniform_dataset(500, seed=6)
        model = RewardModel(3).fit(train)
        estimate = DirectMethodEstimator(model).estimate(
            ConstantPolicy(2), test
        )
        assert estimate.value == pytest.approx(true_value(2), abs=0.05)

    def test_dm_is_biased_when_model_is_wrong(self):
        """Model misspecification biases DM — the §2 critique."""
        # Reward is quadratic in load; the linear model cannot express it.
        def reward_fn(context, action, rng):
            return float(np.clip((context["load"] - 0.5) ** 2 * 4.0, 0, 1))

        dataset = make_uniform_dataset(4000, seed=7, reward_fn=reward_fn)
        dm = DirectMethodEstimator().estimate(ConstantPolicy(0), dataset)
        # Truth: E[(U-0.5)^2 * 4] = 4/12 = 1/3. A linear-in-load model
        # predicts its mean at the evaluation contexts, which is also
        # 1/3 on average, so compare pointwise instead: the *model*
        # error shows in per-context predictions.
        model = RewardModel(3).fit(dataset)
        prediction_center = model.predict({"load": 0.5, "bias": 1.0}, 0)
        assert abs(prediction_center - 0.0) > 0.1  # truth at load=0.5 is 0


class TestDoublyRobust:
    def test_recovers_truth(self):
        dataset = make_uniform_dataset(5000, seed=8)
        estimate = DoublyRobustEstimator().estimate(ConstantPolicy(1), dataset)
        assert estimate.value == pytest.approx(true_value(1), abs=0.03)

    def test_lower_variance_than_ips(self):
        """The §5 promise: DR reduces IPS variance via the model."""
        ips_vals, dr_vals = [], []
        for seed in range(30):
            ds = make_uniform_dataset(300, seed=200 + seed)
            ips_vals.append(IPSEstimator().estimate(ConstantPolicy(1), ds).value)
            dr_vals.append(
                DoublyRobustEstimator().estimate(ConstantPolicy(1), ds).value
            )
        assert np.std(dr_vals) < np.std(ips_vals)

    def test_unbiased_even_with_bad_model(self):
        """DR stays consistent when the reward model is garbage, as long
        as propensities are right (the 'doubly' in doubly robust)."""

        class ZeroModel(RewardModel):
            def __init__(self):
                super().__init__(n_actions=3)
                self._fitted = True

            def predict(self, context, action):
                return 0.77  # constant nonsense

        dataset = make_uniform_dataset(20000, seed=9)
        estimate = DoublyRobustEstimator(ZeroModel()).estimate(
            ConstantPolicy(1), dataset
        )
        assert estimate.value == pytest.approx(true_value(1), abs=0.03)

    def test_perfect_model_gives_near_zero_variance(self):
        class OracleModel(RewardModel):
            def __init__(self):
                super().__init__(n_actions=3)
                self._fitted = True

            def predict(self, context, action):
                return 0.2 + 0.15 * action + 0.3 * context["load"]

        dataset = make_uniform_dataset(500, seed=10)
        estimate = DoublyRobustEstimator(OracleModel()).estimate(
            ConstantPolicy(1), dataset
        )
        ips = IPSEstimator().estimate(ConstantPolicy(1), dataset)
        assert estimate.std_error < ips.std_error / 2

    def test_match_rate_details(self):
        dataset = make_uniform_dataset(600, seed=11)
        estimate = DoublyRobustEstimator().estimate(ConstantPolicy(0), dataset)
        assert estimate.details["match_rate"] == pytest.approx(1 / 3, abs=0.05)

    def test_empty_dataset_raises(self):
        with pytest.raises(ValueError):
            DoublyRobustEstimator().estimate(ConstantPolicy(0), Dataset())
