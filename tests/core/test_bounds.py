"""Unit tests for Eq. 1 bounds and sample-size math."""

import math

import numpy as np
import pytest

from repro.core.estimators.bounds import (
    DEFAULT_C,
    ab_testing_error_bound,
    ab_testing_sample_size,
    crossover_k,
    diminishing_returns_gain,
    empirical_bernstein_interval,
    hoeffding_interval,
    ips_error_bound,
    ips_sample_size,
)


class TestIPSBound:
    def test_formula(self):
        # err = sqrt(C / (eps N) * log(K/delta))
        err = ips_error_bound(n=1000, epsilon=0.1, k=100, delta=0.05)
        expected = math.sqrt(DEFAULT_C / (0.1 * 1000) * math.log(100 / 0.05))
        assert err == pytest.approx(expected)

    def test_error_decreases_with_n(self):
        errs = [ips_error_bound(n, 0.1, k=10) for n in (100, 1000, 10000)]
        assert errs[0] > errs[1] > errs[2]

    def test_error_scales_as_inverse_sqrt_n(self):
        assert ips_error_bound(100, 0.1) / ips_error_bound(400, 0.1) == (
            pytest.approx(2.0)
        )

    def test_doubling_epsilon_halves_required_n(self):
        """The §4 insight: more exploration -> proportionally less data."""
        n_low = ips_sample_size(0.05, epsilon=0.02, k=10**6)
        n_high = ips_sample_size(0.05, epsilon=0.04, k=10**6)
        assert n_low / n_high == pytest.approx(2.0)

    def test_error_grows_logarithmically_in_k(self):
        err_k = ips_error_bound(1000, 0.1, k=10**3)
        err_k2 = ips_error_bound(1000, 0.1, k=10**6)
        # Squared errors grow additively with log K.
        assert err_k2**2 - err_k**2 == pytest.approx(
            DEFAULT_C / (0.1 * 1000) * math.log(10**3)
        )

    def test_sample_size_inverts_error_bound(self):
        n = ips_sample_size(0.05, epsilon=0.04, k=10**6, delta=0.05)
        assert ips_error_bound(n, 0.04, k=10**6, delta=0.05) == pytest.approx(
            0.05
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ips_error_bound(0, 0.1)
        with pytest.raises(ValueError):
            ips_error_bound(10, 0.0)
        with pytest.raises(ValueError):
            ips_error_bound(10, 1.5)
        with pytest.raises(ValueError):
            ips_error_bound(10, 0.1, delta=0.0)
        with pytest.raises(ValueError):
            ips_error_bound(10, 0.1, k=0.5)
        with pytest.raises(ValueError):
            ips_sample_size(0.0, 0.1)


class TestABBound:
    def test_formula(self):
        err = ab_testing_error_bound(n=1000, k=10, delta=0.05)
        expected = DEFAULT_C * math.sqrt(10 / 1000 * math.log(10 / 0.05))
        assert err == pytest.approx(expected)

    def test_error_grows_with_k(self):
        assert ab_testing_error_bound(1000, k=100) > ab_testing_error_bound(
            1000, k=10
        )

    def test_sample_size_inverts(self):
        n = ab_testing_sample_size(0.05, k=50, delta=0.05)
        assert ab_testing_error_bound(n, k=50, delta=0.05) == pytest.approx(0.05)

    def test_ab_scales_linearly_ips_logarithmically(self):
        """Fig. 1's core claim: A/B data cost ~ K, IPS data cost ~ log K."""
        ab_ratio = ab_testing_sample_size(0.05, k=10**6) / ab_testing_sample_size(
            0.05, k=10**3
        )
        ips_ratio = ips_sample_size(0.05, 0.1, k=10**6) / ips_sample_size(
            0.05, 0.1, k=10**3
        )
        assert ab_ratio > 900  # ~1000x (linear-ish in K, plus log factor)
        # log(10^6/δ) / log(10^3/δ) ≈ 1.7 — a constant factor, not 1000x.
        assert ips_ratio == pytest.approx(
            math.log(10**6 / 0.05) / math.log(10**3 / 0.05), rel=1e-6
        )
        assert ips_ratio < 2.0

    def test_cb_beats_ab_beyond_crossover(self):
        epsilon = 0.1
        k = 10 * crossover_k(epsilon)  # decisively past 1/epsilon
        n = 10_000
        assert ips_error_bound(n, epsilon, k=k) < ab_testing_error_bound(n, k=k)


class TestCrossover:
    def test_crossover_is_one_over_epsilon(self):
        assert crossover_k(0.04) == pytest.approx(25.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            crossover_k(0.0)


class TestDiminishingReturns:
    def test_paper_example_1p7M_to_3p4M(self):
        """'Increasing N from 1.7 to 3.4 million improves accuracy by
        less than 0.01' (§4, for the eps=0.04, K=1e6 curve)."""
        gain = diminishing_returns_gain(
            1.7e6, 3.4e6, epsilon=0.04, k=10**6, delta=0.05
        )
        assert 0.0 < gain < 0.01

    def test_gain_positive_for_growth(self):
        assert diminishing_returns_gain(100, 200, 0.1) > 0


class TestFiniteSampleIntervals:
    def test_hoeffding_contains_mean(self):
        samples = np.random.default_rng(0).uniform(0, 1, 500)
        ci = hoeffding_interval(samples, delta=0.05)
        assert ci.contains(0.5)
        assert ci.confidence == 0.95

    def test_hoeffding_width_shrinks_with_n(self):
        rng = np.random.default_rng(0)
        small = hoeffding_interval(rng.uniform(0, 1, 100))
        large = hoeffding_interval(rng.uniform(0, 1, 10000))
        assert large.width < small.width

    def test_hoeffding_coverage_simulation(self):
        """The interval should cover the true mean ~95% of the time."""
        rng = np.random.default_rng(1)
        covered = sum(
            hoeffding_interval(rng.uniform(0, 1, 50), delta=0.05).contains(0.5)
            for _ in range(200)
        )
        assert covered >= 190  # Hoeffding is conservative

    def test_bernstein_tighter_for_low_variance(self):
        rng = np.random.default_rng(2)
        samples = 0.5 + 0.01 * rng.standard_normal(500)  # tiny variance
        hoeff = hoeffding_interval(samples)
        bern = empirical_bernstein_interval(samples)
        assert bern.width < hoeff.width

    def test_bernstein_contains_mean(self):
        samples = np.random.default_rng(3).uniform(0, 1, 1000)
        assert empirical_bernstein_interval(samples).contains(0.5)

    def test_interval_properties(self):
        samples = np.array([0.4, 0.6])
        ci = hoeffding_interval(samples)
        assert ci.radius == pytest.approx(ci.width / 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            hoeffding_interval(np.array([]))
        with pytest.raises(ValueError):
            hoeffding_interval(np.array([1.0]), delta=1.5)
        with pytest.raises(ValueError):
            empirical_bernstein_interval(np.array([1.0]))
        with pytest.raises(ValueError):
            hoeffding_interval(np.array([1.0, 2.0]), value_range=0.0)
