"""Unit tests for the VW-compatible CB serialization."""

import io

import pytest

from repro.core.types import ActionSpace, Dataset, Interaction
from repro.core.vw_format import (
    interaction_to_vw,
    load_vw,
    save_vw,
    vw_to_interaction,
)


def make_interaction(**overrides):
    defaults = dict(
        context={"load": 0.5, "weight": 2.0},
        action=1,
        reward=0.75,
        propensity=0.25,
        timestamp=3.0,
    )
    defaults.update(overrides)
    return Interaction(**defaults)


class TestSerialization:
    def test_line_format(self):
        line = interaction_to_vw(make_interaction())
        # 1-based action, negated reward (cost), propensity.
        assert line.startswith("2:-0.75:0.25 |")
        assert "load:0.5" in line
        assert "weight:2" in line

    def test_roundtrip(self):
        original = make_interaction()
        restored = vw_to_interaction(interaction_to_vw(original))
        assert restored.action == original.action
        assert restored.reward == pytest.approx(original.reward)
        assert restored.propensity == pytest.approx(original.propensity)
        assert restored.context == pytest.approx(original.context)

    def test_negative_reward_roundtrip(self):
        original = make_interaction(reward=-1.5)
        restored = vw_to_interaction(interaction_to_vw(original))
        assert restored.reward == pytest.approx(-1.5)

    def test_unrepresentable_feature_name_rejected(self):
        bad = make_interaction(context={"has space": 1.0})
        with pytest.raises(ValueError):
            interaction_to_vw(bad)
        bad = make_interaction(context={"has:colon": 1.0})
        with pytest.raises(ValueError):
            interaction_to_vw(bad)


class TestParsing:
    def test_implicit_feature_value_is_one(self):
        interaction = vw_to_interaction("1:0.5:0.5 | hot cold:2")
        assert interaction.context == {"hot": 1.0, "cold": 2.0}

    def test_malformed_lines_return_none(self):
        assert vw_to_interaction("") is None
        assert vw_to_interaction("no pipe here") is None
        assert vw_to_interaction("1:0.5 | x:1") is None  # missing prob
        assert vw_to_interaction("a:b:c | x:1") is None
        assert vw_to_interaction("1:0.5:0.0 | x:1") is None  # prob 0
        assert vw_to_interaction("0:0.5:0.5 | x:1") is None  # action < 1
        assert vw_to_interaction("1:0.5:0.5 | x:NaNish") is None

    def test_timestamp_passthrough(self):
        interaction = vw_to_interaction("1:0:1 | x:1", timestamp=9.0)
        assert interaction.timestamp == 9.0


class TestFileIO:
    def _dataset(self, n=20):
        ds = Dataset(action_space=ActionSpace(3))
        for t in range(n):
            ds.append(
                Interaction(
                    {"f": float(t)}, t % 3, reward=t / n, propensity=1 / 3,
                    timestamp=float(t),
                )
            )
        return ds

    def test_save_load_roundtrip_path(self, tmp_path):
        ds = self._dataset()
        path = str(tmp_path / "data.vw")
        assert save_vw(ds, path) == 20
        restored = load_vw(path, action_space=ds.action_space)
        assert len(restored) == 20
        assert restored[7].action == ds[7].action
        assert restored[7].reward == pytest.approx(ds[7].reward)

    def test_save_load_roundtrip_stream(self):
        ds = self._dataset(5)
        buffer = io.StringIO()
        save_vw(ds, buffer)
        buffer.seek(0)
        restored = load_vw(buffer)
        assert len(restored) == 5

    def test_load_skips_garbage(self):
        text = "1:0.5:0.5 | x:1\ncorrupt\n2:0.1:0.5 | y:2\n"
        restored = load_vw(io.StringIO(text))
        assert len(restored) == 2

    def test_loaded_timestamps_are_line_numbers(self):
        text = "1:0.5:0.5 | x:1\n1:0.5:0.5 | x:1\n"
        restored = load_vw(io.StringIO(text))
        assert [i.timestamp for i in restored] == [0.0, 1.0]

    def test_ips_identical_after_roundtrip(self):
        """The estimators see exactly the same data after a VW trip."""
        from repro.core import ConstantPolicy, IPSEstimator

        ds = self._dataset(30)
        buffer = io.StringIO()
        save_vw(ds, buffer)
        buffer.seek(0)
        restored = load_vw(buffer, action_space=ds.action_space)
        ips = IPSEstimator()
        assert ips.estimate(ConstantPolicy(1), restored).value == (
            pytest.approx(ips.estimate(ConstantPolicy(1), ds).value)
        )
