"""Unit tests for the A/B testing simulator."""

import numpy as np
import pytest

from repro.core.ab_testing import ABTest, ABTestReport, ArmResult
from repro.core.policies import ConstantPolicy


def make_environment(means):
    """An environment whose reward depends only on the arm's constant
    action (policies here are ConstantPolicy)."""

    def environment(policy, n, rng):
        action = policy.action({}, list(range(len(means))))
        return rng.normal(means[action], 0.1, size=n)

    return environment


class TestABTest:
    def test_splits_traffic_evenly(self):
        test = ABTest(make_environment([0.5, 0.5]))
        report = test.run([ConstantPolicy(0), ConstantPolicy(1)], 1000)
        assert all(arm.n == 500 for arm in report.arms)
        assert report.total_traffic == 1000

    def test_identifies_best_arm(self):
        test = ABTest(make_environment([0.3, 0.7, 0.5]))
        report = test.run([ConstantPolicy(a) for a in range(3)], 3000)
        assert report.best().policy_name == "constant[1]"

    def test_best_minimize(self):
        test = ABTest(make_environment([0.3, 0.7]))
        report = test.run([ConstantPolicy(0), ConstantPolicy(1)], 2000)
        assert report.best(maximize=False).policy_name == "constant[0]"

    def test_significance_detected_for_large_gap(self):
        test = ABTest(make_environment([0.2, 0.8]))
        report = test.run([ConstantPolicy(0), ConstantPolicy(1)], 400)
        assert report.significant(0, 1)

    def test_no_significance_for_equal_arms(self):
        test = ABTest(make_environment([0.5, 0.5]), seed=3)
        report = test.run([ConstantPolicy(0), ConstantPolicy(1)], 400)
        assert not report.significant(0, 1)

    def test_more_arms_less_precision(self):
        """With fixed total traffic, more concurrent arms widen each
        arm's error bar — the Fig. 1 phenomenon."""
        few = ABTest(make_environment([0.5] * 2)).run(
            [ConstantPolicy(a) for a in range(2)], 1000
        )
        many = ABTest(make_environment([0.5] * 10)).run(
            [ConstantPolicy(a) for a in range(10)], 1000
        )
        assert many.arms[0].std_error > few.arms[0].std_error

    def test_means_are_accurate(self):
        test = ABTest(make_environment([0.25, 0.75]))
        report = test.run([ConstantPolicy(0), ConstantPolicy(1)], 20000)
        assert report.arms[0].mean == pytest.approx(0.25, abs=0.01)
        assert report.arms[1].mean == pytest.approx(0.75, abs=0.01)

    def test_deterministic_given_seed(self):
        env = make_environment([0.4, 0.6])
        a = ABTest(env, seed=5).run([ConstantPolicy(0)], 100)
        b = ABTest(env, seed=5).run([ConstantPolicy(0)], 100)
        assert a.arms[0].mean == b.arms[0].mean

    def test_no_arms_raises(self):
        with pytest.raises(ValueError):
            ABTest(make_environment([0.5])).run([], 100)

    def test_insufficient_traffic_raises(self):
        with pytest.raises(ValueError):
            ABTest(make_environment([0.5, 0.5])).run(
                [ConstantPolicy(0), ConstantPolicy(1)], 1
            )

    def test_wrong_reward_count_rejected(self):
        def bad_env(policy, n, rng):
            return np.zeros(n + 1)

        with pytest.raises(ValueError):
            ABTest(bad_env).run([ConstantPolicy(0)], 10)


class TestArmResult:
    def test_confidence_interval(self):
        arm = ArmResult("x", n=100, mean=0.5, std_error=0.05)
        lo, hi = arm.confidence_interval()
        assert lo == pytest.approx(0.5 - 1.96 * 0.05)
        assert hi == pytest.approx(0.5 + 1.96 * 0.05)

    def test_significance_with_zero_se(self):
        report = ABTestReport(
            total_traffic=2,
            arms=[
                ArmResult("a", 1, 0.5, 0.0),
                ArmResult("b", 1, 0.6, 0.0),
            ],
        )
        assert report.significant(0, 1)
