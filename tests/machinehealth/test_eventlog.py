"""Unit tests for the machine-health incident log."""

import pytest

from repro.machinehealth.eventlog import (
    dataset_from_incident_log,
    format_incident_line,
    parse_incident_line,
    read_incident_log,
    write_incident_log,
)
from repro.machinehealth.failures import (
    WAIT_TIMES,
    DowntimeModel,
    generate_failures,
)
from repro.machinehealth.fleet import FleetConfig, generate_fleet
from repro.simsys.random_source import RandomSource


def make_events(n=20, seed=0):
    fleet = generate_fleet(FleetConfig(n_machines=10), RandomSource(seed))
    return generate_failures(fleet, n, RandomSource(seed + 1))


class TestIncidentLines:
    def test_roundtrip_with_profile(self):
        [event] = make_events(1)
        line = format_incident_line(3.0, event, wait_minutes=10)
        record = parse_incident_line(line)
        assert record is not None
        assert record.time == 3.0
        assert record.machine_id == event.machine.machine_id
        assert record.hardware_sku == event.machine.hardware_sku
        assert record.failure_kind == event.failure_kind
        assert record.wait_minutes == 10
        assert record.downtime == pytest.approx(event.downtime(10), abs=1e-3)
        assert len(record.profile) == len(WAIT_TIMES)
        for logged, truth in zip(record.profile, event.downtime_profile()):
            assert logged == pytest.approx(truth, abs=1e-3)

    def test_roundtrip_without_profile(self):
        [event] = make_events(1)
        line = format_incident_line(0.0, event, 5, include_profile=False)
        record = parse_incident_line(line)
        assert record.profile is None
        assert record.wait_minutes == 5

    def test_invalid_wait_rejected(self):
        [event] = make_events(1)
        with pytest.raises(ValueError):
            format_incident_line(0.0, event, wait_minutes=99)

    def test_malformed_lines_return_none(self):
        assert parse_incident_line("") is None
        assert parse_incident_line("0.0 NOT-AN-INCIDENT") is None
        [event] = make_events(1)
        line = format_incident_line(0.0, event, 10)
        assert parse_incident_line(line[:40]) is None

    def test_wrong_profile_length_rejected(self):
        [event] = make_events(1)
        line = format_incident_line(0.0, event, 10)
        broken = line.rsplit(",", 1)[0]  # drop last profile entry
        assert parse_incident_line(broken) is None


class TestLogFileFlow:
    def test_write_read_roundtrip(self, tmp_path):
        events = make_events(25)
        path = str(tmp_path / "incidents.log")
        write_incident_log(events, path)
        records = read_incident_log(path)
        assert len(records) == 25
        assert all(r.wait_minutes == 10 for r in records)

    def test_dataset_from_log_matches_direct_construction(self, tmp_path):
        """Scavenging the text log yields the same full-feedback shape
        as building the dataset in memory."""
        events = make_events(40)
        path = str(tmp_path / "incidents.log")
        write_incident_log(events, path)
        dataset = dataset_from_incident_log(read_incident_log(path))
        assert len(dataset) == 40
        for interaction, event in zip(dataset, events):
            assert interaction.action == len(WAIT_TIMES) - 1
            assert interaction.propensity == 1.0
            assert len(interaction.full_rewards) == len(WAIT_TIMES)
            assert interaction.reward == pytest.approx(
                min(event.downtime(10), 600.0), abs=1e-3
            )

    def test_dataset_usable_by_learners(self, tmp_path):
        import numpy as np

        from repro.core import SupervisedTrainer
        from repro.machinehealth import ground_truth_value, simulate_exploration

        events = make_events(200, seed=5)
        path = str(tmp_path / "incidents.log")
        write_incident_log(events, path)
        dataset = dataset_from_incident_log(read_incident_log(path))
        exploration = simulate_exploration(dataset, np.random.default_rng(0))
        assert len(exploration) == 200
        trainer = SupervisedTrainer(10, maximize=False).fit(dataset)
        assert ground_truth_value(trainer.policy(), dataset) > 0

    def test_profile_required_for_full_feedback(self, tmp_path):
        events = make_events(5)
        path = str(tmp_path / "incidents.log")
        write_incident_log(events, path, include_profile=False)
        with pytest.raises(ValueError):
            dataset_from_incident_log(read_incident_log(path))

    def test_empty_records_rejected(self):
        with pytest.raises(ValueError):
            dataset_from_incident_log([])
