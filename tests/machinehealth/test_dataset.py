"""Unit tests for the machine-health datasets (Figs. 3–4 substrate)."""

import numpy as np
import pytest

from repro.core import ConstantPolicy, IPSEstimator, UniformRandomPolicy
from repro.machinehealth.dataset import (
    DEFAULT_ACTION,
    MachineHealthDataset,
    build_full_feedback_dataset,
    default_policy_reward,
    ground_truth_value,
    simulate_exploration,
)
from repro.core.types import Dataset, Interaction, ActionSpace


@pytest.fixture(scope="module")
def scenario() -> MachineHealthDataset:
    return build_full_feedback_dataset(n_events=2000, n_machines=300, seed=5)


class TestFullFeedbackDataset:
    def test_structure(self, scenario):
        assert len(scenario.full) == 2000
        assert scenario.n_actions == 10
        for interaction in scenario.full:
            assert interaction.action == DEFAULT_ACTION
            assert interaction.propensity == 1.0
            assert len(interaction.full_rewards) == 10
            assert interaction.reward == interaction.full_rewards[DEFAULT_ACTION]

    def test_rewards_are_capped_downtimes(self, scenario):
        for interaction in scenario.full:
            for downtime in interaction.full_rewards:
                assert 0.0 <= downtime <= 600.0

    def test_reward_range_minimizes(self, scenario):
        assert scenario.full.reward_range.maximize is False

    def test_contexts_are_numeric(self, scenario):
        context = scenario.full[0].context
        assert all(isinstance(v, float) for v in context.values())
        assert any(k.startswith("hardware_sku=") for k in context)
        assert any(k.startswith("failure_kind=") for k in context)

    def test_deterministic(self):
        a = build_full_feedback_dataset(n_events=100, n_machines=50, seed=9)
        b = build_full_feedback_dataset(n_events=100, n_machines=50, seed=9)
        assert [i.reward for i in a.full] == [i.reward for i in b.full]

    def test_split(self, scenario):
        train, test = scenario.split(0.5)
        assert len(train) == len(test) == 1000

    def test_waiting_less_is_better_on_average(self, scenario):
        """The learnable signal: the default max-wait policy is
        suboptimal (waiting pointlessly on dead machines)."""
        wait_1 = ground_truth_value(ConstantPolicy(0), scenario.full)
        wait_10 = default_policy_reward(scenario.full)
        assert wait_1 < wait_10


class TestSimulateExploration:
    def test_reveals_only_chosen_action(self, scenario, rng):
        exploration = simulate_exploration(scenario.full, rng)
        assert len(exploration) == len(scenario.full)
        for original, explored in zip(scenario.full, exploration):
            assert explored.full_rewards is None
            assert explored.reward == original.full_rewards[explored.action]
            assert explored.propensity == pytest.approx(0.1)

    def test_uniform_coverage(self, scenario, rng):
        exploration = simulate_exploration(scenario.full, rng)
        counts = np.bincount(exploration.actions(), minlength=10)
        assert counts.min() > 0.5 * counts.max()

    def test_custom_logging_policy(self, scenario, rng):
        exploration = simulate_exploration(
            scenario.full, rng, logging_policy=ConstantPolicy(3)
        )
        assert set(exploration.actions()) == {3}
        assert exploration[0].propensity == 1.0

    def test_requires_full_feedback(self, rng):
        partial = Dataset(action_space=ActionSpace(2))
        partial.append(Interaction({}, 0, 0.5, 1.0))
        with pytest.raises(ValueError):
            simulate_exploration(partial, rng)

    def test_empty_raises(self, rng):
        with pytest.raises(ValueError):
            simulate_exploration(Dataset(), rng)


class TestGroundTruth:
    def test_constant_policy_lookup(self, scenario):
        value = ground_truth_value(ConstantPolicy(2), scenario.full)
        manual = np.mean([i.full_rewards[2] for i in scenario.full])
        assert value == pytest.approx(float(manual))

    def test_default_policy_reward(self, scenario):
        assert default_policy_reward(scenario.full) == pytest.approx(
            ground_truth_value(ConstantPolicy(DEFAULT_ACTION), scenario.full)
        )

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ground_truth_value(ConstantPolicy(0), Dataset())
        with pytest.raises(ValueError):
            default_policy_reward(Dataset())


class TestIPSAgreesWithGroundTruth:
    def test_ips_estimate_close_to_truth(self, scenario, rng):
        """The Fig. 3 mechanism in miniature: IPS on simulated
        exploration approximates the full-feedback ground truth."""
        exploration = simulate_exploration(scenario.full, rng)
        for action in (0, 4, 9):
            policy = ConstantPolicy(action)
            estimate = IPSEstimator().estimate(policy, exploration)
            truth = ground_truth_value(policy, scenario.full)
            assert estimate.value == pytest.approx(truth, rel=0.25)
