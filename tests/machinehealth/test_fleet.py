"""Unit tests for fleet generation."""

import pytest

from repro.machinehealth.fleet import (
    FAILURE_KINDS,
    HARDWARE_SKUS,
    OS_VERSIONS,
    FleetConfig,
    Machine,
    generate_fleet,
)
from repro.simsys.random_source import RandomSource


class TestGenerateFleet:
    def test_count_and_ids(self):
        fleet = generate_fleet(FleetConfig(n_machines=100), RandomSource(0))
        assert len(fleet) == 100
        assert [m.machine_id for m in fleet] == list(range(100))

    def test_feature_ranges(self):
        config = FleetConfig(n_machines=500, max_age_years=6.0, max_vms=20,
                             max_prior_failures=8)
        fleet = generate_fleet(config, RandomSource(1))
        for machine in fleet:
            assert machine.hardware_sku in HARDWARE_SKUS
            assert machine.os_version in OS_VERSIONS
            assert 0.0 <= machine.age_years <= 6.0
            assert 1 <= machine.n_vms <= 20
            assert 0 <= machine.prior_failures <= 8

    def test_deterministic(self):
        a = generate_fleet(FleetConfig(n_machines=50), RandomSource(7))
        b = generate_fleet(FleetConfig(n_machines=50), RandomSource(7))
        assert a == b

    def test_diversity(self):
        fleet = generate_fleet(FleetConfig(n_machines=500), RandomSource(2))
        assert len({m.hardware_sku for m in fleet}) == len(HARDWARE_SKUS)
        assert len({m.os_version for m in fleet}) == len(OS_VERSIONS)

    def test_older_skus_are_older_on_average(self):
        fleet = generate_fleet(FleetConfig(n_machines=3000), RandomSource(3))
        gen4 = [m.age_years for m in fleet if m.hardware_sku == "gen4-compute"]
        gen6 = [m.age_years for m in fleet if m.hardware_sku == "gen6-compute"]
        assert sum(gen4) / len(gen4) > sum(gen6) / len(gen6)

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            generate_fleet(FleetConfig(n_machines=0), RandomSource(0))

    def test_context_record(self):
        machine = Machine(3, "gen5-compute", "os-2016", 2.5, 10, 1)
        record = machine.context_record()
        assert record["machine_id"] == 3
        assert record["hardware_sku"] == "gen5-compute"
        assert record["n_vms"] == 10

    def test_failure_kinds_constant(self):
        assert set(FAILURE_KINDS) == {"network", "disk", "kernel", "firmware"}
