"""Unit tests for the failure/downtime model."""

import math

import pytest

from repro.machinehealth.failures import (
    NEVER,
    WAIT_TIMES,
    DowntimeModel,
    FailureEvent,
    generate_failures,
)
from repro.machinehealth.fleet import FleetConfig, Machine, generate_fleet
from repro.simsys.random_source import RandomSource


def make_machine(age=1.0, failures=0, sku="gen5-compute", vms=4):
    return Machine(0, sku, "os-2016", age, vms, failures)


class TestDowntimeLaw:
    def test_recovery_before_wait_means_recovery_downtime(self):
        event = FailureEvent(make_machine(vms=2), "network",
                             recovery_minutes=3.0, reboot_minutes=8.0)
        # Wait 5 >= recovery 3 -> downtime = 3 minutes * 2 VMs.
        assert event.downtime(5.0) == pytest.approx(6.0)

    def test_recovery_after_wait_means_wait_plus_reboot(self):
        event = FailureEvent(make_machine(vms=2), "network",
                             recovery_minutes=9.0, reboot_minutes=8.0)
        # Wait 5 < recovery 9 -> downtime = (5 + 8) * 2.
        assert event.downtime(5.0) == pytest.approx(26.0)

    def test_never_recovering_machine(self):
        event = FailureEvent(make_machine(vms=1), "kernel",
                             recovery_minutes=NEVER, reboot_minutes=6.0)
        assert event.downtime(2.0) == pytest.approx(8.0)
        # Waiting longer only hurts.
        assert event.downtime(9.0) > event.downtime(2.0)

    def test_profile_covers_all_wait_times(self):
        event = FailureEvent(make_machine(), "disk",
                             recovery_minutes=4.5, reboot_minutes=7.0)
        profile = event.downtime_profile()
        assert len(profile) == len(WAIT_TIMES)
        # Waits beyond recovery all give the same downtime.
        assert profile[5] == profile[9]

    def test_profile_shape_for_fast_recovery(self):
        """If recovery is at 2.5 min, waiting >= 3 is optimal."""
        event = FailureEvent(make_machine(vms=1), "network",
                             recovery_minutes=2.5, reboot_minutes=8.0)
        profile = event.downtime_profile()
        best = min(range(len(profile)), key=lambda i: profile[i])
        assert WAIT_TIMES[best] == 3

    def test_invalid_wait(self):
        event = FailureEvent(make_machine(), "disk", 1.0, 5.0)
        with pytest.raises(ValueError):
            event.downtime(0.0)

    def test_context_record_includes_failure_kind(self):
        event = FailureEvent(make_machine(), "firmware", 1.0, 5.0)
        assert event.context_record()["failure_kind"] == "firmware"


class TestDowntimeModel:
    def test_transient_kinds_recover_more(self):
        model = DowntimeModel()
        machine = make_machine()
        assert model.recovery_probability(machine, "network") > (
            model.recovery_probability(machine, "kernel")
        )

    def test_age_reduces_recovery(self):
        model = DowntimeModel()
        young = model.recovery_probability(make_machine(age=0.5), "network")
        old = model.recovery_probability(make_machine(age=6.0), "network")
        assert young > old

    def test_failure_history_reduces_recovery(self):
        model = DowntimeModel()
        clean = model.recovery_probability(make_machine(failures=0), "disk")
        flaky = model.recovery_probability(make_machine(failures=8), "disk")
        assert clean > flaky

    def test_probability_bounds(self):
        model = DowntimeModel()
        machine = make_machine(age=50.0, failures=100)
        for kind in ("network", "disk", "kernel", "firmware"):
            p = model.recovery_probability(machine, kind)
            assert 0.0 < p < 1.0

    def test_newer_hardware_reboots_faster(self):
        model = DowntimeModel()
        rng = RandomSource(0)
        old_boots = [
            model.reboot_minutes(make_machine(sku="gen4-compute"), rng)
            for _ in range(200)
        ]
        new_boots = [
            model.reboot_minutes(make_machine(sku="gen6-compute"), rng)
            for _ in range(200)
        ]
        assert sum(new_boots) / 200 < sum(old_boots) / 200

    def test_kind_probabilities_sum_to_one(self):
        probs = DowntimeModel().failure_kind_probabilities(make_machine())
        assert sum(probs) == pytest.approx(1.0)

    def test_sample_event_fields(self):
        event = DowntimeModel().sample_event(make_machine(), RandomSource(1))
        assert event.failure_kind in ("network", "disk", "kernel", "firmware")
        assert event.reboot_minutes >= 2.0
        assert event.recovery_minutes > 0


class TestGenerateFailures:
    def test_count(self):
        fleet = generate_fleet(FleetConfig(n_machines=50), RandomSource(0))
        events = generate_failures(fleet, 200, RandomSource(1))
        assert len(events) == 200

    def test_failure_prone_machines_fail_more(self):
        reliable = make_machine(age=0.1, failures=0)
        flaky = Machine(1, "gen4-compute", "os-2012r2", 6.0, 4, 8)
        events = generate_failures([reliable, flaky], 2000, RandomSource(2))
        flaky_count = sum(1 for e in events if e.machine.machine_id == 1)
        assert flaky_count > 1200

    def test_deterministic(self):
        fleet = generate_fleet(FleetConfig(n_machines=20), RandomSource(0))
        a = generate_failures(fleet, 50, RandomSource(5))
        b = generate_failures(fleet, 50, RandomSource(5))
        assert [e.recovery_minutes for e in a] == [
            e.recovery_minutes for e in b
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_failures([], 10, RandomSource(0))
        with pytest.raises(ValueError):
            generate_failures([make_machine()], 0, RandomSource(0))
