"""Unit tests for the hierarchical Front Door simulation."""

import pytest

from repro.core import IPSEstimator, UniformRandomPolicy
from repro.loadbalance.frontdoor import Cluster, FrontDoorSim
from repro.loadbalance.policies import least_loaded_policy, send_to_policy
from repro.loadbalance.server import ServerConfig
from repro.loadbalance.workload import Workload
from repro.simsys.random_source import RandomSource


def make_clusters(n_clusters=3, servers_per=4):
    clusters = []
    for c in range(n_clusters):
        configs = [
            ServerConfig(s, 0.1 + 0.05 * c, 0.02) for s in range(servers_per)
        ]
        clusters.append(
            Cluster(f"cluster-{c}", configs, UniformRandomPolicy())
        )
    return clusters


def run_frontdoor(n=3000, seed=0, **kwargs):
    workload = Workload(20.0, randomness=RandomSource(seed, _name="wl"))
    sim = FrontDoorSim(
        make_clusters(), UniformRandomPolicy(), workload, seed=seed, **kwargs
    )
    return sim.run(n)


class TestFrontDoor:
    def test_every_request_logged_at_both_levels(self):
        result = run_frontdoor(1000)
        assert len(result.edge_dataset) == 1000
        assert sum(len(d) for d in result.cluster_datasets.values()) == 1000

    def test_edge_propensity_is_one_over_clusters(self):
        result = run_frontdoor(500)
        assert result.edge_min_propensity == pytest.approx(1 / 3)

    def test_cluster_propensity_is_one_over_servers(self):
        result = run_frontdoor(500)
        for dataset in result.cluster_datasets.values():
            assert dataset.min_propensity() == pytest.approx(1 / 4)

    def test_edge_context_sees_aggregate_load_only(self):
        result = run_frontdoor(200)
        context = result.edge_dataset[50].context
        assert "cluster_conns_0" in context
        assert not any(k.startswith("conns_") for k in context)

    def test_cluster_context_sees_local_servers(self):
        result = run_frontdoor(200)
        dataset = result.cluster_datasets["cluster-0"]
        context = dataset[10].context
        assert set(k for k in context if k.startswith("conns_")) == {
            f"conns_{s}" for s in range(4)
        }

    def test_edge_level_evaluation_prefers_fast_cluster(self):
        """Cluster 0 has the lowest base latency; offline evaluation on
        the edge dataset should reflect that."""
        result = run_frontdoor(6000)
        ips = IPSEstimator()
        fast = ips.estimate(send_to_policy(0), result.edge_dataset).value
        slow = ips.estimate(send_to_policy(2), result.edge_dataset).value
        assert fast < slow

    def test_rewards_shared_across_levels(self):
        """Each level logs the same latency for the same request."""
        result = run_frontdoor(300)
        edge_rewards = sorted(i.reward for i in result.edge_dataset)
        local_rewards = sorted(
            i.reward
            for dataset in result.cluster_datasets.values()
            for i in dataset
        )
        assert edge_rewards == pytest.approx(local_rewards)

    def test_deterministic_given_seed(self):
        a = run_frontdoor(500, seed=3)
        b = run_frontdoor(500, seed=3)
        assert a.mean_latency == b.mean_latency

    def test_least_loaded_local_policy_works(self):
        workload = Workload(20.0, randomness=RandomSource(1, _name="wl"))
        clusters = [
            Cluster(
                f"c{c}",
                [ServerConfig(s, 0.1, 0.02) for s in range(4)],
                least_loaded_policy(),
            )
            for c in range(2)
        ]
        sim = FrontDoorSim(clusters, UniformRandomPolicy(), workload, seed=1)
        result = sim.run(2000)
        # Deterministic local policy logs propensity 1.
        for dataset in result.cluster_datasets.values():
            assert dataset.min_propensity() == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FrontDoorSim([], UniformRandomPolicy(), Workload(1.0))
        with pytest.raises(ValueError):
            Cluster("empty", [], UniformRandomPolicy())
        with pytest.raises(ValueError):
            run_frontdoor(0)
