"""Unit tests for the backend server model (Fig. 5 latency law)."""

import pytest

from repro.loadbalance.server import BackendServer, ServerConfig


def make_server(base=0.2, slope=0.05, **kwargs):
    return BackendServer(ServerConfig(0, base, slope, **kwargs))


class TestServerConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServerConfig(0, base_latency=0.0, latency_per_connection=0.1)
        with pytest.raises(ValueError):
            ServerConfig(0, base_latency=0.1, latency_per_connection=-0.1)
        with pytest.raises(ValueError):
            ServerConfig(0, 0.1, 0.1, type_multipliers={"api": 0.0})

    def test_multiplier_for_defaults_to_one(self):
        config = ServerConfig(0, 0.1, 0.1, type_multipliers={"api": 0.5})
        assert config.multiplier_for("api") == 0.5
        assert config.multiplier_for("static") == 1.0


class TestLatencyLaw:
    def test_latency_linear_in_connections(self):
        server = make_server(base=0.2, slope=0.05)
        assert server.service_latency() == pytest.approx(0.2)
        server.connect()
        server.connect()
        assert server.service_latency() == pytest.approx(0.3)

    def test_fig5_additive_constant(self):
        """Server 2 slower than server 1 by an additive constant, at
        every load level."""
        fast = make_server(base=0.2, slope=0.05)
        slow = make_server(base=0.34, slope=0.05)
        for conns in range(5):
            assert slow.service_latency() - fast.service_latency() == (
                pytest.approx(0.14)
            )
            fast.connect()
            slow.connect()

    def test_weight_scales_latency(self):
        server = make_server(base=0.2, slope=0.05)
        server.connect()
        assert server.service_latency(request_weight=2.0) == pytest.approx(0.5)

    def test_type_multiplier_applies(self):
        server = BackendServer(
            ServerConfig(0, 0.2, 0.0, type_multipliers={"api": 0.5})
        )
        assert server.service_latency(kind="api") == pytest.approx(0.1)
        assert server.service_latency(kind="static") == pytest.approx(0.2)

    def test_fault_multiplier_applies(self):
        server = make_server(base=0.2, slope=0.0)
        server.fault_multiplier = 4.0
        assert server.service_latency() == pytest.approx(0.8)

    def test_invalid_weight(self):
        with pytest.raises(ValueError):
            make_server().service_latency(request_weight=0.0)


class TestConnectionTracking:
    def test_connect_disconnect_cycle(self):
        server = make_server()
        server.connect()
        server.connect()
        assert server.open_connections == 2
        server.disconnect(busy_time=0.5)
        assert server.open_connections == 1
        assert server.completed_requests == 1
        assert server.total_busy_time == pytest.approx(0.5)

    def test_disconnect_without_connection_raises(self):
        with pytest.raises(RuntimeError):
            make_server().disconnect(0.1)

    def test_reset_clears_everything(self):
        server = make_server()
        server.connect()
        server.fault_multiplier = 9.0
        server.reset()
        assert server.open_connections == 0
        assert server.completed_requests == 0
        assert server.fault_multiplier == 1.0
