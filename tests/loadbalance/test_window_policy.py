"""Unit tests for the window-randomized weights policy (§5)."""

import itertools

import numpy as np
import pytest

from repro.loadbalance.policies import window_randomized_weights_policy


class TestWindowRandomizedWeights:
    def test_weights_fixed_within_window(self, rng):
        policy = window_randomized_weights_policy(2, window=10, seed=0)
        propensities = []
        for _ in range(10):
            _, p = policy.act({}, [0, 1], rng)
            probs = policy.distribution({}, [0, 1])
            propensities.append(tuple(np.round(probs, 12)))
        assert len(set(propensities)) == 1  # one draw for the window

    def test_weights_change_across_windows(self, rng):
        policy = window_randomized_weights_policy(2, window=5, seed=1)
        seen = set()
        for _ in range(50):
            policy.act({}, [0, 1], rng)
            seen.add(round(float(policy.distribution({}, [0, 1])[0]), 10))
        assert len(seen) >= 5  # many distinct windows

    def test_propensity_matches_drawn_weight(self, rng):
        policy = window_randomized_weights_policy(3, window=4, seed=2)
        for _ in range(40):
            action, p = policy.act({}, [0, 1, 2], rng)
            probs = policy.distribution({}, [0, 1, 2])
            assert p == pytest.approx(float(probs[action]))

    def test_propensities_strictly_positive(self, rng):
        policy = window_randomized_weights_policy(
            2, window=3, seed=3, concentration=0.05
        )
        for _ in range(200):
            _, p = policy.act({}, [0, 1], rng)
            assert p > 0

    def test_long_runs_occur(self, rng):
        """The §5 payoff: skewed windows produce long same-server runs
        that per-request uniform randomization essentially never does."""
        policy = window_randomized_weights_policy(
            2, window=40, seed=4, concentration=0.2
        )
        choices = [policy.act({}, [0, 1], rng)[0] for _ in range(4000)]
        longest = max(len(list(g)) for _, g in itertools.groupby(choices))
        assert longest >= 20

    def test_marginal_traffic_roughly_balanced(self, rng):
        """Across many windows the Dirichlet is symmetric, so neither
        server is systematically favored."""
        policy = window_randomized_weights_policy(2, window=10, seed=5)
        choices = [policy.act({}, [0, 1], rng)[0] for _ in range(8000)]
        assert np.mean(choices) == pytest.approx(0.5, abs=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            window_randomized_weights_policy(1)
        with pytest.raises(ValueError):
            window_randomized_weights_policy(2, window=0)
        with pytest.raises(ValueError):
            window_randomized_weights_policy(2, concentration=0.0)
