"""Unit tests for the stale-context mode of the proxy (§5)."""

import numpy as np
import pytest

from repro.loadbalance.policies import least_loaded_policy, random_policy
from repro.loadbalance.proxy import LoadBalancerSim, fig5_servers
from repro.loadbalance.workload import Workload
from repro.simsys.random_source import RandomSource


def make_sim(staleness, policy=None, seed=0):
    workload = Workload(10.0, randomness=RandomSource(seed, _name="wl"))
    return LoadBalancerSim(
        fig5_servers(), policy or random_policy(), workload, seed=seed,
        context_refresh_interval=staleness,
    )


class TestStaleContext:
    def test_fresh_mode_sees_live_counts(self):
        result = make_sim(0.0).run(2000)
        # With fresh context the logged snapshots change constantly.
        snapshots = {e.connections for e in result.access_log}
        assert len(snapshots) > 5

    def test_stale_mode_holds_snapshot_between_refreshes(self):
        import itertools

        stale = make_sim(5.0).run(2000)
        fresh = make_sim(0.0).run(2000)

        def snapshot_runs(result):
            return [
                len(list(group))
                for _, group in itertools.groupby(
                    e.connections for e in result.access_log
                )
            ]

        stale_runs = snapshot_runs(stale)
        fresh_runs = snapshot_runs(fresh)
        # ~10 req/s and a 5 s refresh => ~50 consecutive requests see
        # the same snapshot; fresh mode changes almost every request.
        assert max(stale_runs) > 20
        assert np.mean(stale_runs) > 5 * np.mean(fresh_runs)
        # And far fewer distinct snapshots overall.
        stale_distinct = len({e.connections for e in stale.access_log})
        fresh_distinct = len({e.connections for e in fresh.access_log})
        assert stale_distinct < fresh_distinct / 2

    def test_stale_snapshots_refresh_eventually(self):
        result = make_sim(5.0).run(3000)
        snapshots = {e.connections for e in result.access_log}
        assert len(snapshots) > 3  # the view does update across windows

    def test_staleness_hurts_load_aware_policy(self):
        fresh = make_sim(0.0, least_loaded_policy(), seed=3).run(4000)
        stale = make_sim(16.0, least_loaded_policy(), seed=3).run(4000)
        assert stale.mean_latency > fresh.mean_latency

    def test_staleness_irrelevant_for_load_oblivious_policy(self):
        fresh = make_sim(0.0, random_policy(), seed=4).run(4000)
        stale = make_sim(16.0, random_policy(), seed=4).run(4000)
        assert stale.mean_latency == pytest.approx(
            fresh.mean_latency, rel=0.05
        )

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            make_sim(-1.0)
