"""Unit tests for load-balancing policies."""

import numpy as np
import pytest

from repro.loadbalance.policies import (
    connection_count,
    least_loaded_policy,
    power_of_two_policy,
    random_policy,
    round_robin_policy,
    send_to_policy,
    weighted_random_policy,
)

ACTIONS = [0, 1, 2]


def ctx(*conns):
    return {f"conns_{i}": float(c) for i, c in enumerate(conns)}


class TestConnectionCount:
    def test_reads_slot(self):
        assert connection_count(ctx(3, 7), 1) == 7.0

    def test_missing_defaults_zero(self):
        assert connection_count({}, 5) == 0.0


class TestLeastLoaded:
    def test_picks_min_connections(self):
        policy = least_loaded_policy()
        assert policy.action(ctx(5, 2, 9), ACTIONS) == 1

    def test_tie_breaks_to_lowest_id(self):
        policy = least_loaded_policy()
        assert policy.action(ctx(3, 3, 3), ACTIONS) == 0

    def test_respects_restricted_action_set(self):
        policy = least_loaded_policy()
        assert policy.action(ctx(0, 5, 2), [1, 2]) == 2

    def test_distribution_is_point_mass(self):
        probs = least_loaded_policy().distribution(ctx(1, 0, 2), ACTIONS)
        assert probs.tolist() == [0.0, 1.0, 0.0]


class TestSendTo:
    def test_constant_choice(self):
        assert send_to_policy(1).action(ctx(9, 9, 9), ACTIONS) == 1

    def test_name(self):
        assert send_to_policy(0).name == "send-to-0"


class TestWeightedRandom:
    def test_distribution_proportional_to_weights(self):
        policy = weighted_random_policy([3.0, 1.0])
        np.testing.assert_allclose(
            policy.distribution({}, [0, 1]), [0.75, 0.25]
        )

    def test_restricted_actions_renormalize(self):
        policy = weighted_random_policy([3.0, 1.0, 4.0])
        np.testing.assert_allclose(
            policy.distribution({}, [0, 2]), [3 / 7, 4 / 7]
        )

    def test_zero_weight_subset_falls_back_to_uniform(self):
        policy = weighted_random_policy([0.0, 0.0, 1.0])
        np.testing.assert_allclose(policy.distribution({}, [0, 1]), [0.5, 0.5])

    def test_validation(self):
        with pytest.raises(ValueError):
            weighted_random_policy([-1.0, 1.0])
        with pytest.raises(ValueError):
            weighted_random_policy([0.0, 0.0])

    def test_empirical_act_matches_weights(self, rng):
        policy = weighted_random_policy([4.0, 1.0])
        draws = [policy.act({}, [0, 1], rng)[0] for _ in range(5000)]
        assert np.mean(draws) == pytest.approx(0.2, abs=0.02)


class TestRoundRobin:
    def test_cycles_in_order(self, rng):
        policy = round_robin_policy(3)
        picks = [policy.act({}, ACTIONS, rng)[0] for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_marginal_propensity_uniform(self, rng):
        policy = round_robin_policy(3)
        _, p = policy.act({}, ACTIONS, rng)
        assert p == pytest.approx(1 / 3)

    def test_distribution_is_uniform_marginal(self):
        np.testing.assert_allclose(
            round_robin_policy(2).distribution({}, [0, 1]), [0.5, 0.5]
        )


class TestPowerOfTwo:
    def test_prefers_less_loaded(self):
        policy = power_of_two_policy()
        probs = policy.distribution(ctx(0, 10), [0, 1])
        # Two servers: both pairs pick the less loaded one.
        np.testing.assert_allclose(probs, [1.0, 0.0])

    def test_three_server_propensities(self):
        policy = power_of_two_policy()
        probs = policy.distribution(ctx(0, 1, 2), ACTIONS)
        # 6 ordered pairs; least-loaded of each: (0,1)->0 (0,2)->0
        # (1,0)->0 (1,2)->1 (2,0)->0 (2,1)->1 => 4/6, 2/6, 0
        np.testing.assert_allclose(probs, [4 / 6, 2 / 6, 0.0])
        assert probs.sum() == pytest.approx(1.0)

    def test_ties_split_by_id(self):
        policy = power_of_two_policy()
        probs = policy.distribution(ctx(1, 1), [0, 1])
        np.testing.assert_allclose(probs, [1.0, 0.0])  # tie -> lower id

    def test_single_action(self):
        probs = power_of_two_policy().distribution(ctx(5), [0])
        assert probs.tolist() == [1.0]

    def test_empirical_act_matches_distribution(self, rng):
        policy = power_of_two_policy()
        context = ctx(0, 1, 2)
        draws = [policy.act(context, ACTIONS, rng)[0] for _ in range(6000)]
        freqs = np.bincount(draws, minlength=3) / len(draws)
        np.testing.assert_allclose(
            freqs, policy.distribution(context, ACTIONS), atol=0.03
        )

    def test_random_policy_is_uniform(self):
        probs = random_policy().distribution(ctx(0, 9), [0, 1])
        np.testing.assert_allclose(probs, [0.5, 0.5])
