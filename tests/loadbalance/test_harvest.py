"""Unit tests for load-balancer log harvesting."""

import numpy as np
import pytest

from repro.core import IPSEstimator, UniformRandomPolicy
from repro.core.policies import ConstantPolicy
from repro.loadbalance.access_log import AccessLogEntry
from repro.loadbalance.harvest import (
    access_log_scavenger,
    build_lb_pipeline,
    dataset_from_access_log,
    exploration_dataset_from_entries,
    train_cb_policy,
)
from repro.loadbalance.policies import random_policy, send_to_policy
from repro.loadbalance.proxy import LoadBalancerSim, fig5_servers
from repro.loadbalance.workload import Workload
from repro.core.propensity import DeclaredPropensityModel
from repro.simsys.random_source import RandomSource


def collect_log(n=3000, seed=42):
    workload = Workload(10.0, randomness=RandomSource(seed, _name="wl"))
    sim = LoadBalancerSim(fig5_servers(), random_policy(), workload, seed=seed)
    return sim.run(n).access_log


class TestExplorationDataset:
    def test_declared_propensities(self):
        entries = collect_log(500)
        dataset = dataset_from_access_log(
            entries, logging_policy=UniformRandomPolicy()
        )
        assert len(dataset) == 500
        assert dataset.min_propensity() == pytest.approx(0.5)

    def test_empirical_propensities_close_to_half(self):
        entries = collect_log(3000)
        dataset = dataset_from_access_log(entries)  # empirical
        assert dataset.min_propensity() == pytest.approx(0.5, abs=0.03)

    def test_context_carries_conns_and_type(self):
        entries = collect_log(50)
        dataset = dataset_from_access_log(
            entries, logging_policy=UniformRandomPolicy()
        )
        context = dataset[10].context
        assert "conns_0" in context and "conns_1" in context
        assert "req_weight" in context
        assert any(k.startswith("req_") and k != "req_weight" for k in context)

    def test_reward_is_latency(self):
        entries = collect_log(50)
        dataset = dataset_from_access_log(
            entries, logging_policy=UniformRandomPolicy()
        )
        for entry, interaction in zip(entries, dataset):
            assert interaction.reward == pytest.approx(
                entry.upstream_response_time
            )
            assert interaction.action == entry.upstream

    def test_reward_range_is_minimize(self):
        dataset = dataset_from_access_log(
            collect_log(50), logging_policy=UniformRandomPolicy()
        )
        assert dataset.reward_range.maximize is False

    def test_empty_entries_raise(self):
        with pytest.raises(ValueError):
            exploration_dataset_from_entries(
                [], DeclaredPropensityModel(UniformRandomPolicy())
            )


class TestScavengerAndPipeline:
    def test_scavenger_over_dict_records(self):
        entries = collect_log(100)
        records = [vars(e) | {"connections": e.connections} for e in entries]
        scavenger = access_log_scavenger()
        out = scavenger.scavenge(records)
        assert len(out) == 100
        assert out[0].action == entries[0].upstream

    def test_scavenger_drops_missing_fields(self):
        scavenger = access_log_scavenger()
        assert scavenger.scavenge([{"no": "fields"}]) == []
        assert scavenger.dropped == 1

    def test_pipeline_declared(self):
        entries = collect_log(2000)
        pipeline = build_lb_pipeline(2, logging_policy=UniformRandomPolicy())
        records = [vars(e) | {"connections": e.connections} for e in entries]
        dataset = pipeline.build_dataset(records)
        result = pipeline.evaluate(ConstantPolicy(0), dataset)
        assert 0.1 < result.value < 1.0  # sane latency estimate

    def test_pipeline_empirical(self):
        entries = collect_log(2000)
        pipeline = build_lb_pipeline(2, entries_for_empirical=entries)
        records = [vars(e) | {"connections": e.connections} for e in entries]
        dataset = pipeline.build_dataset(records)
        assert dataset.min_propensity() == pytest.approx(0.5, abs=0.05)

    def test_pipeline_requires_a_propensity_source(self):
        with pytest.raises(ValueError):
            build_lb_pipeline(2)

    def test_generic_pipeline_equals_specialized_harvester(self):
        """The generic HarvestPipeline over raw dict records and the
        substrate-specific harvester must produce identical datasets —
        the core is substrate-agnostic."""
        entries = collect_log(800)
        specialized = dataset_from_access_log(
            entries, logging_policy=UniformRandomPolicy()
        )
        pipeline = build_lb_pipeline(2, logging_policy=UniformRandomPolicy())
        records = [vars(e) | {"connections": e.connections} for e in entries]
        generic = pipeline.build_dataset(records)
        assert len(generic) == len(specialized)
        for a, b in zip(generic, specialized):
            assert a.action == b.action
            assert a.reward == pytest.approx(b.reward)
            assert a.propensity == pytest.approx(b.propensity)
            assert a.context == pytest.approx(b.context)


class TestTable2Shape:
    """The qualitative Table 2 claims, at miniature scale."""

    @pytest.fixture(scope="class")
    def dataset(self):
        return dataset_from_access_log(
            collect_log(6000), logging_policy=UniformRandomPolicy()
        )

    def test_random_offline_estimate_is_unbiased(self, dataset):
        # Evaluating the logging policy offline == its online mean.
        offline = IPSEstimator().estimate(random_policy(), dataset).value
        assert offline == pytest.approx(float(dataset.rewards().mean()))

    def test_send_to_one_looks_good_offline(self, dataset):
        """Offline, send-to-1 looks better than random (the illusion)."""
        ips = IPSEstimator()
        send_est = ips.estimate(send_to_policy(0), dataset).value
        random_est = ips.estimate(random_policy(), dataset).value
        assert send_est < random_est

    def test_cb_policy_training(self, dataset):
        policy = train_cb_policy(dataset, n_servers=2, passes=2)
        # The learned policy must be load-sensitive: with server 0
        # heavily loaded it should switch to server 1.
        light = {"conns_0": 0.0, "conns_1": 0.0, "req_dynamic": 1.0,
                 "req_weight": 1.0}
        heavy = {"conns_0": 30.0, "conns_1": 0.0, "req_dynamic": 1.0,
                 "req_weight": 1.0}
        assert policy.action(light, [0, 1]) == 0
        assert policy.action(heavy, [0, 1]) == 1

    def test_train_cb_validation(self, dataset):
        with pytest.raises(ValueError):
            train_cb_policy(dataset, n_servers=2, passes=0)
