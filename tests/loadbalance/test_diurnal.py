"""Unit tests for the diurnal (non-homogeneous Poisson) workload."""

import numpy as np
import pytest

from repro.loadbalance.workload import DiurnalWorkload
from repro.simsys.random_source import RandomSource


class TestDiurnalWorkload:
    def test_rate_oscillates(self):
        wl = DiurnalWorkload(10.0, amplitude=0.5, period=100.0,
                             randomness=RandomSource(0, _name="wl"))
        assert wl.rate_at(25.0) == pytest.approx(15.0)   # peak
        assert wl.rate_at(75.0) == pytest.approx(5.0)    # trough
        assert wl.rate_at(0.0) == pytest.approx(10.0)

    def test_mean_rate_matches_base(self):
        wl = DiurnalWorkload(10.0, amplitude=0.6, period=100.0,
                             randomness=RandomSource(1, _name="wl"))
        requests = list(wl.requests(2000.0))
        assert len(requests) / 2000.0 == pytest.approx(10.0, rel=0.05)

    def test_arrivals_cluster_at_peaks(self):
        wl = DiurnalWorkload(10.0, amplitude=0.9, period=100.0,
                             randomness=RandomSource(2, _name="wl"))
        times = np.array([r.arrival_time for r in wl.requests(5000.0)])
        phase = (times % 100.0)
        peak_half = np.sum((phase > 0.0) & (phase < 50.0))   # sin > 0
        trough_half = len(times) - peak_half
        assert peak_half > 1.5 * trough_half

    def test_arrivals_sorted_with_sequential_ids(self):
        wl = DiurnalWorkload(5.0, randomness=RandomSource(3, _name="wl"))
        requests = list(wl.requests(200.0))
        times = [r.arrival_time for r in requests]
        assert times == sorted(times)
        assert [r.request_id for r in requests] == list(range(len(requests)))

    def test_deterministic(self):
        a = list(DiurnalWorkload(5.0, randomness=RandomSource(4, _name="wl"))
                 .requests(100.0))
        b = list(DiurnalWorkload(5.0, randomness=RandomSource(4, _name="wl"))
                 .requests(100.0))
        assert [r.arrival_time for r in a] == [r.arrival_time for r in b]

    def test_zero_amplitude_is_plain_poisson_rate(self):
        wl = DiurnalWorkload(8.0, amplitude=0.0,
                             randomness=RandomSource(5, _name="wl"))
        requests = list(wl.requests(1000.0))
        assert len(requests) / 1000.0 == pytest.approx(8.0, rel=0.07)

    def test_first_n_inherited(self):
        wl = DiurnalWorkload(10.0, randomness=RandomSource(6, _name="wl"))
        assert len(wl.first_n(300)) == 300

    def test_drives_the_proxy(self):
        from repro.loadbalance import LoadBalancerSim, fig5_servers
        from repro.loadbalance.policies import random_policy

        wl = DiurnalWorkload(10.0, amplitude=0.7, period=200.0,
                             randomness=RandomSource(7, _name="wl"))
        sim = LoadBalancerSim(fig5_servers(), random_policy(), wl, seed=7)
        result = sim.run(2000)
        assert result.n_requests == 2000
        assert result.mean_latency > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalWorkload(10.0, amplitude=1.0)
        with pytest.raises(ValueError):
            DiurnalWorkload(10.0, amplitude=-0.1)
        with pytest.raises(ValueError):
            DiurnalWorkload(10.0, period=0.0)
