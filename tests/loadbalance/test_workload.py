"""Unit tests for the request workload generator."""

import numpy as np
import pytest

from repro.loadbalance.workload import DEFAULT_MIX, Request, RequestType, Workload
from repro.simsys.random_source import RandomSource


class TestRequestType:
    def test_validation(self):
        with pytest.raises(ValueError):
            RequestType("x", weight=0.0, probability=0.5)
        with pytest.raises(ValueError):
            RequestType("x", weight=1.0, probability=0.0)


class TestWorkload:
    def test_arrival_rate(self):
        wl = Workload(5.0, randomness=RandomSource(0, _name="wl"))
        requests = list(wl.requests(horizon=2000.0))
        assert len(requests) / 2000.0 == pytest.approx(5.0, rel=0.05)

    def test_arrivals_sorted_and_within_horizon(self):
        wl = Workload(10.0, randomness=RandomSource(1, _name="wl"))
        times = [r.arrival_time for r in wl.requests(100.0)]
        assert times == sorted(times)
        assert all(0 < t < 100.0 for t in times)

    def test_mix_proportions(self):
        wl = Workload(50.0, randomness=RandomSource(2, _name="wl"))
        requests = list(wl.requests(400.0))
        kinds = [r.kind for r in requests]
        for rtype in DEFAULT_MIX:
            share = kinds.count(rtype.name) / len(kinds)
            assert share == pytest.approx(rtype.probability, abs=0.03)

    def test_weights_match_kinds(self):
        wl = Workload(10.0, randomness=RandomSource(3, _name="wl"))
        weight_of = {t.name: t.weight for t in DEFAULT_MIX}
        for request in wl.requests(50.0):
            assert request.weight == weight_of[request.kind]

    def test_first_n_exact_count(self):
        wl = Workload(10.0, randomness=RandomSource(4, _name="wl"))
        assert len(wl.first_n(500)) == 500

    def test_first_n_with_tiny_hint_expands(self):
        wl = Workload(10.0, randomness=RandomSource(5, _name="wl"))
        assert len(wl.first_n(200, horizon_hint=0.1)) == 200

    def test_deterministic_given_seed(self):
        a = Workload(10.0, randomness=RandomSource(6, _name="wl")).first_n(50)
        b = Workload(10.0, randomness=RandomSource(6, _name="wl")).first_n(50)
        assert [r.arrival_time for r in a] == [r.arrival_time for r in b]
        assert [r.kind for r in a] == [r.kind for r in b]

    def test_request_ids_sequential(self):
        wl = Workload(10.0, randomness=RandomSource(7, _name="wl"))
        ids = [r.request_id for r in wl.first_n(100)]
        assert ids == list(range(100))

    def test_validation(self):
        with pytest.raises(ValueError):
            Workload(0.0)
        with pytest.raises(ValueError):
            Workload(1.0, mix=[])
        with pytest.raises(ValueError):
            Workload(
                1.0,
                mix=[RequestType("a", 1.0, 0.5), RequestType("b", 1.0, 0.4)],
            )
        with pytest.raises(ValueError):
            Workload(1.0).first_n(0)
