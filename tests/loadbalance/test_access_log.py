"""Unit tests for the Nginx-style access log."""

import pytest

from repro.loadbalance.access_log import (
    AccessLogEntry,
    format_access_log_line,
    parse_access_log_line,
    read_access_log,
    write_access_log,
)


def make_entry(**overrides):
    defaults = dict(
        time=12.345678,
        client_key="client-17",
        kind="api",
        status=200,
        upstream=1,
        upstream_response_time=0.456789,
        connections=(3, 7),
        request_weight=1.8,
    )
    defaults.update(overrides)
    return AccessLogEntry(**defaults)


class TestFormatParse:
    def test_roundtrip(self):
        entry = make_entry()
        restored = parse_access_log_line(format_access_log_line(entry))
        assert restored is not None
        assert restored.time == pytest.approx(entry.time)
        assert restored.client_key == entry.client_key
        assert restored.kind == entry.kind
        assert restored.upstream == entry.upstream
        assert restored.upstream_response_time == pytest.approx(
            entry.upstream_response_time
        )
        assert restored.connections == entry.connections
        assert restored.request_weight == pytest.approx(1.8)

    def test_line_looks_like_nginx(self):
        line = format_access_log_line(make_entry())
        assert '"GET /api HTTP/1.1" 200' in line
        assert "upstream=1" in line
        assert "conns=3:7" in line

    def test_parse_malformed_returns_none(self):
        assert parse_access_log_line("") is None
        assert parse_access_log_line("not a log line") is None
        assert parse_access_log_line("1.0 c \"GET /x HTTP/1.1\" 200") is None

    def test_parse_truncated_line_returns_none(self):
        line = format_access_log_line(make_entry())
        assert parse_access_log_line(line[: len(line) // 2]) is None

    def test_many_servers(self):
        entry = make_entry(connections=(1, 2, 3, 4, 5))
        restored = parse_access_log_line(format_access_log_line(entry))
        assert restored.connections == (1, 2, 3, 4, 5)

    def test_context_record(self):
        record = make_entry().context_record()
        assert record["conns_0"] == 3
        assert record["conns_1"] == 7
        assert record["kind"] == "api"
        assert record["request_weight"] == 1.8


class TestFileIO:
    def test_write_read_roundtrip(self, tmp_path):
        entries = [make_entry(time=float(t)) for t in range(5)]
        path = str(tmp_path / "access.log")
        write_access_log(entries, path)
        restored = read_access_log(path)
        assert len(restored) == 5
        assert restored[3].time == pytest.approx(3.0)

    def test_read_skips_garbage_lines(self, tmp_path):
        path = str(tmp_path / "access.log")
        with open(path, "w") as f:
            f.write(format_access_log_line(make_entry()) + "\n")
            f.write("-- log rotated --\n")
            f.write(format_access_log_line(make_entry(time=2.0)) + "\n")
        assert len(read_access_log(path)) == 2
