"""Unit tests for the reverse-proxy simulation."""

import numpy as np
import pytest

from repro.loadbalance.policies import (
    least_loaded_policy,
    random_policy,
    send_to_policy,
)
from repro.loadbalance.proxy import LoadBalancerSim, fig5_servers
from repro.loadbalance.server import ServerConfig
from repro.loadbalance.workload import Workload
from repro.simsys.random_source import RandomSource


def make_sim(policy, seed=0, rate=10.0, configs=None, **kwargs):
    workload = Workload(rate, randomness=RandomSource(seed, _name="wl"))
    return LoadBalancerSim(
        configs or fig5_servers(), policy, workload, seed=seed, **kwargs
    )


class TestSimulationMechanics:
    def test_serves_requested_count(self):
        result = make_sim(random_policy()).run(500)
        assert result.n_requests == 500
        assert len(result.access_log) == 500
        assert sum(result.per_server_requests.values()) == 500

    def test_connections_drain_after_run(self):
        sim = make_sim(random_policy())
        sim.run(300)
        assert all(s.open_connections == 0 for s in sim.servers)
        assert sum(s.completed_requests for s in sim.servers) == 300

    def test_deterministic_given_seed(self):
        a = make_sim(random_policy(), seed=9).run(400)
        b = make_sim(random_policy(), seed=9).run(400)
        assert a.mean_latency == b.mean_latency
        assert a.per_server_requests == b.per_server_requests

    def test_different_seeds_differ(self):
        a = make_sim(random_policy(), seed=1).run(400)
        b = make_sim(random_policy(), seed=2).run(400)
        assert a.mean_latency != b.mean_latency

    def test_warmup_excluded_from_stats_but_logged(self):
        result = make_sim(random_policy()).run(1000, warmup_fraction=0.2)
        assert len(result.latencies) == 800
        assert len(result.access_log) == 1000

    def test_log_connections_snapshot_at_decision_time(self):
        result = make_sim(random_policy()).run(200)
        first = result.access_log[0]
        assert first.connections == (0, 0)  # system starts empty

    def test_latency_timeout_cap(self):
        # A pathological single slow server: latency capped at timeout.
        configs = [ServerConfig(0, 5.0, 10.0)]
        result = make_sim(
            send_to_policy(0), configs=configs, timeout=8.0, rate=5.0
        ).run(200)
        assert max(result.latencies) <= 8.0

    def test_validation(self):
        with pytest.raises(ValueError):
            make_sim(random_policy()).run(0)
        with pytest.raises(ValueError):
            make_sim(random_policy()).run(10, warmup_fraction=1.0)
        with pytest.raises(ValueError):
            LoadBalancerSim([], random_policy(), Workload(1.0))
        with pytest.raises(ValueError):
            make_sim(random_policy(), latency_noise=-1.0)
        with pytest.raises(ValueError):
            make_sim(random_policy(), timeout=0.0)


class TestFig5Behaviour:
    def test_server_one_faster_under_random(self):
        """In logs collected under random routing, the fast server's
        requests are cheaper — the root of the Table 2 illusion."""
        result = make_sim(random_policy(), seed=4).run(4000)
        by_server = {0: [], 1: []}
        for entry in result.access_log:
            by_server[entry.upstream].append(entry.upstream_response_time)
        assert np.mean(by_server[0]) < np.mean(by_server[1])

    def test_random_splits_traffic_evenly(self):
        result = make_sim(random_policy(), seed=5).run(4000)
        share = result.per_server_requests[0] / 4000
        assert share == pytest.approx(0.5, abs=0.03)

    def test_send_to_one_overloads(self):
        """Deployed send-to-fast-server performs far worse than random —
        the online half of Table 2."""
        random_result = make_sim(random_policy(), seed=6).run(4000)
        degenerate = make_sim(send_to_policy(0), seed=6).run(4000)
        assert degenerate.mean_latency > 1.4 * random_result.mean_latency

    def test_least_loaded_beats_random(self):
        random_result = make_sim(random_policy(), seed=7).run(4000)
        balanced = make_sim(least_loaded_policy(), seed=7).run(4000)
        assert balanced.mean_latency < random_result.mean_latency

    def test_higher_load_higher_latency(self):
        light = make_sim(random_policy(), seed=8, rate=2.0).run(2000)
        heavy = make_sim(random_policy(), seed=8, rate=12.0).run(2000)
        assert heavy.mean_latency > light.mean_latency

    def test_p99_at_least_mean(self):
        result = make_sim(random_policy(), seed=9).run(1000)
        assert result.p99_latency >= result.mean_latency

    def test_api_affinity_visible_in_logs(self):
        """Server 2 serves api requests cheaper than server 1 at equal
        load — the structure the CB policy learns."""
        result = make_sim(random_policy(), seed=10).run(8000)
        api_fast, api_slow = [], []
        for entry in result.access_log:
            if entry.kind != "api":
                continue
            # Compare at low load to isolate the multiplier.
            if max(entry.connections) <= 2:
                (api_fast if entry.upstream == 0 else api_slow).append(
                    entry.upstream_response_time
                )
        assert np.mean(api_slow) < np.mean(api_fast)
