"""The docs site's committed half: links resolve, nav names real pages.

``mkdocs build --strict`` runs in CI (mkdocs is not a runtime
dependency), but everything that can be checked without mkdocs is
checked here: every internal markdown link in the repo resolves
(``tools/check_doc_links.py``), and every committed page named in
``mkdocs.yml``'s nav exists.
"""

import os
import re

from tools.check_doc_links import check_file, default_files, github_anchor

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Root documents mirrored into docs/ by the CI build step — absent
#: from the committed tree by design (see mkdocs.yml).
MIRRORED_PAGES = {"readme.md", "design.md", "experiments.md"}


class TestInternalLinks:
    def test_no_broken_links_anywhere(self):
        problems = []
        for path in default_files():
            problems.extend(check_file(path))
        assert problems == [], "\n".join(problems)

    def test_default_set_covers_the_docs_site(self):
        names = {os.path.relpath(p, REPO_ROOT) for p in default_files()}
        for required in ("README.md", "DESIGN.md", "docs/index.md",
                        "docs/harvesting.md", "docs/tutorial.md",
                        "docs/api.md"):
            assert required in names

    def test_anchor_slugging_matches_github(self):
        assert github_anchor("The determinism contract") == (
            "the-determinism-contract"
        )
        assert github_anchor("Batch `act()` harvesting") == (
            "batch-act-harvesting"
        )


class TestMkdocsNav:
    def nav_pages(self):
        with open(os.path.join(REPO_ROOT, "mkdocs.yml"),
                  encoding="utf-8") as handle:
            text = handle.read()
        nav = text[text.index("nav:"):text.index("validation:")]
        return re.findall(r":\s+([\w.-]+\.md)\s*$", nav, re.MULTILINE)

    def test_nav_names_every_committed_docs_page(self):
        pages = self.nav_pages()
        docs = os.path.join(REPO_ROOT, "docs")
        committed = {n for n in os.listdir(docs) if n.endswith(".md")}
        assert committed <= set(pages), (
            f"docs/ pages missing from mkdocs nav: {committed - set(pages)}"
        )

    def test_every_non_mirrored_nav_page_exists(self):
        docs = os.path.join(REPO_ROOT, "docs")
        for page in self.nav_pages():
            if page in MIRRORED_PAGES:
                continue
            assert os.path.exists(os.path.join(docs, page)), (
                f"mkdocs nav names missing page docs/{page}"
            )

    def test_mirrored_sources_exist_at_root(self):
        for source in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            assert os.path.exists(os.path.join(REPO_ROOT, source))
