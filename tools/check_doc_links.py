"""Stdlib internal-link checker for the project's markdown.

Scans the committed documentation (repo-root ``*.md`` plus ``docs/``)
and verifies that every relative markdown link resolves to a real file
— and, when the link carries a ``#fragment`` into a markdown file,
that a heading with that GitHub-style anchor exists.  External links
(``http(s)://``, ``mailto:``) are left alone: this tool guards the
repository's internal consistency, offline and dependency-free, so
both the test suite and CI can run it without mkdocs installed.

Usage::

    python tools/check_doc_links.py            # check the default set
    python tools/check_doc_links.py FILE...    # check specific files

Exit status 0 when every link resolves, 1 otherwise (one line per
broken link).
"""

from __future__ import annotations

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Inline markdown links — ``[text](target)`` — excluding images.
LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: ATX headings, used to derive the anchors a fragment may point at.
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
#: Fenced code blocks are stripped before link extraction.
FENCE_RE = re.compile(r"^```.*?^```", re.MULTILINE | re.DOTALL)

SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def default_files() -> list[str]:
    """The committed markdown set: repo-root *.md and docs/*.md."""
    files = []
    for name in sorted(os.listdir(REPO_ROOT)):
        if name.endswith(".md"):
            files.append(os.path.join(REPO_ROOT, name))
    docs = os.path.join(REPO_ROOT, "docs")
    if os.path.isdir(docs):
        for name in sorted(os.listdir(docs)):
            if name.endswith(".md"):
                files.append(os.path.join(docs, name))
    return files


def github_anchor(heading: str) -> str:
    """GitHub-style anchor slug: lowercase, punctuation out, dashes in."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: str) -> set:
    with open(path, encoding="utf-8") as handle:
        content = handle.read()
    return {github_anchor(m.group(1)) for m in HEADING_RE.finditer(content)}


def check_file(path: str) -> list[str]:
    """Return one message per broken link in ``path``."""
    with open(path, encoding="utf-8") as handle:
        content = FENCE_RE.sub("", handle.read())
    problems = []
    rel = os.path.relpath(path, REPO_ROOT)
    for match in LINK_RE.finditer(content):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES) or target.startswith("<"):
            continue
        target, _, fragment = target.partition("#")
        if not target:  # same-file anchor
            if fragment and fragment not in anchors_of(path):
                problems.append(f"{rel}: missing anchor #{fragment}")
            continue
        resolved = os.path.normpath(
            os.path.join(os.path.dirname(path), target)
        )
        if not os.path.exists(resolved):
            problems.append(f"{rel}: broken link {target}")
            continue
        if fragment and resolved.endswith(".md"):
            if fragment not in anchors_of(resolved):
                problems.append(
                    f"{rel}: {target} has no anchor #{fragment}"
                )
    return problems


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    files = [os.path.abspath(p) for p in argv] or default_files()
    problems = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {len(files)} file(s): "
          f"{'OK' if not problems else f'{len(problems)} broken link(s)'}")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
