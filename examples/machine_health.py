"""Machine health (Azure Compute scenario): the paper's success story.

Reproduces the §4 pipeline end to end:

- generate a fleet and failure incidents with full-feedback downtime
  logs (the wait-10 default reveals every shorter wait's outcome);
- simulate partial-feedback exploration from the full-feedback data;
- train a CB policy on the exploration data;
- evaluate it offline with IPS and compare against the exact ground
  truth that full feedback makes available.

Run:  python examples/machine_health.py
"""

import numpy as np

from repro.core import ConstantPolicy, IPSEstimator, SupervisedTrainer
from repro.core.features import Featurizer
from repro.core.learners.cb import EpsilonGreedyLearner
from repro.machinehealth import (
    build_full_feedback_dataset,
    default_policy_reward,
    ground_truth_value,
    simulate_exploration,
)

N_INCIDENTS = 8_000
N_ACTIONS = 10  # wait 1..10 minutes


def main() -> None:
    print("generating fleet and failure incidents ...")
    scenario = build_full_feedback_dataset(n_events=N_INCIDENTS, seed=7)
    train, test = scenario.split(0.5)

    default_downtime = default_policy_reward(test)
    print(f"default policy (wait 10 min): {default_downtime:7.1f} "
          f"VM-minutes of downtime per incident")
    best_constant = min(
        (ground_truth_value(ConstantPolicy(a), test), a) for a in range(N_ACTIONS)
    )
    print(f"best constant policy (wait {best_constant[1] + 1} min): "
          f"{best_constant[0]:7.1f}")

    # Train a CB policy on simulated exploration data.
    rng = np.random.default_rng(0)
    exploration = simulate_exploration(train, rng)
    learner = EpsilonGreedyLearner(
        N_ACTIONS, featurizer=Featurizer(64), learning_rate=0.5, maximize=False
    )
    for _ in range(3):
        learner.observe_all(exploration)
    cb_policy = learner.policy()
    cb_truth = ground_truth_value(cb_policy, test)
    print(f"learned CB policy:            {cb_truth:7.1f}")

    # The supervised ceiling (only possible because feedback is full).
    supervised = SupervisedTrainer(N_ACTIONS, maximize=False).fit(train)
    sup_truth = ground_truth_value(supervised.policy(), test)
    print(f"supervised (full feedback):   {sup_truth:7.1f}")
    print(f"CB is within {100 * (cb_truth / sup_truth - 1):.0f}% of the "
          f"full-feedback ceiling, and saves "
          f"{100 * (1 - cb_truth / default_downtime):.0f}% of downtime "
          f"vs the deployed default.")

    # Off-policy evaluation: estimate the CB policy's value from fresh
    # exploration data only, then compare to truth.
    test_exploration = simulate_exploration(test, rng)
    estimate = IPSEstimator().estimate(cb_policy, test_exploration)
    truth = ground_truth_value(cb_policy, test)
    print(f"\nIPS estimate from {len(test_exploration)} exploration points: "
          f"{estimate.value:.1f} (truth {truth:.1f}, "
          f"error {100 * abs(estimate.value - truth) / truth:.1f}%)")


if __name__ == "__main__":
    main()
