"""Trace-driven cache analysis: from a trace file to a policy decision.

The workflow a downstream operator actually runs:

1. obtain a request trace (here: synthesized and written to disk in
   the standard ``time key size`` format — substitute your own);
2. read it back, check its vital signs, size the cache;
3. replay-evaluate candidate eviction policies *offline* against the
   trace (the model-based evaluation of §2 — exact for caches, since
   requests don't depend on eviction choices);
4. pick a winner without ever touching production.

Run:  python examples/trace_analysis.py
"""

import os
import tempfile

from repro.cache import (
    BigSmallWorkload,
    freq_size_policy,
    lfu_policy,
    lru_policy,
    random_eviction_policy,
    read_trace,
    write_trace,
    working_set_bytes,
)
from repro.cache.replay import replay_rank
from repro.cache.keyspace_log import format_get_line
from repro.simsys.random_source import RandomSource

N_REQUESTS = 30000


def main() -> None:
    # 1. A trace file (stand-in for your production dump).
    workload = BigSmallWorkload(randomness=RandomSource(7, _name="wl"))
    requests = list(workload.requests(N_REQUESTS))
    path = os.path.join(tempfile.mkdtemp(prefix="trace-"), "requests.trace")
    write_trace(requests, path)
    print(f"trace written: {path} ({os.path.getsize(path) / 1024:.0f} KiB)")

    # 2. Read and profile it.
    replayed, stats = read_trace(path)
    print(f"requests={stats.n_requests}  distinct keys={stats.n_keys}  "
          f"dropped={stats.n_dropped}")
    working_set = working_set_bytes(replayed)
    capacity = working_set // 2
    print(f"working set {working_set} bytes; evaluating a "
          f"{capacity}-byte cache (50%)\n")

    # 3. Offline policy bake-off by replay.  (replay_rank consumes
    # keyspace-log GET lines; adapt the trace into that format.)
    log_lines = [
        format_get_line(r.time, r.key, False, r.size) for r in replayed
    ]
    ranked = replay_rank(
        log_lines,
        [
            random_eviction_policy(),
            lru_policy(),
            lfu_policy(),
            freq_size_policy(),
        ],
        capacity,
        sample_size=10,
        pool_size=16,
        seed=7,
    )
    print(f"{'rank':<5s} {'policy':<18s} {'predicted hit rate':>18s}")
    for rank, (policy, hit_rate) in enumerate(ranked, start=1):
        print(f"{rank:<5d} {policy.name:<18s} {hit_rate:>17.1%}")

    # 4. The decision.
    winner, margin = ranked[0][0], ranked[0][1] - ranked[1][1]
    print(f"\ndeploy {winner.name!r}: predicted to beat the runner-up by "
          f"{margin:.1%} — no production experiment needed")


if __name__ == "__main__":
    main()
