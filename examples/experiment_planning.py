"""Experiment planning and streaming decisions.

Three workflow tools built on the paper's math:

1. **Plan** — before instrumenting anything: given your action count,
   traffic, and the policy class you want to optimize over, how much
   exploration and time do you need (Eq. 1, inverted)?  And how much
   evaluation power are your *current* logs wasting?
2. **Stream** — follow a live exploration log and watch candidate
   estimates tighten until a winner separates.
3. **Decide** — a paired comparison with a finite-sample confidence
   interval: is the challenger better than the incumbent, and if not
   yet conclusive, how much more log do you need?

Run:  python examples/experiment_planning.py
"""

import numpy as np

from repro.core import (
    ConstantPolicy,
    StreamingEvaluationBoard,
    compare_policies,
    exploration_plan,
    sufficient_log_size,
    wasted_potential,
)
from repro.core.types import ActionSpace
from repro.machinehealth import build_full_feedback_dataset, simulate_exploration


def plan() -> None:
    print("== 1. planning the exploration budget")
    # The paper's running example: an Azure edge proxy balancing over
    # 25 clusters, ~2M requests/day through the randomized path.
    proxy_plan = exploration_plan(
        n_actions=25,
        traffic_per_day=2e6,
        policy_class_size=10**6,
        target_error=0.05,
    )
    print(f"  25-way balancer, |Pi|=1e6, err 0.05: need "
          f"{proxy_plan.required_n:,.0f} decisions "
          f"(~{proxy_plan.days_to_target:.1f} days)")
    # And the closing argument: what are today's logs worth?
    k = wasted_potential(decisions_logged=1e8, epsilon=0.04)
    description = (
        f"~1e{np.log10(k):.0f} policies"
        if k < 1e300
        else "more policies than could ever be enumerated"
    )
    print(f"  a month of logs (1e8 decisions at eps=0.04) could evaluate "
          f"{description} -- currently discarded\n")


def stream_and_decide() -> None:
    print("== 2. streaming evaluation on machine-health exploration data")
    scenario = build_full_feedback_dataset(n_events=20000, seed=5)
    rng = np.random.default_rng(0)
    exploration = simulate_exploration(scenario.full, rng)

    wait_short = ConstantPolicy(1, name="wait-2min")
    wait_long = ConstantPolicy(8, name="wait-9min")
    board = StreamingEvaluationBoard(
        [wait_short, wait_long], ActionSpace(10)
    )
    resolved_at = None
    for count, interaction in enumerate(exploration, start=1):
        board.update(interaction)
        if count % 2500 == 0 or (resolved_at is None and count > 500
                                 and board.resolved()):
            snaps = {s.policy_name: s for s in board.snapshots()}
            line = "  ".join(
                f"{name}={snap.value:7.1f}±{1.96 * snap.std_error:5.1f}"
                for name, snap in snaps.items()
            )
            marker = ""
            if resolved_at is None and board.resolved():
                resolved_at = count
                marker = "  <-- separated"
            print(f"  n={count:6d}  {line}{marker}")
            if count % 2500 != 0:
                continue
    print(f"  winner: {board.leader(maximize=False).policy_name} "
          f"(downtime minimized), separated at n~{resolved_at}\n")

    print("== 3. paired comparison with finite-sample bounds")
    half = exploration[: len(exploration) // 4]
    comparison = compare_policies(wait_short, wait_long, half)
    lo, hi = comparison.interval.low, comparison.interval.high
    print(f"  {comparison.champion_name} - {comparison.challenger_name}: "
          f"{comparison.difference:+.1f} VM-min  [{lo:+.1f}, {hi:+.1f}]")
    print(f"  verdict on {comparison.n} points: "
          f"{comparison.winner(maximize=False)}")
    needed = sufficient_log_size(wait_short, wait_long, half)
    print(f"  (a conclusive paired verdict needs ~{needed:,.0f} points)")


def main() -> None:
    plan()
    stream_and_decide()


if __name__ == "__main__":
    main()
