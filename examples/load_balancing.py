"""Load balancing (Nginx scenario): where off-policy evaluation breaks.

Reproduces the Table 2 experiment:

- run the two-server Fig. 5 setup under uniform-random routing and
  harvest the Nginx-style access log;
- evaluate candidate policies offline with IPS;
- deploy each candidate in the simulator to obtain its true online
  latency;
- watch the "send to 1" policy look great offline and fail online —
  the CB independence assumption A1 is violated because routing
  decisions change the load distribution.

Run:  python examples/load_balancing.py
"""

from repro.core import IPSEstimator, UniformRandomPolicy
from repro.loadbalance import LoadBalancerSim, Workload, fig5_servers
from repro.loadbalance.harvest import dataset_from_access_log, train_cb_policy
from repro.loadbalance.policies import (
    least_loaded_policy,
    random_policy,
    send_to_policy,
)
from repro.simsys.random_source import RandomSource

ARRIVAL_RATE = 10.0
N_COLLECT = 12_000
N_ONLINE = 8_000


def run_online(policy, seed: int = 7) -> float:
    """Deploy a policy in the simulator; return its live mean latency."""
    workload = Workload(ARRIVAL_RATE, randomness=RandomSource(seed, _name="wl"))
    sim = LoadBalancerSim(fig5_servers(), policy, workload, seed=seed)
    return sim.run(N_ONLINE).mean_latency


def main() -> None:
    print("collecting exploration data under uniform-random routing ...")
    workload = Workload(ARRIVAL_RATE, randomness=RandomSource(42, _name="wl"))
    collector = LoadBalancerSim(fig5_servers(), random_policy(), workload, seed=42)
    collection = collector.run(N_COLLECT)
    print(f"  served {collection.n_requests} requests, "
          f"mean latency {collection.mean_latency:.3f}s")

    # Harvest: parse the access log, declare propensities (we know by
    # code inspection the router was uniform-random).
    dataset = dataset_from_access_log(
        collection.access_log, logging_policy=UniformRandomPolicy()
    )

    candidates = {
        "Random": random_policy(),
        "Least loaded": least_loaded_policy(),
        "Send to 1": send_to_policy(0),
        "CB policy": train_cb_policy(dataset, n_servers=2),
    }

    ips = IPSEstimator()
    print(f"\n{'Policy':<14s} {'Off-policy eval':>16s} {'Online eval':>12s}")
    for name, policy in candidates.items():
        offline = ips.estimate(policy, dataset).value
        online = run_online(policy)
        flag = "  <-- OPE breaks!" if name == "Send to 1" else ""
        print(f"{name:<14s} {offline:>15.2f}s {online:>11.2f}s{flag}")

    print("\n'Send to 1' looks best offline because in the random log "
          "server 1 is always fast;\ndeployed, it overloads server 1 — "
          "prior decisions change the context distribution (A1).")


if __name__ == "__main__":
    main()
