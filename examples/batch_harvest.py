"""Batch harvesting end to end: generate → validate → evaluate → report.

The tutorial companion (docs/tutorial.md).  One pass through the
batched harvest engine:

- harvest a 20k-row machine-health exploration log with
  ``simulate_exploration_columns`` (one ``act_batch`` call per 8192
  rows, one reward gather per batch);
- demonstrate the determinism contract — ``batch_size=1`` reproduces
  the same log bit for bit;
- round-trip the log through JSONL with quarantine validation;
- evaluate candidate policies on the out-of-core chunked backend;
- write a provenance manifest recording the whole run.

Run:  python examples/batch_harvest.py         (finishes in seconds)
"""

import os
import tempfile

import numpy as np

from repro.core import ConstantPolicy, UniformRandomPolicy
from repro.core.engine import evaluate_jsonl_chunked
from repro.core.estimators.ips import IPSEstimator, SNIPSEstimator
from repro.machinehealth import build_full_feedback_dataset
from repro.machinehealth.dataset import simulate_exploration_columns
from repro.obs.manifest import RunManifest, result_entry
from repro.obs.metrics import use_metrics
from repro.obs.tracing import use_tracer

N_INCIDENTS = 20_000


def main() -> None:
    print("1. generating full-feedback incidents ...")
    scenario = build_full_feedback_dataset(n_events=N_INCIDENTS, seed=11)

    print("2. batch-harvesting the exploration log ...")
    with use_tracer() as tracer, use_metrics() as metrics:
        columns = simulate_exploration_columns(
            scenario.full, np.random.default_rng(4), batch_size=8192
        )
    rows = metrics.value("harvest.rows", scenario="machinehealth")
    print(f"   harvested {columns.n} rows "
          f"(metrics counted {rows:.0f}, "
          f"{len(tracer.span_tree())} root span)")

    # The determinism contract: per-row mode (batch_size=1) redraws
    # the identical log for the same seeded generator.
    per_row = simulate_exploration_columns(
        scenario.full, np.random.default_rng(4), batch_size=1
    )
    assert (per_row.actions == columns.actions).all()
    assert (per_row.propensities == columns.propensities).all()
    print("   per-row mode (batch_size=1) is bit-identical: OK")

    with tempfile.TemporaryDirectory() as tmp:
        log_path = os.path.join(tmp, "exploration.jsonl")
        manifest_path = os.path.join(tmp, "run_manifest.json")

        print("3. saving + revalidating as JSONL ...")
        dataset = columns.to_dataset()
        dataset.save_jsonl(log_path)

        print("4. evaluating candidates on the chunked backend ...")
        policies = [
            UniformRandomPolicy(),
            ConstantPolicy(0, name="wait-1"),
            ConstantPolicy(9, name="wait-10"),
        ]
        estimators = [IPSEstimator(), SNIPSEstimator()]
        with use_tracer() as tracer, use_metrics() as metrics:
            evaluation = evaluate_jsonl_chunked(
                log_path, policies, estimators,
                chunk_size=4096, mode="quarantine",
            )
        for policy, row in zip(policies, evaluation.results):
            cells = "  ".join(
                f"{est.name}={res.value:7.1f}±{res.std_error:5.1f}"
                for est, res in zip(estimators, row)
            )
            print(f"   {policy.name:<16s} {cells}")
        print(f"   ({evaluation.n} rows in {evaluation.n_chunks} chunks, "
              f"{evaluation.quarantine.n_rejected} quarantined)")

        print("5. writing the provenance manifest ...")
        manifest = RunManifest.build(
            command="examples/batch_harvest.py",
            input_path=log_path,
            config={"n_incidents": N_INCIDENTS, "batch_size": 8192},
            results=[
                result_entry(policy.name, row[0])
                for policy, row in zip(policies, evaluation.results)
            ],
            metrics=metrics,
            tracer=tracer,
            quarantine=evaluation.quarantine,
        )
        manifest.save(manifest_path)
        reloaded = RunManifest.load(manifest_path)
        print(f"   manifest schema v{reloaded.to_dict()['schema_version']}, "
              f"input digest {reloaded.to_dict()['input']['sha256'][:12]}…")

    print("done.")


if __name__ == "__main__":
    main()
