"""Hierarchical load balancing (Azure Front Door, Fig. 6).

§5's answer to large action spaces: route in two levels.  The edge
proxy picks among a handful of clusters; each cluster's local balancer
picks among its servers.  Both levels log their own exploration tuples
with small action sets, so each level's ε (minimum propensity) stays
large and Eq. 1 needs far less data than a flat policy over all
servers would.

Run:  python examples/frontdoor_hierarchy.py
"""

from repro.core import IPSEstimator, UniformRandomPolicy, ips_sample_size
from repro.loadbalance import Cluster, FrontDoorSim, Workload
from repro.loadbalance.policies import least_loaded_policy, send_to_policy
from repro.loadbalance.server import ServerConfig
from repro.simsys.random_source import RandomSource

N_CLUSTERS = 4
SERVERS_PER_CLUSTER = 8
N_REQUESTS = 20_000


def make_clusters() -> list[Cluster]:
    """Four clusters of eight servers with mildly different speeds."""
    clusters = []
    for c in range(N_CLUSTERS):
        configs = [
            ServerConfig(
                server_id=s,
                base_latency=0.15 + 0.02 * c + 0.01 * (s % 3),
                latency_per_connection=0.03,
                name=f"cluster{c}-server{s}",
            )
            for s in range(SERVERS_PER_CLUSTER)
        ]
        clusters.append(
            Cluster(f"cluster-{c}", configs, UniformRandomPolicy())
        )
    return clusters


def main() -> None:
    workload = Workload(30.0, randomness=RandomSource(3, _name="wl"))
    sim = FrontDoorSim(make_clusters(), UniformRandomPolicy(), workload, seed=3)
    result = sim.run(N_REQUESTS)
    print(f"served {result.n_requests} requests, "
          f"mean latency {result.mean_latency:.3f}s")

    # Each level is its own small-action-space harvesting problem.
    print(f"\nedge level: {len(result.edge_dataset)} tuples, "
          f"epsilon = {result.edge_min_propensity:.3f} "
          f"(1/{N_CLUSTERS} clusters)")
    for name, dataset in result.cluster_datasets.items():
        print(f"{name}: {len(dataset)} tuples, "
              f"epsilon = {dataset.min_propensity():.3f} "
              f"(1/{SERVERS_PER_CLUSTER} servers)")

    # Evaluate an edge-level candidate offline: send everything to the
    # fastest cluster vs. balance.
    ips = IPSEstimator()
    for policy in [UniformRandomPolicy(), send_to_policy(0),
                   least_loaded_policy()]:
        estimate = ips.estimate(policy, result.edge_dataset)
        print(f"edge candidate {policy.name:<14s}: "
              f"estimated latency {estimate.value:.3f}s")

    # The Eq. 1 argument for hierarchy: data needed at each level vs. a
    # flat 32-action policy, for the same target accuracy.
    target, k = 0.05, 10**6
    flat = ips_sample_size(target, epsilon=1 / 32, k=k)
    edge = ips_sample_size(target, epsilon=1 / N_CLUSTERS, k=k)
    local = ips_sample_size(target, epsilon=1 / SERVERS_PER_CLUSTER, k=k)
    print(f"\nEq. 1 data requirement (error {target}, K={k:.0e}):")
    print(f"  flat 32-way policy : {flat:,.0f} decisions")
    print(f"  edge level (1/4)   : {edge:,.0f} decisions")
    print(f"  cluster level (1/8): {local:,.0f} decisions")
    print(f"  hierarchy needs {flat / max(edge, local):.1f}x less data "
          f"at the binding level")


if __name__ == "__main__":
    main()
