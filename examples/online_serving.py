"""Close the loop: serve decisions, shadow a candidate, promote by OPE.

The serving handbook (docs/serving.md) walkthrough, runnable end to
end in-process:

1. boot a :class:`~repro.serve.server.PolicyServer` for the synthetic
   scenario with a uniform incumbent and a decision log;
2. drive ~1k ``act`` requests over real loopback TCP while a greedy
   candidate **shadows** the traffic (its would-have-done decisions
   are scored on a parallel audit stream — clients never see them);
3. flush the log and run the **OPE promotion gate**: the doubly-robust
   estimator evaluates candidate vs incumbent over the service's own
   hash-chained log, in a subprocess, while serving continues;
4. the gate passes, the candidate **hot-swaps** in atomically, and the
   next decisions are attributed to the new policy version;
5. verify the decision log's ledger chain and re-read it with the
   offline toolchain — serving produced an evaluation-grade
   exploration log as a side effect.

Run:  python examples/online_serving.py
"""

import asyncio
import json
import tempfile
from pathlib import Path

from repro.audit import verify_jsonl
from repro.core.policies import ConstantPolicy, UniformRandomPolicy
from repro.core.types import Dataset
from repro.serve import DecisionService, GateConfig, PolicyServer

#: On the 8-row synthetic context pool, constant action 2 earns a mean
#: reward of 0.600 vs the uniform incumbent's 0.512 — a gap the gate's
#: doubly-robust estimate resolves from ~1k logged decisions.
POOL_ROWS = 8
GOOD_ACTION = 2
REQUESTS = 64
ASK = 16  # decisions per act request → ~1k decisions total


async def call(reader, writer, **request):
    """One JSON-lines round trip on an open client connection."""
    writer.write(json.dumps(request).encode() + b"\n")
    await writer.drain()
    response = json.loads(await reader.readline())
    if not response.get("ok"):
        raise RuntimeError(f"{request['op']} failed: {response.get('error')}")
    return response


async def serve_and_promote(log_path: str) -> dict:
    service = DecisionService(
        "synthetic",
        UniformRandomPolicy(),
        pool_rows=POOL_ROWS,
        seed=2017,
        log_path=log_path,
        config={"n_actions": 4},
    )
    service.register_candidate("greedy", ConstantPolicy(GOOD_ACTION))
    server = PolicyServer(service, gate_config=GateConfig(min_rows=256))
    host, port = await server.start()
    print(f"serving synthetic on {host}:{port}")

    reader, writer = await asyncio.open_connection(host, port)

    # -- shadow the candidate while real traffic flows --------------------
    await call(reader, writer, op="shadow", name="greedy")
    first = await call(reader, writer, op="act", n=ASK)
    version_before = first["policy_version"]
    for _ in range(REQUESTS - 1):
        await call(reader, writer, op="act", n=ASK)
    shadow = (await call(reader, writer, op="stats"))["stats"]["shadows"][0]
    print(
        f"served {REQUESTS * ASK} decisions under v{version_before} "
        f"({first['policy_name']})"
    )
    print(
        f"shadowed greedy on {shadow['n']} decisions: "
        f"agreement {shadow['agreement_rate']:.0%}"
    )

    # -- gate offline, hot-swap on a pass ---------------------------------
    promote = await call(reader, writer, op="promote", name="greedy")
    decision = promote["decision"]
    verdict = "promoted" if decision["promote"] else "refused"
    print(
        f"gate {verdict} greedy: DR {decision['candidate_value']:.3f} vs "
        f"incumbent {decision['incumbent_value']:.3f} "
        f"({decision['verdict']}, n={decision['n']})"
    )

    after = await call(reader, writer, op="act", n=ASK)
    print(
        f"post-swap decisions come from v{after['policy_version']} "
        f"({after['policy_name']})"
    )
    flushed = (await call(reader, writer, op="flush"))["flush"]

    writer.close()
    await writer.wait_closed()
    await server.stop()
    return {"decision": decision, "after": after, "flush": flushed}


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-serve-"))
    log_path = str(workdir / "decisions.jsonl")
    outcome = asyncio.run(serve_and_promote(log_path))
    assert outcome["decision"]["promote"], "the gate should promote greedy"
    assert outcome["after"]["policy_name"] == "greedy"

    # -- the serve log is an offline-grade exploration log ----------------
    report = verify_jsonl(log_path, expected_head=outcome["flush"]["head"])
    print(f"ledger chain verifies: {'OK' if report.ok else 'BROKEN'}")
    dataset = Dataset.load_jsonl(log_path, verify_ledger="require")
    print(f"offline toolchain re-reads {len(dataset)} logged decisions")
    print("done.")


if __name__ == "__main__":
    main()
