"""Sharded distributed harvest — one verified chain from many workers.

The shard-native harvest path (ADR-0002): a :class:`HarvestCoordinator`
partitions the rows into stream-keyed shards, fans them onto the
persistent worker pool, and splices the returned payloads into ONE
hash chain that is bit-identical to a serial harvest:

1. harvest the same job at 1 worker and at 2 workers;
2. show rows, ledger head, and every entry hash agree exactly;
3. inspect the shard map (per-shard boundary hashes + retry counts);
4. save the log and verify it per shard against the manifest entry;
5. re-derive one shard in isolation from (master seed, key, ordinal).

Run:  python examples/distributed_harvest.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.audit.shards import verify_sharded_jsonl
from repro.audit.streams import StreamRegistry, StreamRNG
from repro.core import pool as worker_pool
from repro.core.coordinator import (
    HarvestCoordinator,
    HarvestJob,
    build_inputs,
)
from repro.core.harvest import harvest_columns
from repro.core.policies import UniformRandomPolicy

MASTER_SEED = 2017
ROWS = 600
SHARD = 128


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-sharded-"))
    job = HarvestJob(
        scenario="loadbalance",
        rows=ROWS,
        master_seed=MASTER_SEED,
        policy=UniformRandomPolicy(),
        shard_size=SHARD,
        batch_size=64,
        config={"seed": 11, "latency_noise": 0.01},
    )

    # -- 1. the same job, serial and fanned out ---------------------------
    serial = HarvestCoordinator(job, workers=1).run()
    parallel = HarvestCoordinator(job, workers=2).run()
    print(
        f"harvested {serial.columns.n} rows in "
        f"{len(serial.plan)} shard(s) of {SHARD}"
    )

    # -- 2. worker count is invisible in the output -----------------------
    identical = (
        np.array_equal(serial.columns.actions, parallel.columns.actions)
        and np.array_equal(serial.columns.rewards, parallel.columns.rewards)
        and serial.head == parallel.head
        and serial.entries() == parallel.entries()
    )
    print(
        "workers=1 vs workers=2: "
        f"{'bit-identical' if identical else 'DIVERGED'}"
    )
    print(f"spliced head: {serial.head[:16]}…")

    # -- 3. the shard map: boundary hashes are the audit record -----------
    for shard in parallel.shard_map:
        print(
            f"  shard {shard['index']} rows "
            f"[{shard['start']}, {shard['start'] + shard['n']}) "
            f"prev {shard['prev'][:8]}… head {shard['head'][:8]}… "
            f"retries {shard['retries']}"
        )

    # -- 4. save, then verify each shard against the manifest entry -------
    dataset = parallel.columns.to_dataset()
    parallel.annotate(dataset)
    log_path = workdir / "sharded.jsonl"
    dataset.save_jsonl(str(log_path))
    entry = parallel.manifest_entry()
    verification = verify_sharded_jsonl(
        str(log_path),
        entry["shards"],
        expected_head=entry["head"],
        expected_n=entry["n"],
    )
    print(
        "per-shard verification: "
        f"{'OK' if verification.ok else 'FAILED'} — "
        f"{len(entry['shards'])} shard(s)"
    )

    # -- 5. fork equivalence: one shard re-derives in isolation -----------
    spec = parallel.plan[1]
    registry = StreamRegistry(MASTER_SEED)
    inputs = build_inputs(job, registry)
    stream = StreamRNG(
        registry, job.stream_key(),
        shard_size=SHARD, start_ordinal=spec.start,
    )
    shard_columns = harvest_columns(
        job.policy,
        inputs.contexts[spec.start: spec.stop],
        lambda indices, actions: inputs.reward_fn(
            indices + spec.start, actions
        ),
        stream,
        eligible=inputs.eligible_slice(spec.start, spec.stop),
        action_space=inputs.action_space,
        batch_size=64,
        scenario=job.scenario,
    )
    rederived = np.array_equal(
        shard_columns.actions,
        parallel.columns.actions[spec.start: spec.stop],
    ) and np.array_equal(
        shard_columns.rewards,
        parallel.columns.rewards[spec.start: spec.stop],
    )
    print(
        f"shard {spec.index} re-derived in isolation: "
        f"{'bit-identical' if rederived else 'DIVERGED'}"
    )

    worker_pool.reset_pool()
    print("done.")


if __name__ == "__main__":
    main()
