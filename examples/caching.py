"""Caching (Redis scenario): where long-term rewards defeat greedy CB.

Reproduces the Table 3 experiment:

- run the big/small workload against a byte-budgeted cache with
  Redis-style random sampled eviction, logging keyspace events;
- harvest eviction decisions, reconstructing each eviction's reward
  (time to next access of the victim) by looking ahead in the log;
- train a greedy CB eviction policy on that reward;
- deploy every policy and compare hit rates: the CB policy matches
  random/LRU, while a hand-built frequency/size policy — the only one
  that accounts for the opportunity cost of large items — wins.

Run:  python examples/caching.py
"""

from repro.cache import (
    BigSmallWorkload,
    CacheSim,
    eviction_dataset_from_log,
    freq_size_policy,
    lfu_policy,
    lru_policy,
    random_eviction_policy,
    train_cb_eviction,
)
from repro.simsys.random_source import RandomSource

CAPACITY = 700        # bytes; the full item population needs 1400
SAMPLE_SIZE = 10      # Redis maxmemory-samples
POOL_SIZE = 16        # Redis eviction pool (deployments only)
N_REQUESTS = 50_000


def deploy(policy, pool: int = POOL_SIZE, seed: int = 3) -> float:
    """Ground truth: run the policy in the cache, return its hit rate."""
    workload = BigSmallWorkload(randomness=RandomSource(seed, _name="wl"))
    sim = CacheSim(
        CAPACITY, policy, sample_size=SAMPLE_SIZE, seed=seed, pool_size=pool
    )
    return sim.run(workload.requests(N_REQUESTS), keep_log=False).hit_rate


def main() -> None:
    print("collecting exploration data under random eviction ...")
    workload = BigSmallWorkload(randomness=RandomSource(11, _name="wl"))
    collector = CacheSim(
        CAPACITY, random_eviction_policy(), sample_size=SAMPLE_SIZE, seed=11
    )
    collection = collector.run(workload.requests(N_REQUESTS))
    print(f"  {collection.evictions} evictions logged, "
          f"hit rate {collection.hit_rate:.1%}")

    print("harvesting the keyspace log (look-ahead reward reconstruction) ...")
    dataset = eviction_dataset_from_log(
        collection.log_lines, sample_size=SAMPLE_SIZE
    )
    cb_policy = train_cb_eviction(dataset)

    policies = {
        "Random": (random_eviction_policy(), 0),  # random can't use a pool
        "LRU": (lru_policy(), POOL_SIZE),
        "LFU": (lfu_policy(), POOL_SIZE),
        "CB policy": (cb_policy, 0),
        "Freq/size": (freq_size_policy(), POOL_SIZE),
    }
    print(f"\n{'Policy':<12s} {'Hit rate':>9s}")
    for name, (policy, pool) in policies.items():
        print(f"{name:<12s} {deploy(policy, pool):>9.1%}")

    print("\nThe CB policy optimizes its greedy reward (time to next "
          "access) just fine,\nbut hit rate depends on the long-term "
          "opportunity cost of the bytes —\nonly the size-aware "
          "frequency/size policy captures that.")


if __name__ == "__main__":
    main()
