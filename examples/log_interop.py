"""Log interop: text logs in, VW-format exploration data out.

The methodology is *non-invasive*: everything starts from logs a
system already writes.  This example exercises the whole data plumbing
on the machine-health scenario:

1. a fleet "writes" an Azure-style incident log (plain text, one line
   per incident, full downtime profile under the wait-10 default);
2. we scavenge the text log back into a full-feedback dataset;
3. we simulate exploration and export it in Vowpal Wabbit's ``--cb``
   format — the interchange format of production CB stacks;
4. we reload the VW file and verify estimators see identical data.

Run:  python examples/log_interop.py
"""

import os
import tempfile

import numpy as np

from repro.core import ConstantPolicy, IPSEstimator
from repro.core.vw_format import load_vw, save_vw
from repro.machinehealth import (
    dataset_from_incident_log,
    generate_failures,
    generate_fleet,
    read_incident_log,
    simulate_exploration,
    write_incident_log,
)
from repro.machinehealth.fleet import FleetConfig
from repro.simsys.random_source import RandomSource

N_INCIDENTS = 3000


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="harvest-")
    incident_path = os.path.join(workdir, "incidents.log")
    vw_path = os.path.join(workdir, "exploration.vw")

    # 1. The "production system" writes its incident log.
    fleet = generate_fleet(FleetConfig(n_machines=400), RandomSource(3))
    events = generate_failures(fleet, N_INCIDENTS, RandomSource(4))
    write_incident_log(events, incident_path)
    size_kb = os.path.getsize(incident_path) / 1024
    print(f"wrote {N_INCIDENTS} incidents to {incident_path} "
          f"({size_kb:.0f} KiB)")

    # 2. Scavenge the text log (step 1 of the methodology).
    records = read_incident_log(incident_path)
    dataset = dataset_from_incident_log(records)
    print(f"scavenged {len(dataset)} full-feedback interactions "
          f"({len(records) - len(dataset)} dropped)")

    # 3. Simulate exploration and export as VW --cb data.
    exploration = simulate_exploration(dataset, np.random.default_rng(0))
    lines = save_vw(exploration, vw_path)
    print(f"exported {lines} VW --cb lines to {vw_path}")
    with open(vw_path) as f:
        print("  sample line:", f.readline().strip()[:76], "...")

    # 4. Round-trip check: the estimators see identical data.
    reloaded = load_vw(vw_path, action_space=exploration.action_space)
    ips = IPSEstimator()
    for wait_index in (0, 4, 9):
        policy = ConstantPolicy(wait_index, name=f"wait-{wait_index + 1}min")
        original = ips.estimate(policy, exploration).value
        roundtrip = ips.estimate(policy, reloaded).value
        status = "ok" if abs(original - roundtrip) < 1e-6 else "MISMATCH"
        print(f"  {policy.name}: {original:8.2f} vs {roundtrip:8.2f}  "
              f"[{status}]")

    print(f"\nartifacts left in {workdir} for inspection")


if __name__ == "__main__":
    main()
