"""Quickstart: harvest randomness from a toy system in 60 lines.

A minimal end-to-end pass through the paper's methodology:

1. a "production system" makes randomized decisions and writes logs;
2. we scavenge ⟨x, a, r⟩ from the logs and infer propensities;
3. we evaluate candidate policies offline — without deploying them —
   and check the estimates against the truth.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    ConstantPolicy,
    Dataset,
    EmpiricalPropensityModel,
    Interaction,
    IPSEstimator,
    UniformRandomPolicy,
)

RNG = np.random.default_rng(seed=42)
N_DECISIONS = 5_000
N_ACTIONS = 3


def production_system(n: int) -> list[dict]:
    """A toy system: for each request it picks one of three handlers
    uniformly at random and observes a context-dependent reward.
    Handler 1 is best when load is high; handler 0 otherwise."""
    logs = []
    for t in range(n):
        load = RNG.uniform()
        action = int(RNG.integers(N_ACTIONS))
        base = [0.7 - 0.4 * load, 0.3 + 0.5 * load, 0.5][action]
        reward = float(np.clip(base + RNG.normal(0, 0.05), 0, 1))
        logs.append({"t": t, "load": load, "handler": action, "reward": reward})
    return logs


def main() -> None:
    # Step 0: the live system runs and logs (we never modify it).
    logs = production_system(N_DECISIONS)

    # Step 1+2: scavenge ⟨x, a, r⟩ and infer propensities empirically.
    propensities = EmpiricalPropensityModel().fit([r["handler"] for r in logs])
    dataset = Dataset()
    for record in logs:
        context = {"load": record["load"]}
        action = record["handler"]
        p = propensities.propensity(context, action, list(range(N_ACTIONS)))
        dataset.append(
            Interaction(context, action, record["reward"], p, record["t"])
        )
    print(f"harvested {len(dataset)} exploration points "
          f"(min propensity {dataset.min_propensity():.3f})")

    # Step 3: evaluate candidate policies offline.
    ips = IPSEstimator()
    candidates = [ConstantPolicy(a) for a in range(N_ACTIONS)]
    candidates.append(UniformRandomPolicy())
    print(f"\n{'policy':>16s} {'offline estimate':>18s} {'95% CI':>22s}")
    for policy in candidates:
        result = ips.estimate(policy, dataset)
        lo, hi = result.confidence_interval()
        print(f"{policy.name:>16s} {result.value:>18.4f} "
              f"[{lo:>9.4f}, {hi:>8.4f}]")

    # Truth (we know the simulator): E[r|a=0] = 0.5, E[r|a=1] = 0.55,
    # E[r|a=2] = 0.5 — the offline estimates should match without any
    # of these policies having been deployed.


if __name__ == "__main__":
    main()
