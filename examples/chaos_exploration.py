"""Chaos-broadened exploration (§5, "exploration coverage").

Per-request randomization almost never visits extreme states — a
uniform-random balancer "will almost never choose the same server
twenty times in a row", so logs contain no data about heavily-skewed
load.  §5 proposes harvesting *reliability testing*: Chaos-Monkey-style
fault injection pushes the system into extreme conditions, and the
responses land in the same logs.

This example measures the coverage difference: the distribution of
per-server connection counts observed in logs collected with and
without fault injection.

Run:  python examples/chaos_exploration.py
"""

import numpy as np

from repro.chaos import ChaosMonkey
from repro.loadbalance import LoadBalancerSim, Workload, fig5_servers
from repro.loadbalance.policies import random_policy
from repro.simsys.random_source import RandomSource

N_REQUESTS = 15_000


def collect(with_chaos: bool):
    """Run the random balancer, optionally under fault injection."""
    workload = Workload(10.0, randomness=RandomSource(5, _name="wl"))
    monkey = ChaosMonkey(seed=2) if with_chaos else None
    sim = LoadBalancerSim(
        fig5_servers(), random_policy(), workload, seed=5, chaos=monkey
    )
    result = sim.run(N_REQUESTS)
    return result, monkey


def coverage_report(label: str, result) -> None:
    """Summarize the context (load) coverage of one collected log."""
    conns = np.array([list(e.connections) for e in result.access_log])
    imbalance = np.abs(conns[:, 0] - conns[:, 1])
    print(f"{label}:")
    print(f"  mean latency          {result.mean_latency:8.3f}s")
    print(f"  max connections seen  {conns.max():8d}")
    print(f"  p99 load imbalance    {np.percentile(imbalance, 99):8.1f}")
    print(f"  contexts with >10 conns on a server: "
          f"{np.mean(conns.max(axis=1) > 10):.2%}")


def main() -> None:
    baseline, _ = collect(with_chaos=False)
    chaotic, monkey = collect(with_chaos=True)
    coverage_report("without chaos", baseline)
    print()
    coverage_report(f"with chaos ({len(monkey.history)} faults injected)",
                    chaotic)
    print("\nThe injected faults push servers into load regimes the "
          "random policy alone\nnever produces — exactly the data needed "
          "to evaluate policies with long-term\nload effects (e.g. "
          "'send everything to one server').")


if __name__ == "__main__":
    main()
