"""Verify a harvested log's decision ledger — the audit walkthrough.

The audit layer (:mod:`repro.audit`) makes an exploration log
*tamper-evident* and *re-derivable*:

1. harvest with an HKDF-derived stream and a hash-chained ledger;
2. verify the chain end to end against the recorded head;
3. tamper with one record and watch verification localize it;
4. quarantine the damage, rechain the survivors, verify clean;
5. re-derive the middle shard bit-identically in isolation — the
   fork-equivalence check an external auditor runs.

Run:  python examples/verify_ledger.py
"""

import json
import tempfile
from pathlib import Path

import numpy as np

from repro.audit import (
    DecisionLedger,
    StreamKey,
    StreamRegistry,
    rechain,
    verify_jsonl,
)
from repro.core.harvest import harvest_columns
from repro.core.policies import UniformRandomPolicy
from repro.core.types import Dataset

MASTER_SEED = 2017
SHARD = 100
ROWS = 3 * SHARD


def reward(indices, actions):
    return ((indices % 7) + actions).astype(float)


def harvest(contexts, stream, ledger, batch_size=64):
    return harvest_columns(
        UniformRandomPolicy(), contexts, reward, stream,
        eligible=(0, 1, 2), batch_size=batch_size, ledger=ledger,
    )


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-ledger-"))
    log_path = workdir / "exploration.jsonl"
    contexts = [{"load": (i % 13) / 13.0} for i in range(ROWS)]

    # -- 1. audit-grade harvest -------------------------------------------
    registry = StreamRegistry(MASTER_SEED)
    key = StreamKey("example", "harvest", "decisions")
    stream = registry.stream(
        "example", "harvest", "decisions", shard_size=SHARD
    )
    ledger = DecisionLedger(
        key, shard_size=SHARD,
        master_fingerprint=registry.master_fingerprint,
    )
    columns = harvest(contexts, stream, ledger)
    dataset = columns.to_dataset()
    ledger.annotate(dataset)
    dataset.save_jsonl(str(log_path))
    head = ledger.head
    print(f"harvested {columns.n} rows -> {log_path}")
    print(f"ledger head: {head}")

    # -- 2. clean verification --------------------------------------------
    result = verify_jsonl(str(log_path), expected_head=head)
    print(f"clean log verifies: {'OK' if result.ok else 'BROKEN'}")

    # -- 3. tamper with one action ----------------------------------------
    lines = log_path.read_text().splitlines()
    record = json.loads(lines[149])
    record["action"] = (record["action"] + 1) % 3
    lines[149] = json.dumps(record)
    log_path.write_text("\n".join(lines) + "\n")
    result = verify_jsonl(str(log_path), expected_head=head)
    print(
        f"after flipping one action: {'OK' if result.ok else 'BROKEN'}, "
        f"first bad line {result.first_bad}, "
        f"{len(result.segments)} intact segment(s)"
    )

    # -- 4. quarantine + rechain ------------------------------------------
    repaired = Dataset.load_jsonl(str(log_path), mode="quarantine")
    survivors = list(repaired)
    fresh = rechain(survivors)
    repaired_path = workdir / "repaired.jsonl"
    repaired.save_jsonl(str(repaired_path))
    result = verify_jsonl(str(repaired_path), expected_head=fresh.head)
    print(
        f"rechained {len(survivors)} survivors "
        f"(quarantined {repaired.quarantine.n_rejected}): "
        f"{'OK' if result.ok else 'BROKEN'}"
    )

    # -- 5. fork equivalence: rebuild the middle shard in isolation -------
    full_entries = ledger.entries()
    shard_stream = StreamRegistry(MASTER_SEED).stream(
        "example", "harvest", "decisions",
        shard_size=SHARD, start_ordinal=SHARD,
    )
    shard_ledger = DecisionLedger(
        key, shard_size=SHARD,
        genesis=full_entries[SHARD - 1].hash, start_ordinal=SHARD,
    )
    shard = harvest_columns(
        UniformRandomPolicy(), contexts[SHARD: 2 * SHARD],
        lambda indices, actions: reward(indices + SHARD, actions),
        shard_stream,
        eligible=(0, 1, 2), batch_size=64, ledger=shard_ledger,
    )
    identical = (
        np.array_equal(shard.actions, columns.actions[SHARD: 2 * SHARD])
        and shard_ledger.entries() == full_entries[SHARD: 2 * SHARD]
    )
    print(
        "middle shard re-derived in isolation: "
        f"{'bit-identical' if identical else 'DIVERGED'}"
    )
    print("done.")


if __name__ == "__main__":
    main()
